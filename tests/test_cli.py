"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig01"])
        assert args.experiments == ["fig01"]
        assert args.scale == "small"
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig01", "--scale", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["fig02a", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig02a" in out
        assert "jellyfish_normalized_bisection" in out

    def test_unknown_experiment_sets_exit_code(self, capsys):
        assert main(["not-a-figure"]) == 2

    def test_no_arguments_errors(self):
        with pytest.raises(SystemExit):
            main([])
