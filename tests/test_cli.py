"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_sweep_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig01"])
        assert args.experiments == ["fig01"]
        assert args.scale == "small"
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig01", "--scale", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["fig02a", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig02a" in out
        assert "jellyfish_normalized_bisection" in out

    def test_unknown_experiment_sets_exit_code(self, capsys):
        assert main(["not-a-figure"]) == 2

    def test_no_arguments_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepParser:
    def test_run_defaults(self):
        args = build_sweep_parser().parse_args(["run", "fig01"])
        assert args.sweeps == ["fig01"]
        assert args.scale == "small"
        assert args.seed == 0
        assert args.workers == 0
        assert not args.no_cache

    def test_seed_is_plumbed_through_every_subcommand(self):
        parser = build_sweep_parser()
        assert parser.parse_args(["run", "fig01", "--seed", "9"]).seed == 9
        assert parser.parse_args(["show", "fig01", "--seed", "9"]).seed == 9

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_sweep_parser().parse_args([])


class TestSweepMain:
    def test_sweep_list(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out
        assert "point(s)" in out

    def test_sweep_show(self, capsys):
        assert main(["sweep", "show", "fig02a"]) == 0
        out = capsys.readouterr().out
        assert "jellyfish_curve_point" in out
        assert "point " in out

    def test_sweep_run_with_cache(self, capsys, tmp_path):
        argv = ["sweep", "run", "fig02a", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "jellyfish_normalized_bisection" in first
        # Second invocation is served from cache and prints the same table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert list(tmp_path.glob("??/*.json"))

    def test_sweep_run_no_cache(self, capsys, tmp_path):
        argv = [
            "sweep", "run", "fig01",
            "--no-cache", "--quiet", "--seed", "1",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert "fig01" in capsys.readouterr().out
        assert not list(tmp_path.glob("??/*.json"))

    def test_sweep_run_unknown_sweep(self, capsys, tmp_path):
        argv = ["sweep", "run", "fig99", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv) == 2

    def test_sweep_show_unknown_sweep(self, capsys):
        assert main(["sweep", "show", "fig99"]) == 2


class TestTopoCli:
    def test_topo_build_prints_summary_and_hash(self, capsys):
        from repro.cli import build_topo_parser, main

        args = build_topo_parser().parse_args(
            ["build", "--switches", "20", "--ports", "6", "--degree", "4"]
        )
        assert args.command == "build" and args.seed == 0
        assert main(
            ["topo", "build", "--switches", "20", "--ports", "6", "--degree", "4",
             "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "switches 20" in out
        assert "content hash" in out

    def test_topo_build_same_seed_same_hash(self, capsys):
        from repro.cli import main

        argv = ["topo", "build", "--switches", "16", "--ports", "6", "--degree",
                "3", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_topo_build_rejects_bad_parameters(self, capsys):
        from repro.cli import main

        assert main(
            ["topo", "build", "--switches", "10", "--ports", "4", "--degree", "5"]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_topo_ensemble_serial_matches_sharded(self, capsys):
        from repro.cli import main

        argv = ["topo", "ensemble", "--instances", "4", "--switches", "14",
                "--ports", "6", "--degree", "3", "--seed", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert "distinct hashes 4" in serial
        assert main(argv + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_topo_ensemble_stubs_method(self, capsys):
        from repro.cli import main

        assert main(
            ["topo", "ensemble", "--instances", "3", "--switches", "20",
             "--ports", "8", "--degree", "5", "--method", "stubs"]
        ) == 0
        out = capsys.readouterr().out
        assert "method=stubs" in out


class TestSimCli:
    def test_sim_aimd_prints_summary(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--switches", "16", "--ports", "6", "--degree",
                "4", "--rounds", "40", "--warmup-rounds", "10", "--seed", "3"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "aimd jellyfish N=16" in out
        assert "average throughput" in out
        assert "convergence" in out

    def test_sim_aimd_reference_engine_matches(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--switches", "12", "--ports", "6", "--degree",
                "3", "--rounds", "30", "--warmup-rounds", "5", "--seed", "1"]
        assert main(argv) == 0
        fast = capsys.readouterr().out
        assert main(argv + ["--reference"]) == 0
        slow = capsys.readouterr().out
        # Identical measurements from both engines (wall-time line differs).
        fast_stats = [line for line in fast.splitlines() if "throughput" in line]
        slow_stats = [line for line in slow.splitlines() if "throughput" in line]
        assert fast_stats == slow_stats

    def test_sim_aimd_fattree(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--topology", "fattree", "--ports", "4",
                "--routing", "ecmp", "--cc", "tcp8", "--rounds", "30",
                "--warmup-rounds", "10", "--seed", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "aimd fattree k=4" in out and "cc=tcp8" in out
        # The run must actually measure goodput, not report a warmup-eats-
        # everything zero.
        assert "average throughput 0.0000" not in out

    def test_sim_aimd_rejects_warmup_not_below_rounds(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--switches", "12", "--ports", "6", "--degree",
                "3", "--rounds", "30", "--seed", "1"]  # default warmup 50 >= 30
        assert main(argv) == 2
        assert "warmup_rounds" in capsys.readouterr().err
