"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, build_sweep_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig01"])
        assert args.experiments == ["fig01"]
        assert args.scale == "small"
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig01", "--scale", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["fig02a", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig02a" in out
        assert "jellyfish_normalized_bisection" in out

    def test_unknown_experiment_sets_exit_code(self, capsys):
        assert main(["not-a-figure"]) == 2

    def test_no_arguments_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepParser:
    def test_run_defaults(self):
        args = build_sweep_parser().parse_args(["run", "fig01"])
        assert args.sweeps == ["fig01"]
        assert args.scale == "small"
        assert args.seed == 0
        assert args.workers == 0
        assert not args.no_cache

    def test_seed_is_plumbed_through_every_subcommand(self):
        parser = build_sweep_parser()
        assert parser.parse_args(["run", "fig01", "--seed", "9"]).seed == 9
        assert parser.parse_args(["show", "fig01", "--seed", "9"]).seed == 9

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_sweep_parser().parse_args([])


class TestSweepMain:
    def test_sweep_list(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out
        assert "point(s)" in out

    def test_sweep_show(self, capsys):
        assert main(["sweep", "show", "fig02a"]) == 0
        out = capsys.readouterr().out
        assert "jellyfish_curve_point" in out
        assert "point " in out

    def test_sweep_run_with_cache(self, capsys, tmp_path):
        argv = ["sweep", "run", "fig02a", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "jellyfish_normalized_bisection" in first
        # Second invocation is served from cache and prints the same table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert list(tmp_path.glob("??/*.json"))

    def test_sweep_run_no_cache(self, capsys, tmp_path):
        argv = [
            "sweep", "run", "fig01",
            "--no-cache", "--quiet", "--seed", "1",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert "fig01" in capsys.readouterr().out
        assert not list(tmp_path.glob("??/*.json"))

    def test_sweep_run_unknown_sweep(self, capsys, tmp_path):
        argv = ["sweep", "run", "fig99", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv) == 2

    def test_sweep_show_unknown_sweep(self, capsys):
        assert main(["sweep", "show", "fig99"]) == 2


class TestTopoCli:
    def test_topo_build_prints_summary_and_hash(self, capsys):
        from repro.cli import build_topo_parser, main

        args = build_topo_parser().parse_args(
            ["build", "--switches", "20", "--ports", "6", "--degree", "4"]
        )
        assert args.command == "build" and args.seed == 0
        assert main(
            ["topo", "build", "--switches", "20", "--ports", "6", "--degree", "4",
             "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "switches 20" in out
        assert "content hash" in out

    def test_topo_build_same_seed_same_hash(self, capsys):
        from repro.cli import main

        argv = ["topo", "build", "--switches", "16", "--ports", "6", "--degree",
                "3", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_topo_build_rejects_bad_parameters(self, capsys):
        from repro.cli import main

        assert main(
            ["topo", "build", "--switches", "10", "--ports", "4", "--degree", "5"]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_topo_ensemble_serial_matches_sharded(self, capsys):
        from repro.cli import main

        argv = ["topo", "ensemble", "--instances", "4", "--switches", "14",
                "--ports", "6", "--degree", "3", "--seed", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert "distinct hashes 4" in serial
        assert main(argv + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_topo_ensemble_stubs_method(self, capsys):
        from repro.cli import main

        assert main(
            ["topo", "ensemble", "--instances", "3", "--switches", "20",
             "--ports", "8", "--degree", "5", "--method", "stubs"]
        ) == 0
        out = capsys.readouterr().out
        assert "method=stubs" in out


class TestSimCli:
    def test_sim_aimd_prints_summary(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--switches", "16", "--ports", "6", "--degree",
                "4", "--rounds", "40", "--warmup-rounds", "10", "--seed", "3"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "aimd jellyfish N=16" in out
        assert "average throughput" in out
        assert "convergence" in out

    def test_sim_aimd_reference_engine_matches(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--switches", "12", "--ports", "6", "--degree",
                "3", "--rounds", "30", "--warmup-rounds", "5", "--seed", "1"]
        assert main(argv) == 0
        fast = capsys.readouterr().out
        assert main(argv + ["--reference"]) == 0
        slow = capsys.readouterr().out
        # Identical measurements from both engines (wall-time line differs).
        fast_stats = [line for line in fast.splitlines() if "throughput" in line]
        slow_stats = [line for line in slow.splitlines() if "throughput" in line]
        assert fast_stats == slow_stats

    def test_sim_aimd_fattree(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--topology", "fattree", "--ports", "4",
                "--routing", "ecmp", "--cc", "tcp8", "--rounds", "30",
                "--warmup-rounds", "10", "--seed", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "aimd fattree k=4" in out and "cc=tcp8" in out
        # The run must actually measure goodput, not report a warmup-eats-
        # everything zero.
        assert "average throughput 0.0000" not in out

    def test_sim_aimd_rejects_warmup_not_below_rounds(self, capsys):
        from repro.cli import main

        argv = ["sim", "aimd", "--switches", "12", "--ports", "6", "--degree",
                "3", "--rounds", "30", "--seed", "1"]  # default warmup 50 >= 30
        assert main(argv) == 2
        assert "warmup_rounds" in capsys.readouterr().err


class TestSweepRobustness:
    """Failure reports, resume, and signal handling in `sweep run`."""

    def _fault_env(self, monkeypatch, faults, seed=0):
        import json

        monkeypatch.setenv(
            "REPRO_FAULTS", json.dumps({"seed": seed, "faults": faults})
        )

    def test_quarantine_prints_report_and_exits_nonzero(
        self, capsys, tmp_path, monkeypatch
    ):
        self._fault_env(monkeypatch, [{"kind": "error", "indices": [2]}])
        code = main(
            [
                "sweep", "run", "fig02a", "--no-cache", "--quiet",
                "--runs-dir", str(tmp_path), "--max-attempts", "2",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "1 of 24 point(s) quarantined" in out
        assert "error after 2 attempt(s)" in out
        assert "jellyfish_normalized_bisection" not in out  # no table

    def test_resume_skips_journaled_points(self, capsys, tmp_path, monkeypatch):
        import json

        self._fault_env(monkeypatch, [{"kind": "error", "indices": [2]}])
        assert (
            main(
                [
                    "sweep", "run", "fig02a", "--no-cache", "--quiet",
                    "--runs-dir", str(tmp_path), "--max-attempts", "1",
                ]
            )
            == 1
        )
        capsys.readouterr()
        manifest = sorted(tmp_path.glob("run-*.json"))[0]
        run_id = json.loads(manifest.read_text())["run_id"]

        monkeypatch.delenv("REPRO_FAULTS")
        assert (
            main(
                [
                    "sweep", "run", "--resume", run_id, "--no-cache",
                    "--quiet", "--runs-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "jellyfish_normalized_bisection" in out  # table assembled
        manifests = [
            json.loads(p.read_text()) for p in sorted(tmp_path.glob("run-*.json"))
        ]
        resumed = next(m for m in manifests if m["resumed_from"] == run_id)
        statuses = [p["status"] for p in resumed["points"]]
        assert statuses.count("journaled") == 23
        assert statuses.count("ok") == 1
        assert resumed["failures"]["journal_skips"] == 23
        # Zero re-executions of journaled points: exactly one non-cached run.
        assert sum(1 for p in resumed["points"] if not p["cached"]) == 1

    def test_resume_rejects_mismatched_sweep(self, capsys, tmp_path):
        import json

        assert (
            main(
                [
                    "sweep", "run", "fig02a", "--no-cache", "--quiet",
                    "--runs-dir", str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = sorted(tmp_path.glob("run-*.json"))[0]
        run_id = json.loads(manifest.read_text())["run_id"]
        assert (
            main(
                [
                    "sweep", "run", "fig01", "--resume", run_id, "--no-cache",
                    "--runs-dir", str(tmp_path),
                ]
            )
            == 2
        )
        assert "was sweep" in capsys.readouterr().err

    def test_resume_unknown_run_id_errors(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep", "run", "--resume", "no-such-run", "--no-cache",
                    "--runs-dir", str(tmp_path),
                ]
            )
            == 2
        )
        assert "cannot load manifest" in capsys.readouterr().err

    def test_run_without_sweeps_or_resume_errors(self, capsys, tmp_path):
        assert (
            main(["sweep", "run", "--no-cache", "--runs-dir", str(tmp_path)]) == 2
        )
        assert "no sweeps given" in capsys.readouterr().err

    def test_timeout_zero_disables_deadlines(self, capsys, tmp_path):
        code = main(
            [
                "sweep", "run", "fig02a", "--no-cache", "--quiet",
                "--runs-dir", str(tmp_path), "--timeout", "0",
            ]
        )
        assert code == 0

class TestLifecycleCli:
    def _argv(self, runs_dir, *extra):
        return [
            "lifecycle", "run", "--family", "jellyfish", "--switches", "12",
            "--ports", "6", "--servers", "24", "--duration", "72",
            "--epoch-interval", "24", "--link-rate", "0.3", "--link-mttr", "4",
            "--engine", "path", "--routing", "ecmp", "--k", "4", "--cc",
            "tcp1", "--seed", "3", "--runs-dir", str(runs_dir), *extra,
        ]

    def test_lifecycle_run_prints_table_and_writes_manifest(
        self, capsys, tmp_path
    ):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "lifecycle jellyfish (12 switches, 24 servers)" in out
        assert "3 epoch(s)" in out
        assert "time-averaged throughput" in out
        assert list(tmp_path.glob("run-*.json"))
        assert list(tmp_path.glob("run-*.journal.jsonl"))

    def test_lifecycle_resume_replays_identical_timeline(self, capsys, tmp_path):
        import json

        assert main(self._argv(tmp_path)) == 0
        first = capsys.readouterr().out
        manifest = sorted(tmp_path.glob("run-*.json"))[0]
        run_id = json.loads(manifest.read_text())["run_id"]

        assert main(self._argv(tmp_path, "--resume", run_id)) == 0
        second = capsys.readouterr().out

        def table(text):
            return [
                line for line in text.splitlines() if not line.startswith("  run ")
            ]

        assert table(first) == table(second)
        manifests = [
            json.loads(p.read_text()) for p in sorted(tmp_path.glob("run-*.json"))
        ]
        resumed = next(m for m in manifests if m["resumed_from"] == run_id)
        assert all(p["status"] == "journaled" for p in resumed["points"])

    def test_lifecycle_resume_rejects_changed_config(self, capsys, tmp_path):
        import json

        assert main(self._argv(tmp_path)) == 0
        capsys.readouterr()
        manifest = sorted(tmp_path.glob("run-*.json"))[0]
        run_id = json.loads(manifest.read_text())["run_id"]
        assert (
            main(self._argv(tmp_path, "--resume", run_id, "--link-mttr", "8"))
            == 2
        )
        assert "different lifecycle config" in capsys.readouterr().err

    def test_lifecycle_rejects_invalid_config(self, capsys, tmp_path):
        assert main(self._argv(tmp_path, "--duration", "0")) == 2
        assert "duration_hours" in capsys.readouterr().err


class TestSweepRobustnessSignals:
    def test_sigterm_flushes_manifest_and_exits_143(self, tmp_path):
        import json
        import os
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parents[1] / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        # One point hangs forever; the parent is killed mid-sweep.
        env["REPRO_FAULTS"] = json.dumps(
            {"seed": 0, "faults": [{"kind": "hang", "indices": [5], "hang_s": 600}]}
        )
        runs_dir = tmp_path / "runs"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "sweep", "run", "fig02a",
                "--no-cache", "--runs-dir", str(runs_dir), "--workers", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Wait until some points are journaled so the flush has content.
        deadline = time.time() + 60
        journal = None
        while time.time() < deadline:
            journals = list(runs_dir.glob("run-*.journal.jsonl"))
            if journals and journals[0].read_text().count("\n") >= 3:
                journal = journals[0]
                break
            time.sleep(0.2)
        assert journal is not None, "no journal appeared before the deadline"
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 143  # 128 + SIGTERM
        assert "interrupted by signal 15" in stderr
        assert "--resume" in stderr
        manifest = json.loads(next(runs_dir.glob("run-*.json")).read_text())
        assert manifest["interrupted"] is True
        assert len(manifest["points"]) >= 3  # partial results were flushed
