"""Tests for degree-diameter benchmark graphs."""

import networkx as nx
import pytest

from repro.graphs.properties import average_path_length, diameter
from repro.graphs.regular import is_regular
from repro.topologies.base import TopologyError
from repro.topologies.degree_diameter import (
    DegreeDiameterTopology,
    hoffman_singleton_graph,
    optimized_low_diameter_graph,
    petersen_graph,
)


class TestClassicalConstructions:
    def test_petersen(self):
        graph = petersen_graph()
        assert graph.number_of_nodes() == 10
        assert is_regular(graph, 3)
        assert diameter(graph) == 2

    def test_hoffman_singleton(self):
        graph = hoffman_singleton_graph()
        assert graph.number_of_nodes() == 50
        assert is_regular(graph, 7)
        assert diameter(graph) == 2


class TestLocalSearchOptimizer:
    def test_stays_regular_and_connected(self):
        graph = optimized_low_diameter_graph(24, 4, rng=1, iterations=200)
        assert is_regular(graph, 4)
        assert nx.is_connected(graph)

    def test_does_not_worsen_average_path_length(self):
        from repro.graphs.regular import random_regular_graph

        seed_graph = random_regular_graph(24, 4, rng=5)
        baseline = average_path_length(seed_graph)
        optimized = optimized_low_diameter_graph(24, 4, rng=5, iterations=300)
        assert average_path_length(optimized) <= baseline + 1e-9

    def test_tiny_graph(self):
        graph = optimized_low_diameter_graph(4, 2, rng=2, iterations=10)
        assert graph.number_of_nodes() == 4


class TestDegreeDiameterTopology:
    def test_uses_exact_construction_when_available(self):
        topo = DegreeDiameterTopology.build(50, 11, 7, rng=1, iterations=10)
        assert topo.num_switches == 50
        assert is_regular(topo.graph, 7)
        assert diameter(topo.graph) == 2
        assert topo.num_servers == 50 * 4

    def test_falls_back_to_local_search(self):
        topo = DegreeDiameterTopology.build(20, 6, 4, rng=2, iterations=50)
        assert topo.num_switches == 20
        assert topo.is_connected()

    def test_invalid_degree_rejected(self):
        with pytest.raises(TopologyError):
            DegreeDiameterTopology.build(20, 4, 5)

    def test_server_budget_enforced(self):
        with pytest.raises(TopologyError):
            DegreeDiameterTopology.build(20, 6, 4, servers_per_switch=3)
