"""Tests for the sweep registry: every figure as a scenario sweep.

The key guarantees: every experiment is registered, engine execution
reproduces the direct ``run_experiment`` output bit-for-bit for the same
seed, and a second invocation of a sweep is served from the result cache.
"""

import pytest

from repro.engine import (
    ResultCache,
    SweepRunner,
    get_sweep,
    list_sweeps,
    run_sweep,
    sweep_points,
    sweep_specs,
)
from repro.experiments.common import EXPERIMENTS, run_experiment
from repro.experiments.fig02a_bisection import _SCALES as FIG02A_SCALES
from repro.experiments.fig02a_bisection import jellyfish_curve_point
from repro.experiments.fig02b_equipment_cost import _SCALES as FIG02B_SCALES
from repro.experiments.fig02b_equipment_cost import (
    jellyfish_min_ports_for_full_bisection,
)


class TestRegistry:
    def test_every_experiment_is_registered_as_a_sweep(self):
        assert list_sweeps() == sorted(EXPERIMENTS)

    def test_unknown_sweep_raises(self):
        with pytest.raises(KeyError):
            get_sweep("fig99")
        with pytest.raises(KeyError):
            run_sweep("fig99")

    def test_points_are_declarative_and_hashed(self):
        points = sweep_points("fig02a", scale="small", seed=0)
        assert len(points) == 24
        assert len({p.scenario_hash for p in points}) == 24

    def test_specs_capture_the_grid(self):
        specs = sweep_specs("fig02b", scale="small", seed=0)
        assert len(specs) == 1
        assert specs[0].axes["ports"] == [24, 32]


class TestEquivalenceWithDirectExecution:
    """``repro sweep run X`` must equal the pre-engine experiment output."""

    @pytest.mark.parametrize(
        "experiment_id", ["fig01", "fig02a", "fig02b", "fig05", "fig13-dynamics"]
    )
    def test_native_sweeps_match_run_experiment(self, experiment_id):
        direct = run_experiment(experiment_id, scale="small", seed=0)
        swept = run_sweep(experiment_id, scale="small", seed=0)
        assert swept.columns == direct.columns
        assert swept.rows == direct.rows
        assert swept.title == direct.title

    def test_legacy_sweep_matches_run_experiment(self):
        direct = run_experiment("fig09", scale="small", seed=1)
        swept = run_sweep("fig09", scale="small", seed=1)
        assert swept.columns == direct.columns
        assert [list(row) for row in swept.rows] == [list(row) for row in direct.rows]

    def test_fig02a_matches_pre_refactor_loop(self):
        """Re-derive Fig 2(a) with the original hand-rolled loop and compare."""
        expected = []
        for num_switches, ports in FIG02A_SCALES["small"]:
            max_servers = num_switches * (ports - 1)
            for step in range(1, 13):
                servers = int(round(step * max_servers / 12))
                expected.append(jellyfish_curve_point(num_switches, ports, servers))
        result = run_sweep("fig02a", scale="small", seed=0)
        assert result.column("jellyfish_normalized_bisection") == expected

    def test_fig02b_matches_pre_refactor_loop(self):
        config = FIG02B_SCALES["small"]
        expected = [
            jellyfish_min_ports_for_full_bisection(ports, servers)
            for ports in config["ports"]
            for servers in config["server_targets"]
        ]
        result = run_sweep("fig02b", scale="small", seed=0)
        assert result.column("jellyfish_total_ports") == expected

    def test_same_seed_reproduces_and_seeds_differ(self):
        first = run_sweep("fig01", scale="small", seed=3)
        second = run_sweep("fig01", scale="small", seed=3)
        other = run_sweep("fig01", scale="small", seed=4)
        assert first.rows == second.rows
        assert first.rows != other.rows


class TestSweepCaching:
    def test_second_invocation_is_served_from_cache(self, tmp_path):
        cold = ResultCache(tmp_path)
        first = run_sweep("fig02a", scale="small", seed=0, runner=SweepRunner(cache=cold))
        total = len(sweep_points("fig02a", scale="small", seed=0))
        assert cold.stats.writes == total

        warm = ResultCache(tmp_path)
        second = run_sweep("fig02a", scale="small", seed=0, runner=SweepRunner(cache=warm))
        assert second.rows == first.rows
        # Acceptance bar: >= 90% of points served from cache; here it is 100%.
        assert warm.stats.hits >= 0.9 * total
        assert warm.stats.misses == 0

    def test_single_point_sweep_caches_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep("fig01", scale="small", seed=0, runner=SweepRunner(cache=cache))
        warm = ResultCache(tmp_path)
        run_sweep("fig01", scale="small", seed=0, runner=SweepRunner(cache=warm))
        assert warm.stats.hits == 1
