"""Smoke and shape tests for the experiment runners (one per paper figure/table)."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    format_table,
    list_experiments,
    run_experiment,
)

ALL_EXPERIMENTS = list_experiments()


class TestRegistry:
    def test_all_experiments_registered(self):
        # 17 paper figures/tables + 3 ensemble variants (fig02a/05/08-ens)
        # + 2 AIMD dynamics variants (fig12/13-dynamics)
        # + the fig08-lifecycle failure/repair timeline
        # + 2 hyperscale sampled sweeps (fig02a/05-scale).
        assert len(ALL_EXPERIMENTS) == 25
        assert "fig01" in ALL_EXPERIMENTS
        assert "table1" in ALL_EXPERIMENTS
        assert "fig05-ens" in ALL_EXPERIMENTS
        assert "fig08-ens" in ALL_EXPERIMENTS
        assert "fig02a-ens" in ALL_EXPERIMENTS
        assert "fig12-dynamics" in ALL_EXPERIMENTS
        assert "fig13-dynamics" in ALL_EXPERIMENTS
        assert "fig05-scale" in ALL_EXPERIMENTS
        assert "fig02a-scale" in ALL_EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestResultContainer:
    def test_add_row_validates_length(self):
        result = ExperimentResult("x", "t", ["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_access(self):
        result = ExperimentResult("x", "t", ["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]
        with pytest.raises(KeyError):
            result.column("c")

    def test_as_dicts_and_format(self):
        result = ExperimentResult("x", "t", ["a"], notes="hello")
        result.add_row(1.23456)
        assert result.as_dicts() == [{"a": 1.23456}]
        text = format_table(result)
        assert "x: t" in text and "hello" in text


@pytest.mark.parametrize("experiment_id", ALL_EXPERIMENTS)
def test_every_experiment_runs_at_small_scale(experiment_id):
    result = run_experiment(experiment_id, scale="small", seed=0)
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{experiment_id} produced no rows"
    assert result.experiment_id == experiment_id
    # The formatted table must render without errors.
    assert format_table(result)


class TestHeadlineClaims:
    """The qualitative results the paper leads with must reproduce."""

    def test_fig01_jellyfish_reaches_more_servers_in_fewer_hops(self):
        result = run_experiment("fig01", scale="small", seed=0)
        rows = result.as_dicts()
        # At an intermediate hop count Jellyfish's CDF dominates the fat-tree's.
        intermediate = [r for r in rows if 0.05 < r["fattree_fraction"] < 0.999]
        assert intermediate
        assert all(
            r["jellyfish_fraction"] >= r["fattree_fraction"] - 1e-9 for r in intermediate
        )

    def test_fig02c_jellyfish_supports_at_least_as_many_servers(self):
        result = run_experiment("fig02c", scale="small", seed=0)
        advantages = result.column("jellyfish_advantage")
        assert max(advantages) >= 1.0

    def test_fig05_short_paths(self):
        result = run_experiment("fig05", scale="small", seed=0)
        assert all(value <= 4 for value in result.column("scratch_diameter"))

    def test_fig06_incremental_matches_scratch(self):
        result = run_experiment("fig06", scale="small", seed=0)
        for row in result.as_dicts():
            assert row["incremental_throughput"] == pytest.approx(
                row["from_scratch_throughput"], abs=0.1
            )

    def test_fig07_jellyfish_beats_clos_expansion(self):
        result = run_experiment("fig07", scale="small", seed=0)
        last = result.as_dicts()[-1]
        assert last["jellyfish_normalized_bisection"] > last["clos_normalized_bisection"]

    def test_fig08_graceful_degradation(self):
        result = run_experiment("fig08", scale="small", seed=0)
        rows = result.as_dicts()
        baseline = rows[0]["jellyfish_throughput"]
        worst = rows[-1]["jellyfish_throughput"]
        assert worst >= baseline - 0.45

    def test_fig09_ksp_spreads_better_than_ecmp(self):
        result = run_experiment("fig09", scale="small", seed=0)
        rows = {row["routing"]: row for row in result.as_dicts()}
        assert (
            rows["8 shortest paths"]["fraction_links_on_at_most_2_paths"]
            < rows["8-way ECMP"]["fraction_links_on_at_most_2_paths"]
        )

    def test_table1_orderings(self):
        result = run_experiment("table1", scale="small", seed=0)
        rows = {row["congestion_control"]: row for row in result.as_dicts()}
        mptcp = rows["MPTCP 8 subflows"]
        # k-shortest-path routing recovers the capacity ECMP wastes on Jellyfish.
        assert mptcp["jellyfish_8_shortest_paths"] > mptcp["jellyfish_ecmp"]
        # Multi-path congestion control beats single-flow TCP on the fat-tree.
        assert mptcp["fattree_ecmp"] > rows["TCP 1 flow"]["fattree_ecmp"]

    def test_fig13_fairness_is_high(self):
        result = run_experiment("fig13", scale="small", seed=0)
        assert all(value > 0.8 for value in result.column("jain_fairness_index"))

    def test_fig13_dynamics_tracks_fluid_fairness(self):
        result = run_experiment("fig13-dynamics", scale="small", seed=0)
        rows = result.as_dicts()
        # The dynamic controller should land near the fluid equilibrium's
        # fairness and below-or-near its average throughput.
        for row in rows:
            assert row["aimd_fairness"] > 0.8
            assert row["aimd_throughput"] <= row["fluid_throughput"] + 0.1

    def test_fig12_dynamics_reports_convergence(self):
        result = run_experiment("fig12-dynamics", scale="small", seed=0)
        for row in result.as_dicts():
            assert 0.0 <= row["converged_fraction"] <= 1.0
            assert row["min"] <= row["mean"] <= row["max"]

    def test_fig14_localization_costs_little(self):
        result = run_experiment("fig14", scale="small", seed=0)
        rows = result.as_dicts()
        moderate = [r for r in rows if r["requested_local_fraction"] <= 0.6]
        assert all(r["throughput_normalized_to_unrestricted"] > 0.7 for r in moderate)
