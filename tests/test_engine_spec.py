"""Tests for declarative scenario specs (repro.engine.spec)."""

import math
import pickle

import pytest

from repro.engine.spec import (
    ScenarioPoint,
    ScenarioSpec,
    canonical_json,
    content_hash,
    derive_seed,
    expand,
    normalize,
    resolve_target,
)

TARGET = "repro.experiments.fig02a_bisection:jellyfish_curve_point"


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuples_serialize_as_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_non_serializable_raises(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            canonical_json({"x": math.nan})

    def test_normalize_round_trips_floats_exactly(self):
        value = {"x": 0.1 + 0.2, "y": [1, (2, 3)]}
        assert normalize(value) == {"x": 0.1 + 0.2, "y": [1, [2, 3]]}


class TestContentHash:
    def test_stable_across_processes_style_inputs(self):
        assert content_hash({"a": 1}) == content_hash({"a": 1})
        assert len(content_hash({"a": 1})) == 64

    def test_sensitive_to_values(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestDeriveSeed:
    def test_deterministic_and_in_range(self):
        seed = derive_seed(7, {"n": 10}, 3)
        assert seed == derive_seed(7, {"n": 10}, 3)
        assert 0 <= seed < 2**63

    def test_varies_with_every_input(self):
        base = derive_seed(7, {"n": 10}, 0)
        assert base != derive_seed(8, {"n": 10}, 0)
        assert base != derive_seed(7, {"n": 11}, 0)
        assert base != derive_seed(7, {"n": 10}, 1)

    def test_none_stays_none(self):
        assert derive_seed(None, {"n": 10}, 5) is None


class TestScenarioPoint:
    def test_hash_covers_target_params_seed_repetition(self):
        point = ScenarioPoint(TARGET, {"num_switches": 720, "ports": 24, "servers": 100})
        assert point.scenario_hash != ScenarioPoint(
            TARGET, {"num_switches": 720, "ports": 24, "servers": 200}
        ).scenario_hash
        assert point.scenario_hash != ScenarioPoint(
            TARGET, point.params, seed=1
        ).scenario_hash
        assert point.scenario_hash != ScenarioPoint(
            TARGET, point.params, repetition=1
        ).scenario_hash

    def test_execute_resolves_and_normalizes(self):
        point = ScenarioPoint(TARGET, {"num_switches": 720, "ports": 24, "servers": 720})
        value = point.execute()
        assert isinstance(value, float) and value > 0

    def test_seed_not_passed_when_none(self):
        # jellyfish_curve_point takes no seed parameter; a None seed must not
        # be forwarded to it.
        point = ScenarioPoint(TARGET, {"num_switches": 720, "ports": 24, "servers": 720})
        point.execute()

    def test_points_are_hashable_via_content_address(self):
        point = ScenarioPoint(TARGET, {"num_switches": 720, "ports": 24, "servers": 720})
        same = ScenarioPoint(TARGET, dict(point.params))
        other = ScenarioPoint(TARGET, {"num_switches": 720, "ports": 24, "servers": 100})
        assert hash(point) == hash(same)
        assert {point, same, other} == {point, other}
        spec = ScenarioSpec.grid(TARGET, a=[1, 2])
        assert hash(spec) == hash(ScenarioSpec.grid(TARGET, a=[1, 2]))

    def test_points_pickle(self):
        point = ScenarioPoint(TARGET, {"num_switches": 720, "ports": 24, "servers": 720})
        _ = point.scenario_hash  # populate the cached property first
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.scenario_hash == point.scenario_hash


class TestResolveTarget:
    def test_resolves_dotted_path(self):
        fn = resolve_target(TARGET)
        assert callable(fn)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            resolve_target("no-colon-here")

    def test_rejects_missing_attribute(self):
        with pytest.raises(ValueError):
            resolve_target("repro.engine.spec:not_a_thing")


class TestGridExpansion:
    def test_lists_become_axes_and_scalars_base(self):
        spec = ScenarioSpec.grid(TARGET, num_switches=720, ports=[24, 32], servers=[10, 20])
        assert spec.base == {"num_switches": 720}
        assert spec.axes == {"ports": [24, 32], "servers": [10, 20]}
        assert len(spec) == 4

    def test_cartesian_product_order(self):
        spec = ScenarioSpec.grid(TARGET, a=[1, 2], b=[10, 20])
        combos = [(p.params["a"], p.params["b"]) for p in spec.points()]
        assert combos == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_no_axes_is_single_point(self):
        spec = ScenarioSpec.grid(TARGET, num_switches=720, ports=24, servers=720)
        points = spec.points()
        assert len(points) == 1
        assert points[0].params == {"num_switches": 720, "ports": 24, "servers": 720}

    def test_literal_list_parameter_via_constructor(self):
        spec = ScenarioSpec(target=TARGET, base={"switch_counts": [20, 40]})
        points = spec.points()
        assert len(points) == 1
        assert points[0].params["switch_counts"] == [20, 40]

    def test_seed_cannot_be_a_scenario_parameter(self):
        with pytest.raises(ValueError):
            ScenarioSpec(target=TARGET, base={"seed": 1})
        with pytest.raises(ValueError):
            ScenarioSpec(target=TARGET, axes={"seed": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(target=TARGET, axes={"a": []})

    def test_base_axis_overlap_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(target=TARGET, base={"a": 1}, axes={"a": [1, 2]})

    def test_expand_concatenates_in_order(self):
        first = ScenarioSpec.grid(TARGET, a=[1, 2])
        second = ScenarioSpec.grid(TARGET, a=[3])
        assert [p.params["a"] for p in expand([first, second])] == [1, 2, 3]


class TestSeedStrategies:
    def test_single_repetition_shares_seed(self):
        spec = ScenarioSpec.grid(TARGET, seed=42, a=[1, 2])
        assert [p.seed for p in spec.points()] == [42, 42]

    def test_repetitions_derive_distinct_seeds(self):
        spec = ScenarioSpec.grid(TARGET, seed=42, repetitions=3, a=[1, 2])
        points = spec.points()
        assert len(points) == 6
        seeds = [p.seed for p in points]
        assert len(set(seeds)) == 6
        assert [p.repetition for p in points[:3]] == [0, 1, 2]
        # Deterministic: expanding again yields the same seeds.
        assert seeds == [p.seed for p in spec.points()]

    def test_derived_seeds_stable_under_axis_growth(self):
        small = ScenarioSpec.grid(TARGET, seed=42, repetitions=2, a=[1])
        large = ScenarioSpec.grid(TARGET, seed=42, repetitions=2, a=[1, 2])
        assert [p.seed for p in small.points()] == [p.seed for p in large.points()[:2]]

    def test_explicit_shared_strategy_with_repetitions(self):
        spec = ScenarioSpec.grid(
            TARGET, seed=42, repetitions=2, seed_strategy="shared", a=[1]
        )
        assert [p.seed for p in spec.points()] == [42, 42]

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec.grid(TARGET, seed_strategy="bogus")

    def test_spec_hash_changes_with_seed(self):
        one = ScenarioSpec.grid(TARGET, seed=1, a=[1])
        two = ScenarioSpec.grid(TARGET, seed=2, a=[1])
        assert one.spec_hash != two.spec_hash
