"""Statistical contract of the sampled-pair estimators (repro.graphs.sampling).

The hyperscale mode replaces exact all-pairs kernels with seeded estimators;
these tests pin the properties that make that replacement honest:

* determinism: the estimate is a pure function of (graph, seed);
* exactness: sampling every source reproduces the exact kernels
  bit-for-bit (mean, diameter, histogram);
* consistency: confidence intervals shrink with sample size and cover the
  exact value at the advertised rate (checked over a fixed seed panel, so
  the test itself is deterministic);
* calibration: the random balanced-cut mean concentrates on the
  closed-form expectation, and the min cut upper-bounds the true width
  where the exact value is computable.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.csr import csr_graph
from repro.graphs.properties import (
    average_path_length,
    diameter,
    path_length_distribution,
)
from repro.graphs.regular import sequential_random_regular_graph
from repro.graphs.sampling import (
    expected_balanced_cut,
    sampled_bisection_stats,
    sampled_path_length_stats,
    sampled_throughput_bound,
    throughput_upper_bound,
)
from repro.topologies.ensemble import single_rrg_core

COMMON_SETTINGS = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def regular_csr_graphs(draw):
    """Connected-ish random regular graphs as CSR views."""
    num_nodes = draw(st.integers(min_value=8, max_value=60))
    degree = draw(st.integers(min_value=3, max_value=min(6, num_nodes - 1)))
    if (num_nodes * degree) % 2 != 0:
        degree -= 1
    seed = draw(st.integers(min_value=0, max_value=2**16))
    graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
    return csr_graph(graph), graph


# --------------------------------------------------------------------------- #
# Path-length estimator
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(regular_csr_graphs(), st.integers(min_value=0, max_value=2**16))
def test_sampled_paths_seed_deterministic(graph_pair, seed):
    csr, _ = graph_pair
    first = sampled_path_length_stats(csr, num_sources=5, seed=seed)
    second = sampled_path_length_stats(csr, num_sources=5, seed=seed)
    assert first == second
    assert not first.exact
    assert first.ci_low <= first.mean <= first.ci_high


@COMMON_SETTINGS
@given(regular_csr_graphs())
def test_full_coverage_matches_exact_kernels(graph_pair):
    csr, graph = graph_pair
    stats = sampled_path_length_stats(csr)
    assert stats.exact
    assert stats.num_sources == csr.num_nodes
    assert stats.mean == average_path_length(graph)
    assert stats.diameter_lower_bound == diameter(graph)
    assert stats.ci_low == stats.mean == stats.ci_high
    # The ordered-pair histogram is exactly 2x the unordered distribution.
    unordered = path_length_distribution(graph)
    assert stats.histogram == {hops: 2 * count for hops, count in unordered.items()}


def test_num_sources_at_or_above_n_is_exact():
    core = single_rrg_core(40, 8, 5, seed=1)
    csr = core.csr()
    exact = sampled_path_length_stats(csr)
    assert sampled_path_length_stats(csr, num_sources=40) == exact
    assert sampled_path_length_stats(csr, num_sources=500) == exact


def test_ci_width_shrinks_with_sample_size():
    core = single_rrg_core(300, 12, 9, seed=7)
    csr = core.csr()
    seeds = range(12)
    narrow = [
        sampled_path_length_stats(csr, num_sources=96, seed=s).ci_halfwidth
        for s in seeds
    ]
    wide = [
        sampled_path_length_stats(csr, num_sources=12, seed=s).ci_halfwidth
        for s in seeds
    ]
    assert all(width > 0 for width in narrow)
    assert float(np.mean(narrow)) < float(np.mean(wide))


def test_ci_covers_exact_value_at_advertised_rate():
    core = single_rrg_core(200, 12, 9, seed=3)
    csr = core.csr()
    exact = sampled_path_length_stats(csr).mean
    covered = 0
    seeds = range(30)
    for s in seeds:
        stats = sampled_path_length_stats(csr, num_sources=32, seed=s)
        if stats.ci_low <= exact <= stats.ci_high:
            covered += 1
    # 95% nominal; demand >= 80% so the fixed panel never flakes.
    assert covered >= 0.8 * len(seeds)


def test_sampled_mean_streams_identically_under_tiny_scratch():
    core = single_rrg_core(120, 12, 9, seed=2)
    csr = core.csr()
    default = sampled_path_length_stats(csr, num_sources=24, seed=0)
    streamed = sampled_path_length_stats(
        csr, num_sources=24, seed=0, scratch_bytes=1
    )
    assert default == streamed


def test_path_stats_input_validation():
    core = single_rrg_core(20, 8, 5, seed=0)
    csr = core.csr()
    with pytest.raises(ValueError):
        sampled_path_length_stats(csr, num_sources=0)
    with pytest.raises(ValueError):
        sampled_path_length_stats(csr, confidence=1.5)


def test_cdf_is_monotone_and_ends_at_one():
    core = single_rrg_core(60, 8, 5, seed=4)
    stats = sampled_path_length_stats(core.csr(), num_sources=10, seed=4)
    cdf = stats.cdf()
    values = [cdf[h] for h in sorted(cdf)]
    assert values == sorted(values)
    assert values[-1] == pytest.approx(1.0)


# --------------------------------------------------------------------------- #
# Balanced-cut estimator
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(regular_csr_graphs(), st.integers(min_value=0, max_value=2**16))
def test_sampled_bisection_seed_deterministic(graph_pair, seed):
    csr, _ = graph_pair
    first = sampled_bisection_stats(csr, trials=5, seed=seed)
    second = sampled_bisection_stats(csr, trials=5, seed=seed)
    assert first == second
    assert 0 <= first.min_cut <= first.mean_cut
    assert first.mean_cut <= csr.num_edges


def test_bisection_ci_covers_expected_cut():
    core = single_rrg_core(200, 12, 9, seed=9)
    csr = core.csr()
    expected = expected_balanced_cut(csr.num_nodes, csr.num_edges)
    covered = 0
    seeds = range(30)
    for s in seeds:
        stats = sampled_bisection_stats(csr, trials=16, seed=s)
        assert stats.expected_cut == expected
        if stats.ci_low <= expected <= stats.ci_high:
            covered += 1
    assert covered >= 0.8 * len(seeds)


def test_bisection_handles_edgeless_graph():
    import networkx as nx

    csr = csr_graph(nx.empty_graph(5))
    stats = sampled_bisection_stats(csr, trials=3, seed=0)
    assert stats.mean_cut == 0.0
    assert stats.min_cut == 0
    assert stats.expected_cut == 0.0


def test_bisection_input_validation():
    core = single_rrg_core(20, 8, 5, seed=0)
    with pytest.raises(ValueError):
        sampled_bisection_stats(core.csr(), trials=0)


# --------------------------------------------------------------------------- #
# Throughput bound
# --------------------------------------------------------------------------- #
def test_throughput_bound_closed_form():
    assert throughput_upper_bound(100, 50, 2.0) == pytest.approx(1.0)
    assert throughput_upper_bound(100, 50, 4.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        throughput_upper_bound(100, 0, 2.0)
    with pytest.raises(ValueError):
        throughput_upper_bound(100, 50, 0.0)


def test_sampled_throughput_interval_orients_correctly():
    core = single_rrg_core(100, 12, 9, seed=5)
    csr = core.csr()
    stats = sampled_path_length_stats(csr, num_sources=20, seed=5)
    bound, low, high = sampled_throughput_bound(csr, 300, stats)
    # Anti-monotone map: longer paths -> lower bound, so endpoints swap.
    assert low <= bound <= high
    assert bound == pytest.approx(
        throughput_upper_bound(csr.num_edges, 300, stats.mean)
    )
