"""Parity suite for the vectorized flow engine (repro.flow).

Pins the vectorized kernels against the retained pre-vectorization
implementations (:mod:`repro.flow._reference`):

* max-min fair allocation: bit-for-bit equality of flow rates, subflow
  rates and link loads on hypothesis-generated inputs, including zero-hop
  same-switch paths, saturated-at-zero links, repeated-link paths and
  duplicate flow ids;
* LP assembly: the COO-built constraint matrices equal the historical
  ``lil_matrix`` assembly entry-for-entry for both the edge and the path
  formulation;
* path-LP theta unchanged to 1e-9 on the fig10 small-graph suite;
* the shared path-set / LP-structure caches: reuse on an unchanged graph,
  invalidation on mutation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flow._reference import (
    assemble_edge_lp_reference,
    assemble_path_lp_reference,
    max_concurrent_flow_edge_lp_reference,
    max_concurrent_flow_path_lp_reference,
    max_min_fair_allocation_reference,
)
from repro.flow.maxmin import FlowSpec, max_min_fair_allocation
from repro.flow.mcf import _assemble_edge_lp, max_concurrent_flow_edge_lp
from repro.flow.path_lp import (
    PathLPStructure,
    clear_shared_lp_structures,
    max_concurrent_flow_path_lp,
    shared_path_lp_structure,
)
from repro.routing.paths import build_path_set, clear_shared_path_sets, shared_path_set
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic

COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def allocation_problems(draw):
    """Random (flows, capacities, default_capacity) triples.

    Paths are arbitrary node tuples — including zero-hop single-node paths
    (same-switch traffic) and paths that revisit a link — and capacities
    include links saturated at zero, the corners the progressive-filling
    semantics must preserve.
    """
    num_nodes = draw(st.integers(min_value=2, max_value=8))
    nodes = list(range(num_nodes))
    rates = st.floats(
        min_value=0.01, max_value=4.0, allow_nan=False, allow_infinity=False
    )

    def path_strategy():
        return st.lists(
            st.sampled_from(nodes), min_size=1, max_size=5
        ).map(tuple)

    flows = []
    num_flows = draw(st.integers(min_value=1, max_value=6))
    for index in range(num_flows):
        paths = draw(st.lists(path_strategy(), min_size=1, max_size=3))
        demand = draw(rates)
        caps = None
        if draw(st.booleans()):
            caps = [draw(rates) for _ in paths]
        # Occasionally reuse a flow id to cover the duplicate-id overwrite
        # semantics of the reference bookkeeping.
        flow_id = f"f{index if not (index and draw(st.booleans())) else index - 1}"
        flows.append(
            FlowSpec(flow_id=flow_id, paths=paths, demand=demand, subflow_caps=caps)
        )

    capacities = {}
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        link = (draw(st.sampled_from(nodes)), draw(st.sampled_from(nodes)))
        capacities[link] = draw(
            st.one_of(st.just(0.0), rates)  # saturated-at-zero links included
        )
    default_capacity = draw(st.sampled_from([0.5, 1.0, 2.0]))
    return flows, capacities, default_capacity


class TestMaxMinParity:
    @COMMON_SETTINGS
    @given(allocation_problems())
    def test_bitwise_equal_to_reference(self, problem):
        flows, capacities, default_capacity = problem
        new = max_min_fair_allocation(
            flows, capacities, default_capacity=default_capacity
        )
        old = max_min_fair_allocation_reference(
            flows, capacities, default_capacity=default_capacity
        )
        assert new.flow_rates == old.flow_rates
        assert new.subflow_rates == old.subflow_rates
        assert new.link_loads == old.link_loads

    def test_zero_hop_and_saturated_links(self):
        flows = [
            FlowSpec("local", [("a",)], demand=0.7),
            FlowSpec("dead", [("a", "b")], demand=1.0),
            FlowSpec("mixed", [("a",), ("a", "c", "b")], demand=2.0),
        ]
        capacities = {("a", "b"): 0.0, ("a", "c"): 1.0, ("c", "b"): 0.5}
        new = max_min_fair_allocation(flows, capacities)
        old = max_min_fair_allocation_reference(flows, capacities)
        assert new.flow_rates == old.flow_rates
        assert new.subflow_rates == old.subflow_rates
        assert new.link_loads == old.link_loads
        assert new.flow_rates["dead"] == 0.0
        assert new.flow_rates["local"] == pytest.approx(0.7)

    def test_repeated_link_path(self):
        # A path that traverses (a, b) twice: one claimant, double load.
        flows = [
            FlowSpec("loop", [("a", "b", "a", "b")], demand=3.0),
            FlowSpec("plain", [("a", "b")], demand=3.0),
        ]
        capacities = {("a", "b"): 1.0, ("b", "a"): 1.0}
        new = max_min_fair_allocation(flows, capacities)
        old = max_min_fair_allocation_reference(flows, capacities)
        assert new.flow_rates == old.flow_rates
        assert new.link_loads == old.link_loads

    def test_fluid_scale_instance(self, equipment_jellyfish):
        """One realistic fluid-simulator-sized instance, exact parity."""
        from repro.simulation.fluid import (
            TCP_EIGHT_FLOWS,
            SimulationConfig,
            _build_flow_specs,
            _link_capacities,
        )
        from repro.utils.rng import ensure_rng

        traffic = random_permutation_traffic(equipment_jellyfish, rng=11)
        config = SimulationConfig(
            routing="ksp", k=8, congestion_control=TCP_EIGHT_FLOWS
        )
        path_set = build_path_set(
            equipment_jellyfish.graph, list(traffic.switch_pairs()), scheme="ksp", k=8
        )
        specs = _build_flow_specs(traffic, path_set, config, ensure_rng(11))
        capacities = _link_capacities(equipment_jellyfish)
        new = max_min_fair_allocation(specs, capacities)
        old = max_min_fair_allocation_reference(specs, capacities)
        assert new.flow_rates == old.flow_rates
        assert new.subflow_rates == old.subflow_rates
        assert new.link_loads == old.link_loads


def _assert_same_matrices(new_tuple, old_tuple):
    a_eq_new, b_eq_new, a_ub_new, b_ub_new, num_vars_new = new_tuple
    a_eq_old, b_eq_old, a_ub_old, b_ub_old, num_vars_old = old_tuple
    assert num_vars_new == num_vars_old
    for new, old in ((a_eq_new, a_eq_old), (a_ub_new, a_ub_old)):
        new = new.copy()
        old = old.copy()
        new.sum_duplicates()
        old.sum_duplicates()
        new.sort_indices()
        old.sort_indices()
        assert new.shape == old.shape
        assert np.array_equal(new.indptr, old.indptr)
        assert np.array_equal(new.indices, old.indices)
        assert np.array_equal(new.data, old.data)
    assert np.array_equal(b_eq_new, b_eq_old)
    assert np.array_equal(b_ub_new, b_ub_old)


class TestLpAssemblyParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_edge_lp_matrices_equal(self, seed):
        topology = JellyfishTopology.build(8, 6, 3, rng=seed)
        traffic = random_permutation_traffic(topology, rng=seed)
        demands = traffic.switch_pairs()
        if not demands:
            pytest.skip("degenerate permutation")
        _assert_same_matrices(
            _assemble_edge_lp(topology, demands),
            assemble_edge_lp_reference(topology, demands),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_path_lp_matrices_equal(self, seed):
        topology = JellyfishTopology.build(10, 7, 4, rng=seed)
        traffic = random_permutation_traffic(topology, rng=seed)
        demands = traffic.switch_pairs()
        path_set = build_path_set(topology.graph, list(demands), scheme="ksp", k=8)
        structure = PathLPStructure(topology, scheme="ksp", k=8)
        _assert_same_matrices(
            structure.assemble(demands, path_set),
            assemble_path_lp_reference(topology, demands, path_set),
        )

    def test_edge_lp_theta_unchanged(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rng=4)
        new = max_concurrent_flow_edge_lp(small_fattree, traffic)
        old = max_concurrent_flow_edge_lp_reference(small_fattree, traffic)
        assert new == pytest.approx(old, abs=1e-9)


class TestPathLpThetaFig10Suite:
    """Theta parity to 1e-9 on the fig10 small-graph configurations."""

    @pytest.mark.parametrize("config", [(10, 7, 4), (20, 8, 5)])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_theta_unchanged(self, config, seed):
        clear_shared_path_sets()
        clear_shared_lp_structures()
        num_switches, ports, degree = config
        topology = JellyfishTopology.build(num_switches, ports, degree, rng=seed)
        for trial in range(2):
            traffic = random_permutation_traffic(topology, rng=seed * 10 + trial)
            new = max_concurrent_flow_path_lp(topology, traffic, k=12)
            old = max_concurrent_flow_path_lp_reference(topology, traffic, k=12)
            assert new == pytest.approx(old, abs=1e-9)


class TestDecisionPathParity:
    """The screened/guarded decision path must match the plain LP decision."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_supports_matrix_equals_lp_decision(self, seed):
        from repro.flow.throughput import _supports_matrix, normalized_throughput

        # Sweep server counts across the feasibility threshold so the suite
        # covers comfortably feasible, near-threshold and screened-out cases.
        for num_servers in (16, 28, 40, 64):
            topology = JellyfishTopology.from_equipment(
                num_switches=16, ports_per_switch=6,
                num_servers=num_servers, rng=seed,
            )
            if not topology.is_connected():
                continue
            traffic = random_permutation_traffic(topology, rng=seed + 100)
            expected = normalized_throughput(
                topology, traffic, engine="path", k=8
            ).supports_full_capacity()
            assert _supports_matrix(topology, traffic, "path", 8) == expected

    def test_upper_bound_is_sound(self):
        from repro.flow.throughput import _throughput_upper_bound

        for seed in range(3):
            topology = JellyfishTopology.build(12, 6, 3, rng=seed)
            traffic = random_permutation_traffic(topology, rng=seed + 50)
            bound = _throughput_upper_bound(topology, traffic)
            theta = max_concurrent_flow_edge_lp(topology, traffic)
            assert theta <= bound + 1e-9


class TestSharedState:
    def test_structure_reused_for_unchanged_graph(self):
        clear_shared_lp_structures()
        topology = JellyfishTopology.build(10, 6, 3, rng=3)
        first = shared_path_lp_structure(topology, k=8)
        second = shared_path_lp_structure(topology, k=8)
        assert first is second
        assert shared_path_lp_structure(topology, k=4) is not first

    def test_structure_invalidated_on_mutation(self):
        clear_shared_lp_structures()
        topology = JellyfishTopology.build(10, 6, 3, rng=3)
        first = shared_path_lp_structure(topology, k=8)
        edge = next(iter(topology.graph.edges))
        topology.graph.remove_edge(*edge)
        second = shared_path_lp_structure(topology, k=8)
        assert first is not second
        assert second.num_arcs == first.num_arcs - 2

    def test_shared_path_set_extends_lazily(self):
        clear_shared_path_sets()
        topology = JellyfishTopology.build(10, 6, 3, rng=5)
        nodes = sorted(topology.graph.nodes)
        table = shared_path_set(topology.graph, [(nodes[0], nodes[1])], k=4)
        assert len(table) == 1
        again = shared_path_set(
            topology.graph, [(nodes[0], nodes[1]), (nodes[1], nodes[2])], k=4
        )
        assert again is table
        assert len(table) == 2

    def test_shared_path_set_matches_build_path_set(self):
        clear_shared_path_sets()
        topology = JellyfishTopology.build(12, 6, 4, rng=6)
        nodes = sorted(topology.graph.nodes)
        pairs = [(a, b) for a in nodes[:4] for b in nodes[:4] if a != b]
        shared = shared_path_set(topology.graph, pairs, scheme="ksp", k=6)
        built = build_path_set(topology.graph, pairs, scheme="ksp", k=6)
        for pair in pairs:
            assert shared.get(pair) == built.get(pair)
