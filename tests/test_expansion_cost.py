"""Tests for the expansion cost model."""

import pytest

from repro.expansion.cost import CostModel


class TestSwitchAndCableCosts:
    def test_switch_cost_scales_with_ports(self):
        model = CostModel(cost_per_port=100.0)
        assert model.switch_cost(24) == pytest.approx(2400.0)
        assert model.switch_cost(48) == pytest.approx(4800.0)

    def test_cable_cost_electrical(self):
        model = CostModel(cable_cost_per_meter=5.0, labor_fraction=0.1)
        assert model.cable_cost(4.0) == pytest.approx(4.0 * 5.0 * 1.1)

    def test_cable_cost_optical_adds_transceiver(self):
        model = CostModel(
            cable_cost_per_meter=5.0,
            optical_transceiver_cost=200.0,
            electrical_cable_limit_m=10.0,
            labor_fraction=0.0,
        )
        assert model.cable_cost(12.0) == pytest.approx(12 * 5 + 200)

    def test_default_length_used(self):
        model = CostModel(default_cable_length_m=5.0)
        assert model.cable_cost() == model.cable_cost(5.0)

    def test_cables_cost(self):
        model = CostModel()
        assert model.cables_cost(3, 2.0) == pytest.approx(3 * model.cable_cost(2.0))

    def test_rewiring_cost(self):
        model = CostModel(rewiring_cost_per_cable=7.0)
        assert model.rewiring_cost(4) == pytest.approx(28.0)

    def test_expansion_cost_composition(self):
        model = CostModel()
        total = model.expansion_cost(
            new_switch_ports=24, new_cables=10, cables_moved=5, cable_length_m=3.0
        )
        expected = (
            model.cost_per_port * 24
            + model.cables_cost(10, 3.0)
            + model.rewiring_cost(5)
        )
        assert total == pytest.approx(expected)


class TestValidation:
    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            CostModel(cost_per_port=-1.0)

    def test_negative_arguments_rejected(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.switch_cost(-1)
        with pytest.raises(ValueError):
            model.cable_cost(-2.0)
        with pytest.raises(ValueError):
            model.rewiring_cost(-3)
