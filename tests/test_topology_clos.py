"""Tests for the leaf-spine Clos topology."""

import pytest

from repro.topologies.base import TopologyError
from repro.topologies.clos import LeafSpineTopology


class TestBuild:
    def test_shape(self):
        topo = LeafSpineTopology.build(
            num_leaves=4, num_spines=2, servers_per_leaf=3,
            leaf_ports=8, spine_ports=8,
        )
        assert topo.num_switches == 6
        assert topo.num_servers == 12
        assert topo.num_links == 8
        assert topo.is_connected()

    def test_every_leaf_connects_to_every_spine(self):
        topo = LeafSpineTopology.build(3, 2, 2, leaf_ports=8, spine_ports=8)
        for leaf in topo.leaves():
            for spine in topo.spines():
                assert topo.graph.has_edge(leaf, spine)

    def test_parallel_links_modelled_as_capacity(self):
        topo = LeafSpineTopology.build(
            2, 2, 2, leaf_ports=8, spine_ports=8, links_per_pair=2
        )
        capacity = topo.graph.edges[topo.leaves()[0], topo.spines()[0]]["capacity"]
        assert capacity == 2.0

    def test_leaf_port_overflow_rejected(self):
        with pytest.raises(TopologyError):
            LeafSpineTopology.build(2, 4, 5, leaf_ports=8, spine_ports=16)

    def test_spine_port_overflow_rejected(self):
        with pytest.raises(TopologyError):
            LeafSpineTopology.build(20, 1, 2, leaf_ports=8, spine_ports=16)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            LeafSpineTopology.build(0, 2, 2, leaf_ports=8, spine_ports=8)


class TestCapacityMetrics:
    def test_uplink_capacity_per_leaf(self):
        topo = LeafSpineTopology.build(4, 3, 2, leaf_ports=8, spine_ports=8)
        assert topo.uplink_capacity_per_leaf() == pytest.approx(3.0)

    def test_bisection(self):
        topo = LeafSpineTopology.build(4, 3, 2, leaf_ports=8, spine_ports=8)
        # 12 uplinks in total => bisection 6.
        assert topo.bisection_bandwidth_edges() == pytest.approx(6.0)
