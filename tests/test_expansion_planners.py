"""Tests for the Clos (LEGUP-like) and Jellyfish expansion planners."""

import pytest

from repro.expansion.cost import CostModel
from repro.expansion.legup import ClosExpansionPlanner
from repro.expansion.planner import JellyfishExpansionPlanner


class TestClosPlanner:
    def test_initial_stage_adds_required_servers(self):
        planner = ClosExpansionPlanner(
            leaf_ports=24, spine_ports=48, servers_per_leaf=12,
            reserved_ports_per_leaf=3,
        )
        state = planner.expand(budget=100_000.0, new_servers=120)
        assert state.num_servers >= 120
        assert state.num_spines >= 1
        assert state.budget_spent_this_stage <= 100_000.0 + 1e-6

    def test_bisection_monotone_in_spines(self):
        planner = ClosExpansionPlanner(
            leaf_ports=24, spine_ports=48, servers_per_leaf=12,
            reserved_ports_per_leaf=3,
        )
        first = planner.expand(budget=40_000.0, new_servers=96)
        second = planner.expand(budget=40_000.0, new_servers=0)
        assert second.normalized_bisection_bandwidth() >= (
            first.normalized_bisection_bandwidth() - 1e-9
        )

    def test_structure_limits_spine_count(self):
        planner = ClosExpansionPlanner(
            leaf_ports=8, spine_ports=48, servers_per_leaf=4,
            reserved_ports_per_leaf=1,
        )
        state = planner.expand(budget=10_000_000.0, new_servers=16)
        # Only 3 uplink ports per leaf remain, so at most 3 spines fit.
        assert state.num_spines <= 3

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ClosExpansionPlanner(
                leaf_ports=10, spine_ports=48, servers_per_leaf=9,
                reserved_ports_per_leaf=2,
            )

    def test_to_topology(self):
        planner = ClosExpansionPlanner(
            leaf_ports=24, spine_ports=48, servers_per_leaf=12,
            reserved_ports_per_leaf=3,
        )
        state = planner.expand(budget=60_000.0, new_servers=48)
        topo = state.to_topology(leaf_ports=24, spine_ports=48)
        assert topo.num_servers == state.num_servers
        assert topo.is_connected()


class TestJellyfishPlanner:
    def test_initial_stage_builds_network(self):
        planner = JellyfishExpansionPlanner(
            switch_ports=12, servers_per_switch=6, rng=1
        )
        state = planner.expand(budget=50_000.0, new_servers=60)
        assert state.num_servers >= 60
        assert planner.topology.is_connected()
        assert state.normalized_bisection > 0.0

    def test_capacity_only_expansion_raises_bisection(self):
        planner = JellyfishExpansionPlanner(
            switch_ports=12, servers_per_switch=6, rng=2
        )
        first = planner.expand(budget=30_000.0, new_servers=48)
        second = planner.expand(budget=30_000.0, new_servers=0)
        assert second.num_servers == first.num_servers
        assert second.num_switches > first.num_switches
        assert second.normalized_bisection >= first.normalized_bisection - 0.05

    def test_budget_respected(self):
        planner = JellyfishExpansionPlanner(
            switch_ports=12, servers_per_switch=6, rng=3
        )
        planner.expand(budget=100_000.0, new_servers=48)
        state = planner.expand(budget=5_000.0, new_servers=0)
        assert state.budget_spent_this_stage <= 5_000.0 + 1e-6

    def test_initial_stage_requires_servers(self):
        planner = JellyfishExpansionPlanner(switch_ports=12, servers_per_switch=6)
        with pytest.raises(ValueError):
            planner.expand(budget=10_000.0, new_servers=0)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            JellyfishExpansionPlanner(switch_ports=8, servers_per_switch=8)


class TestHeadToHead:
    def test_jellyfish_more_cost_effective_than_clos(self):
        """The Fig 7 headline: same budgets, higher bisection for Jellyfish."""
        cost_model = CostModel()
        clos = ClosExpansionPlanner(
            leaf_ports=24, spine_ports=48, servers_per_leaf=15,
            reserved_ports_per_leaf=3, cost_model=cost_model,
        )
        jelly = JellyfishExpansionPlanner(
            switch_ports=24, servers_per_switch=15, cost_model=cost_model, rng=4
        )
        budgets = [60_000.0, 60_000.0, 60_000.0]
        servers = [120, 60, 0]
        clos_final, jelly_final = None, None
        for budget, new_servers in zip(budgets, servers):
            clos_final = clos.expand(budget, new_servers)
            jelly_final = jelly.expand(budget, new_servers)
        assert (
            jelly_final.normalized_bisection
            > clos_final.normalized_bisection_bandwidth()
        )
