"""Property-based degradation contract: every kernel survives partition.

Hypothesis draws damaged topologies -- a Jellyfish with a random fraction
of links and switches mask-failed, often partitioned into several
components or stripped of servers -- and asserts the documented contract
of every layer: structured :class:`DegradationReport` invariants, skip-mode
routing tables that hold routes for exactly the reachable pairs, and flow /
simulation engines that return finite values in [0, 1] (zero for lost
demand) instead of raising or emitting NaN.
"""

import json
import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.failures.degradation import (
    component_labels_by_node,
    degradation_report,
    split_reachable_demands,
)
from repro.failures.injection import failed_link_topology, failed_switch_topology
from repro.flow.throughput import degraded_throughput
from repro.routing.paths import build_path_set
from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.simulation.fluid import SimulationConfig, simulate_fluid
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic

# Each example builds a topology and may solve an LP: keep counts modest.
COMMON_SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def damaged_problem(draw):
    """A (plant, damaged topology, traffic, seed) tuple, often partitioned."""
    num_switches = draw(st.integers(min_value=10, max_value=20))
    degree = draw(st.integers(min_value=3, max_value=5))
    if (num_switches * degree) % 2 != 0:
        num_switches += 1
    ports = degree + draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    link_fraction = draw(st.floats(min_value=0.0, max_value=0.6))
    switch_fraction = draw(st.floats(min_value=0.0, max_value=0.4))

    plant = JellyfishTopology.build(num_switches, ports, degree, rng=seed)
    damaged = failed_switch_topology(
        failed_link_topology(plant, link_fraction, rng=seed + 1),
        switch_fraction,
        rng=seed + 2,
    )
    traffic = random_permutation_traffic(damaged, rng=seed + 3)
    return plant, damaged, traffic, seed


class TestDegradationReportInvariants:
    @COMMON_SETTINGS
    @given(damaged_problem())
    def test_report_is_consistent_and_serializable(self, problem):
        plant, damaged, traffic, _ = problem
        report = degradation_report(
            damaged, traffic=traffic, baseline_servers=plant.num_servers
        )
        assert sum(report.component_sizes) == report.num_switches
        assert sum(report.component_servers) == report.num_servers
        assert len(report.component_sizes) == len(report.component_servers)
        # Sorted by servers desc: index 0 is the principal component.
        assert list(report.component_servers) == sorted(
            report.component_servers, reverse=True
        )
        assert report.stranded_servers >= 0
        assert 0 <= report.unreachable_pairs <= report.demand_pairs
        assert 0.0 <= report.server_pair_connectivity <= 1.0
        assert math.isfinite(report.server_pair_connectivity)
        json.dumps(report.as_dict())  # must round-trip to JSON

    @COMMON_SETTINGS
    @given(damaged_problem())
    def test_split_matches_component_labels(self, problem):
        _, damaged, traffic, _ = problem
        reachable, unreachable = split_reachable_demands(damaged, traffic)
        assert len(reachable) + len(unreachable) == sum(1 for _ in traffic)
        labels = component_labels_by_node(damaged)
        for demand in reachable:
            src, dst = demand.source_switch, demand.destination_switch
            assert src == dst or labels[src] == labels[dst]
        for demand in unreachable:
            src, dst = demand.source_switch, demand.destination_switch
            assert labels[src] != labels[dst]


class TestRoutingUnderPartition:
    @COMMON_SETTINGS
    @given(damaged_problem(), st.sampled_from(["ksp", "ecmp"]))
    def test_skip_mode_routes_exactly_the_reachable_pairs(self, problem, scheme):
        _, damaged, traffic, _ = problem
        pairs = [
            pair for pair in traffic.switch_pairs() if pair[0] != pair[1]
        ]
        path_set = build_path_set(
            damaged.graph, pairs, scheme=scheme, k=4, on_unreachable="skip"
        )
        path_set.validate_against(damaged.graph)
        labels = component_labels_by_node(damaged)
        for source, target in pairs:
            if labels[source] == labels[target]:
                assert path_set.paths[(source, target)]
            else:
                assert (source, target) not in path_set.paths


class TestFlowEnginesUnderPartition:
    @COMMON_SETTINGS
    @given(damaged_problem())
    def test_path_throughput_finite_and_degradation_scaled(self, problem):
        plant, damaged, traffic, _ = problem
        outcome = degraded_throughput(
            damaged, traffic=traffic, engine="path", k=4,
            baseline_servers=plant.num_servers,
        )
        assert math.isfinite(outcome.normalized)
        assert 0.0 <= outcome.normalized <= 1.0
        assert outcome.report.num_components >= 1
        if (
            outcome.report.demand_pairs
            and outcome.report.unreachable_pairs == outcome.report.demand_pairs
        ):
            assert outcome.normalized == 0.0

    @COMMON_SETTINGS
    @given(
        damaged_problem(),
        st.sampled_from(["tcp1", "tcp8", "mptcp"]),
        st.sampled_from(["ksp", "ecmp"]),
    )
    def test_fluid_simulation_finite(self, problem, cc, routing):
        _, damaged, traffic, seed = problem
        config = SimulationConfig(routing=routing, k=4, congestion_control=cc)
        result = simulate_fluid(damaged, traffic, config, rng=seed)
        for value in result.flow_throughputs:
            assert math.isfinite(value)
            assert 0.0 <= value <= 1.0
        assert math.isfinite(result.average_throughput)
        assert 0.0 < result.fairness <= 1.0 or not result.flow_throughputs

    @COMMON_SETTINGS
    @given(damaged_problem())
    def test_aimd_simulation_finite(self, problem):
        _, damaged, traffic, seed = problem
        config = AimdConfig(
            routing="ecmp", k=4, congestion_control="tcp1",
            rounds=16, warmup_rounds=4,
        )
        result = simulate_aimd(damaged, traffic, config, rng=seed)
        for value in result.flow_throughputs:
            assert math.isfinite(value)
            assert 0.0 <= value <= 1.0 + 1e-9


class TestTotalLoss:
    def test_every_engine_survives_losing_every_switch(self):
        plant = JellyfishTopology.build(12, 5, 3, rng=0)
        dead = failed_switch_topology(plant, 1.0, rng=1)
        assert dead.num_switches == 0
        traffic = random_permutation_traffic(dead, rng=2)
        assert not list(traffic)
        report = degradation_report(
            dead, traffic=traffic, baseline_servers=plant.num_servers
        )
        assert report.num_components == 0
        assert report.stranded_servers == plant.num_servers
        assert report.server_pair_connectivity == 0.0
        outcome = degraded_throughput(
            dead, traffic=traffic, engine="path", k=4,
            baseline_servers=plant.num_servers,
        )
        assert outcome.normalized == 0.0
        result = simulate_fluid(dead, traffic, SimulationConfig(routing="ecmp", k=4))
        assert result.flow_throughputs == []
