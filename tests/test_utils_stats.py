"""Tests for repro.utils.stats."""

import pytest

from repro.utils.stats import jains_fairness_index, mean, percentile, summarize


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_accepts_generator(self):
        assert mean(x for x in [2.0, 4.0]) == pytest.approx(3.0)


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == pytest.approx(2)

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5)

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_element(self):
        assert percentile([4.2], 73) == pytest.approx(4.2)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestJainsFairnessIndex:
    def test_equal_rates_is_one(self):
        assert jains_fairness_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_hog_approaches_one_over_n(self):
        assert jains_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_fair(self):
        assert jains_fairness_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jains_fairness_index([1.0, -0.1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jains_fairness_index([])

    def test_bounds(self):
        value = jains_fairness_index([0.5, 0.9, 0.97, 1.0])
        assert 0.0 < value <= 1.0


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4

    def test_as_dict_keys(self):
        summary = summarize([1.0])
        assert set(summary.as_dict()) == {"mean", "min", "max", "p50", "p99", "count"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
