"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    require_fraction,
    require_integer,
    require_non_negative,
    require_positive,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(1, "x")
        require_positive(0.5, "x")

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(ValueError):
            require_positive(-1, "x")

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            require_positive("3", "x")
        with pytest.raises(TypeError):
            require_positive(True, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        require_non_negative(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")


class TestRequireInteger:
    def test_accepts_int(self):
        require_integer(5, "x")

    def test_rejects_float_and_bool(self):
        with pytest.raises(TypeError):
            require_integer(5.0, "x")
        with pytest.raises(TypeError):
            require_integer(True, "x")


class TestRequireFraction:
    def test_accepts_bounds(self):
        require_fraction(0.0, "x")
        require_fraction(1.0, "x")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            require_fraction(1.5, "x")
        with pytest.raises(ValueError):
            require_fraction(-0.5, "x")
