"""Parity suite for the vectorized AIMD round engine (repro.simulation.aimd).

Pins the array-native engine bit-for-bit against the retained scalar
reference (:mod:`repro.simulation._reference`) across routing schemes
(ksp/ecmp), congestion controls (tcp1/tcp8/mptcp), same-rack demands and
zero-demand corners: throughputs, per-round traces and the convergence
measurement must match exactly (the kernel's ``np.bincount`` segmented sums
accumulate in the same order as the reference's dict walks).  Also covers
the shared content-hash-cached capacity helper both simulators now use.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation._reference import simulate_aimd_reference
from repro.simulation.aimd import AimdConfig, measure_convergence_round, simulate_aimd
from repro.simulation.capacity import clear_capacity_cache, link_capacities
from repro.topologies.clos import LeafSpineTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import Demand, TrafficMatrix, random_permutation_traffic

COMMON_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Small prebuilt topologies reused across hypothesis examples (construction
#: and routing dominate example time; the engines under test do not).
_TOPOLOGIES = [
    JellyfishTopology.build(8, 5, 3, rng=0),
    JellyfishTopology.build(12, 6, 4, rng=1),
]


def _assert_same_result(new, old):
    assert len(new.flow_throughputs) == len(old.flow_throughputs)
    for fast, slow in zip(new.flow_throughputs, old.flow_throughputs):
        assert float(fast) == float(slow)
    assert new.rounds == old.rounds
    assert new.convergence_round == old.convergence_round
    if old.trace is None:
        assert new.trace is None
    else:
        assert np.array_equal(np.asarray(new.trace), np.asarray(old.trace))


@st.composite
def aimd_problems(draw):
    """Random (topology, traffic, config, seed) quadruples.

    Traffic mixes cross-rack demands, same-rack demands (source and
    destination on one switch) and zero-rate demands -- the corners the
    result assembly must preserve.
    """
    topology = draw(st.sampled_from(_TOPOLOGIES))
    switches = sorted(topology.graph.nodes)
    demands = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        source = draw(st.sampled_from(switches))
        if draw(st.booleans()):
            destination = source  # same-rack demand
        else:
            destination = draw(st.sampled_from(switches))
        rate = draw(st.sampled_from([0.0, 0.25, 1.0, 2.0]))
        demands.append(
            Demand(source=(source, 0), destination=(destination, 0), rate=rate)
        )
    rounds = draw(st.integers(min_value=1, max_value=25))
    config = AimdConfig(
        routing=draw(st.sampled_from(["ksp", "ecmp"])),
        k=draw(st.sampled_from([2, 4])),
        congestion_control=draw(st.sampled_from(["tcp1", "tcp8", "mptcp"])),
        subflows=draw(st.integers(min_value=1, max_value=4)),
        rounds=rounds,
        warmup_rounds=min(draw(st.integers(min_value=0, max_value=10)), rounds - 1),
        packets_per_round=draw(st.sampled_from([1, 10, 100])),
        initial_cwnd=draw(st.sampled_from([1.0, 2.0, 5.0])),
        record_trace=True,
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return topology, TrafficMatrix(demands), config, seed


class TestAimdParity:
    @COMMON_SETTINGS
    @given(aimd_problems())
    def test_bitwise_equal_to_reference(self, problem):
        topology, traffic, config, seed = problem
        new = simulate_aimd(topology, traffic, config, rng=seed)
        old = simulate_aimd_reference(topology, traffic, config, rng=seed)
        _assert_same_result(new, old)

    @pytest.mark.parametrize("congestion_control", ["tcp1", "tcp8", "mptcp"])
    @pytest.mark.parametrize("routing", ["ksp", "ecmp"])
    def test_permutation_traffic_parity(self, small_jellyfish, routing, congestion_control):
        """Realistic permutation workload, identical rng stream both sides."""
        config = AimdConfig(
            routing=routing,
            congestion_control=congestion_control,
            rounds=60,
            warmup_rounds=20,
            record_trace=True,
        )
        new = simulate_aimd(small_jellyfish, config=config, rng=9)
        old = simulate_aimd_reference(small_jellyfish, config=config, rng=9)
        _assert_same_result(new, old)

    def test_empty_traffic(self, small_jellyfish):
        empty = TrafficMatrix([])
        new = simulate_aimd(small_jellyfish, empty, rng=0)
        old = simulate_aimd_reference(small_jellyfish, empty, rng=0)
        _assert_same_result(new, old)
        assert new.average_throughput == 1.0

    def test_all_same_rack(self, small_jellyfish):
        switch = sorted(small_jellyfish.graph.nodes)[0]
        traffic = TrafficMatrix(
            [Demand(source=(switch, 0), destination=(switch, 1), rate=1.0)]
        )
        config = AimdConfig(rounds=5, warmup_rounds=1, record_trace=True)
        new = simulate_aimd(small_jellyfish, traffic, config, rng=0)
        old = simulate_aimd_reference(small_jellyfish, traffic, config, rng=0)
        _assert_same_result(new, old)
        assert new.flow_throughputs == [1.0]
        assert np.all(np.asarray(new.trace) == 1.0)

    def test_zero_demand_excluded_from_report(self, small_jellyfish):
        switches = sorted(small_jellyfish.graph.nodes)
        traffic = TrafficMatrix(
            [
                Demand(source=(switches[0], 0), destination=(switches[1], 0), rate=0.0),
                Demand(source=(switches[2], 0), destination=(switches[3], 0), rate=1.0),
            ]
        )
        config = AimdConfig(rounds=10, warmup_rounds=2, record_trace=True)
        new = simulate_aimd(small_jellyfish, traffic, config, rng=4)
        old = simulate_aimd_reference(small_jellyfish, traffic, config, rng=4)
        _assert_same_result(new, old)
        assert len(new.flow_throughputs) == 1
        assert np.asarray(new.trace).shape == (10, 1)

    def test_tcp8_per_subflow_cap_enforced(self, small_jellyfish):
        """tcp8 connections stripe evenly: one subflow cannot exceed 1/8."""
        traffic = random_permutation_traffic(small_jellyfish, rng=3)
        config = AimdConfig(
            congestion_control="tcp8", rounds=80, warmup_rounds=20, record_trace=True
        )
        new = simulate_aimd(small_jellyfish, traffic, config, rng=3)
        old = simulate_aimd_reference(small_jellyfish, traffic, config, rng=3)
        _assert_same_result(new, old)
        # With every subflow capped at demand/subflows, a connection that
        # loses one path cannot compensate on another: per-round normalized
        # goodput never exceeds 1 (cap) and the cap binds in aggregate.
        assert np.asarray(new.trace).max() <= 1.0 + 1e-9


class TestCapacityHelper:
    def test_shared_between_fluid_and_aimd(self, small_jellyfish):
        from repro.simulation.fluid import _link_capacities

        table = _link_capacities(small_jellyfish)
        assert table is link_capacities(small_jellyfish)
        scaled = link_capacities(small_jellyfish, scale=100)
        assert scaled is not table
        edge = next(iter(table))
        assert scaled[edge] == table[edge] * 100

    def test_matches_graph_walk(self, small_jellyfish):
        clear_capacity_cache()
        table = link_capacities(small_jellyfish, scale=7.0)
        expected = {}
        for u, v, data in small_jellyfish.graph.edges(data=True):
            expected[(u, v)] = expected[(v, u)] = float(data.get("capacity", 1.0)) * 7.0
        assert table == expected

    def test_explicit_capacities_honored(self):
        clear_capacity_cache()
        topology = LeafSpineTopology.build(
            num_leaves=4, num_spines=2, servers_per_leaf=2,
            leaf_ports=10, spine_ports=12, links_per_pair=3,
        )
        table = link_capacities(topology)
        for u, v, data in topology.graph.edges(data=True):
            assert table[(u, v)] == float(data.get("capacity", 1.0))
            assert table[(v, u)] == float(data.get("capacity", 1.0))

    def test_cache_distinguishes_capacity_annotations(self):
        clear_capacity_cache()
        small = LeafSpineTopology.build(
            num_leaves=3, num_spines=2, servers_per_leaf=2,
            leaf_ports=8, spine_ports=8, links_per_pair=1,
        )
        big = LeafSpineTopology.build(
            num_leaves=3, num_spines=2, servers_per_leaf=2,
            leaf_ports=8, spine_ports=8, links_per_pair=2,
        )
        # Same labeled structure (a content-hash collision by design: trunk
        # multiplicity lives in the edge attribute), different capacities.
        assert link_capacities(small) != link_capacities(big)
