"""Tests for the Jellyfish topology (construction and incremental expansion)."""

import pytest

from repro.graphs.regular import is_regular
from repro.topologies.base import TopologyError
from repro.topologies.jellyfish import JellyfishTopology


class TestBuild:
    def test_rrg_shape(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=1)
        assert topo.num_switches == 20
        assert is_regular(topo.graph, 4)
        assert topo.num_servers == 20 * 2

    def test_servers_default_to_remaining_ports(self):
        topo = JellyfishTopology.build(10, 8, 5, rng=2)
        assert all(count == 3 for count in topo.servers.values())

    def test_explicit_servers_per_switch(self):
        topo = JellyfishTopology.build(10, 8, 5, rng=3, servers_per_switch=1)
        assert topo.num_servers == 10

    def test_connected_at_paper_degrees(self):
        topo = JellyfishTopology.build(50, 10, 5, rng=4)
        assert topo.is_connected()

    def test_odd_total_degree_leaves_single_port(self):
        # 5 switches with network degree 3: product is odd, so the graph is
        # built at degree 2 and at most a handful of ports stay free.
        topo = JellyfishTopology.build(5, 5, 3, rng=5)
        assert topo.num_switches == 5
        topo.validate()

    def test_degree_exceeding_ports_rejected(self):
        with pytest.raises(TopologyError):
            JellyfishTopology.build(10, 4, 5)

    def test_servers_plus_degree_exceeding_ports_rejected(self):
        with pytest.raises(TopologyError):
            JellyfishTopology.build(10, 6, 4, servers_per_switch=3)


class TestFromEquipment:
    def test_all_ports_used(self):
        topo = JellyfishTopology.from_equipment(20, 6, 30, rng=1)
        # Servers spread evenly (1 or 2 per switch) and every remaining port
        # is cabled into the network (at most one port unmatched overall).
        free = sum(topo.free_ports(node) for node in topo.graph.nodes)
        assert free <= 1
        assert topo.num_servers == 30

    def test_even_spread(self):
        topo = JellyfishTopology.from_equipment(10, 6, 25, rng=2)
        counts = sorted(topo.servers.values())
        assert counts[0] >= 2 and counts[-1] <= 3

    def test_too_many_servers_rejected(self):
        with pytest.raises(TopologyError):
            JellyfishTopology.from_equipment(10, 4, 40)

    def test_zero_servers(self):
        topo = JellyfishTopology.from_equipment(10, 4, 0, rng=3)
        assert topo.num_servers == 0


class TestIncrementalExpansion:
    def test_add_switch_preserves_degrees(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=1)
        degrees_before = dict(topo.graph.degree())
        topo.add_switch("new", 6, servers=2, rng=2)
        # Existing switches keep their degree: each removed link is replaced
        # by a link to the new switch.
        for node, degree in topo.graph.degree():
            if node == "new":
                continue
            assert degree == degrees_before[node]

    def test_add_switch_uses_its_ports(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=3)
        topo.add_switch("new", 6, servers=2, rng=4)
        assert topo.graph.degree("new") == 4
        assert topo.servers["new"] == 2

    def test_add_rack_requires_servers(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=5)
        with pytest.raises(TopologyError):
            topo.add_rack("new", 6, servers=0)

    def test_duplicate_switch_rejected(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=6)
        with pytest.raises(TopologyError):
            topo.add_switch(0, 6)

    def test_expand_adds_counted_racks(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=7)
        topo.expand(5, 6, 2, rng=8)
        assert topo.num_switches == 25
        assert topo.num_servers == 20 * 2 + 5 * 2
        assert topo.is_connected()

    def test_heterogeneous_expansion(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=9)
        topo.add_switch("big", 12, servers=4, rng=10)
        assert topo.graph.degree("big") == 8
        topo.validate()

    def test_expansion_keeps_total_link_count(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=11)
        links_before = topo.num_links
        topo.add_switch("new", 6, servers=2, rng=12)
        # Every pair of new ports removes one link and adds two.
        assert topo.num_links == links_before + 2

    def test_rewired_links_for_expansion(self):
        topo = JellyfishTopology.build(20, 6, 4, rng=13)
        assert topo.rewired_links_for_expansion(4) == 2
        with pytest.raises(ValueError):
            topo.rewired_links_for_expansion(-2)
