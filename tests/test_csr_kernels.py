"""Parity suite for the CSR graph kernels (repro.graphs.csr).

Pins the array-native kernels against networkx and the retained pre-CSR
pure-Python implementations (:mod:`repro.routing._reference`):

* batched bitset BFS vs ``nx.single_source_shortest_path_length``
* CSR-native Yen vs the historical ``k_shortest_paths`` (path-for-path)
* shortest-path enumeration vs ``nx.all_shortest_paths``

on random Jellyfish/fat-tree-style graphs, including disconnected graphs
and degree-0 corners, plus direct tests of the CSRGraph cache lifecycle.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.csr import (
    CSRGraph,
    batched_hop_distances,
    clear_csr_cache,
    csr_graph,
)
from repro.graphs.regular import sequential_random_regular_graph
from repro.routing._reference import k_shortest_paths_reference
from repro.routing.ecmp import all_shortest_paths
from repro.routing.ksp import all_pairs_k_shortest_paths, k_shortest_paths
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology

COMMON_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def jellyfish_like_graphs(draw):
    """Random regular (Jellyfish-style) graphs, sometimes damaged.

    Damage removes random edges and isolates some nodes, covering the
    disconnected and degree-0 corners routing must survive.
    """
    num_nodes = draw(st.integers(min_value=4, max_value=30))
    degree = draw(st.integers(min_value=2, max_value=min(5, num_nodes - 1)))
    if (num_nodes * degree) % 2 != 0:
        degree -= 1
    degree = max(2, degree)
    seed = draw(st.integers(min_value=0, max_value=2**16))
    graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
    if draw(st.booleans()):
        edges = sorted(graph.edges)
        drop = draw(st.integers(min_value=0, max_value=max(0, len(edges) // 3)))
        for index in range(drop):
            edge = edges[(index * 7) % len(edges)]
            if graph.has_edge(*edge):
                graph.remove_edge(*edge)
    if draw(st.booleans()):
        isolated = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        graph.remove_edges_from(list(graph.edges(isolated)))
    return graph


class TestBatchedBfsParity:
    @COMMON_SETTINGS
    @given(jellyfish_like_graphs())
    def test_matches_networkx_single_source(self, graph):
        clear_csr_cache()
        csr = csr_graph(graph)
        matrix = batched_hop_distances(graph)
        for source in graph.nodes:
            expected = nx.single_source_shortest_path_length(graph, source)
            row = matrix[csr.index_of[source]]
            for column, node in enumerate(csr.nodes):
                assert row[column] == expected.get(node, -1)

    def test_subset_of_sources(self):
        topology = JellyfishTopology.build(20, 6, 4, rng=7)
        graph = topology.graph
        csr = csr_graph(graph)
        sources = sorted(graph.nodes)[:5]
        matrix = batched_hop_distances(graph, sources)
        assert matrix.shape == (5, graph.number_of_nodes())
        for row, source in enumerate(sources):
            expected = nx.single_source_shortest_path_length(graph, source)
            assert {
                csr.nodes[i]: int(v) for i, v in enumerate(matrix[row]) if v >= 0
            } == dict(expected)

    def test_fattree_tuple_nodes(self):
        graph = FatTreeTopology.build(4).graph
        csr = csr_graph(graph)
        matrix = batched_hop_distances(graph)
        source = csr.nodes[0]
        expected = nx.single_source_shortest_path_length(graph, source)
        row = matrix[0]
        assert {csr.nodes[i]: int(v) for i, v in enumerate(row) if v >= 0} == dict(
            expected
        )

    def test_more_than_64_sources_cross_word_boundary(self):
        graph = nx.cycle_graph(70)
        matrix = batched_hop_distances(graph)
        assert matrix.shape == (70, 70)
        assert int(matrix.max()) == 35
        assert (np.diagonal(matrix) == 0).all()

    def test_empty_and_edgeless_graphs(self):
        assert batched_hop_distances(nx.Graph()).shape == (0, 0)
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        matrix = batched_hop_distances(graph)
        assert (np.diagonal(matrix) == 0).all()
        assert (matrix.sum(axis=1) == -2).all()  # every off-diagonal is -1

    def test_missing_source_raises(self):
        graph = nx.path_graph(3)
        with pytest.raises(nx.NodeNotFound):
            batched_hop_distances(graph, [99])


class TestYenParity:
    """CSR Yen must match the pre-CSR implementation path-for-path."""

    @COMMON_SETTINGS
    @given(jellyfish_like_graphs(), st.integers(min_value=1, max_value=8))
    def test_matches_reference_exactly(self, graph, k):
        clear_csr_cache()
        nodes = sorted(graph.nodes)
        source, target = nodes[0], nodes[-1]
        ours = k_shortest_paths(graph, source, target, k)
        reference = k_shortest_paths_reference(graph, source, target, k)
        assert ours == reference

    @COMMON_SETTINGS
    @given(jellyfish_like_graphs())
    def test_all_pairs_shared_tree_matches_per_pair(self, graph):
        clear_csr_cache()
        nodes = sorted(graph.nodes)
        pairs = [(nodes[0], node) for node in nodes[1:4]]
        table = all_pairs_k_shortest_paths(graph, pairs, 4)
        for pair in pairs:
            assert table[pair] == k_shortest_paths_reference(graph, *pair, 4)

    def test_jellyfish_many_pairs(self):
        topology = JellyfishTopology.build(30, 8, 5, rng=11)
        graph = topology.graph
        nodes = sorted(graph.nodes)
        for i in range(0, 28, 3):
            pair = (nodes[i], nodes[i + 2])
            assert k_shortest_paths(graph, *pair, 8) == k_shortest_paths_reference(
                graph, *pair, 8
            )

    def test_fattree_pairs(self):
        graph = FatTreeTopology.build(4).graph
        nodes = sorted(graph.nodes)
        pair = (nodes[0], nodes[-1])
        assert k_shortest_paths(graph, *pair, 6) == k_shortest_paths_reference(
            graph, *pair, 6
        )


class TestAllShortestPathsParity:
    @COMMON_SETTINGS
    @given(jellyfish_like_graphs())
    def test_matches_networkx_set(self, graph):
        clear_csr_cache()
        nodes = sorted(graph.nodes)
        source, target = nodes[0], nodes[-1]
        ours = all_shortest_paths(graph, source, target)
        try:
            expected = sorted(tuple(p) for p in nx.all_shortest_paths(graph, source, target))
        except nx.NetworkXNoPath:
            expected = []
        assert ours == expected


class TestCsrGraphCache:
    def setup_method(self):
        clear_csr_cache()

    def test_same_object_is_reused(self):
        graph = nx.cycle_graph(10)
        assert csr_graph(graph) is csr_graph(graph)

    def test_mutation_rebuilds(self):
        graph = nx.cycle_graph(10)
        before = csr_graph(graph)
        graph.remove_edge(0, 1)
        after = csr_graph(graph)
        assert after is not before
        assert after.num_edges == before.num_edges - 1

    def test_count_preserving_rewire_rebuilds(self):
        graph = nx.cycle_graph(8)
        before = csr_graph(graph)
        graph.remove_edge(0, 1)
        graph.add_edge(0, 4)
        after = csr_graph(graph)
        assert after is not before
        assert after.content_hash != before.content_hash

    def test_content_hash_is_structural(self):
        first = csr_graph(nx.cycle_graph(12))
        second = CSRGraph(nx.cycle_graph(12))
        assert first.content_hash == second.content_hash

    def test_result_cache_dropped_on_rebuild(self):
        graph = nx.cycle_graph(8)
        paths = k_shortest_paths(graph, 0, 4, 2)
        assert len(paths) == 2
        graph.remove_edge(0, 1)
        rerouted = k_shortest_paths(graph, 0, 4, 2)
        assert rerouted == k_shortest_paths_reference(graph, 0, 4, 2)
        assert rerouted != paths

    def test_repeated_queries_hit_the_result_cache(self):
        topology = JellyfishTopology.build(20, 6, 4, rng=3)
        graph = topology.graph
        nodes = sorted(graph.nodes)
        first = k_shortest_paths(graph, nodes[0], nodes[-1], 4)
        cached = k_shortest_paths(graph, nodes[0], nodes[-1], 4)
        assert first == cached
        assert first is not cached  # callers get their own list
