"""Tests for max-min fair allocation (progressive filling)."""

import pytest

from repro.flow.maxmin import FlowSpec, max_min_fair_allocation


class TestSingleLink:
    def test_two_flows_share_equally(self):
        flows = [
            FlowSpec("f1", [("a", "b")], demand=1.0),
            FlowSpec("f2", [("a", "b")], demand=1.0),
        ]
        allocation = max_min_fair_allocation(flows, {("a", "b"): 1.0})
        assert allocation.flow_rates["f1"] == pytest.approx(0.5)
        assert allocation.flow_rates["f2"] == pytest.approx(0.5)

    def test_demand_cap_frees_capacity(self):
        flows = [
            FlowSpec("small", [("a", "b")], demand=0.2),
            FlowSpec("big", [("a", "b")], demand=5.0),
        ]
        allocation = max_min_fair_allocation(flows, {("a", "b"): 1.0})
        assert allocation.flow_rates["small"] == pytest.approx(0.2)
        assert allocation.flow_rates["big"] == pytest.approx(0.8)

    def test_default_capacity_used_for_unknown_links(self):
        flows = [FlowSpec("f", [("x", "y")], demand=3.0)]
        allocation = max_min_fair_allocation(flows, {}, default_capacity=2.0)
        assert allocation.flow_rates["f"] == pytest.approx(2.0)


class TestClassicMaxMinExample:
    def test_three_flows_two_links(self):
        # f1 uses link1, f2 uses link2, f3 uses both (capacity 1 each).
        flows = [
            FlowSpec("f1", [("a", "b")], demand=10.0),
            FlowSpec("f2", [("b", "c")], demand=10.0),
            FlowSpec("f3", [("a", "b", "c")], demand=10.0),
        ]
        capacities = {("a", "b"): 1.0, ("b", "c"): 1.0}
        allocation = max_min_fair_allocation(flows, capacities)
        assert allocation.flow_rates["f3"] == pytest.approx(0.5, abs=1e-6)
        assert allocation.flow_rates["f1"] == pytest.approx(0.5, abs=1e-6)
        assert allocation.flow_rates["f2"] == pytest.approx(0.5, abs=1e-6)


class TestMultipath:
    def test_subflows_add_up(self):
        flows = [
            FlowSpec("f", [("a", "b"), ("a", "c", "b")], demand=2.0),
        ]
        capacities = {("a", "b"): 1.0, ("a", "c"): 1.0, ("c", "b"): 1.0}
        allocation = max_min_fair_allocation(flows, capacities)
        assert allocation.flow_rates["f"] == pytest.approx(2.0)

    def test_aggregate_demand_cap_enforced(self):
        flows = [
            FlowSpec("f", [("a", "b"), ("a", "c", "b")], demand=1.0),
        ]
        capacities = {("a", "b"): 1.0, ("a", "c"): 1.0, ("c", "b"): 1.0}
        allocation = max_min_fair_allocation(flows, capacities)
        assert allocation.flow_rates["f"] == pytest.approx(1.0)

    def test_per_subflow_caps(self):
        flows = [
            FlowSpec(
                "f",
                [("a", "b"), ("a", "c", "b")],
                demand=2.0,
                subflow_caps=[0.25, 0.25],
            ),
        ]
        capacities = {("a", "b"): 1.0, ("a", "c"): 1.0, ("c", "b"): 1.0}
        allocation = max_min_fair_allocation(flows, capacities)
        assert allocation.flow_rates["f"] == pytest.approx(0.5)

    def test_zero_hop_path_served_at_demand(self):
        flows = [FlowSpec("local", [("a",)], demand=0.7)]
        allocation = max_min_fair_allocation(flows, {})
        assert allocation.flow_rates["local"] == pytest.approx(0.7)


class TestInvariants:
    def test_no_link_overloaded(self):
        flows = [
            FlowSpec(f"f{i}", [("a", "b", "c"), ("a", "d", "c")], demand=1.0)
            for i in range(6)
        ]
        capacities = {
            ("a", "b"): 1.0, ("b", "c"): 1.0, ("a", "d"): 1.0, ("d", "c"): 1.0,
        }
        allocation = max_min_fair_allocation(flows, capacities)
        for link, load in allocation.link_loads.items():
            assert load <= capacities.get(link, 1.0) + 1e-6

    def test_rates_non_negative_and_capped(self):
        flows = [
            FlowSpec(f"f{i}", [("a", "b")], demand=1.0) for i in range(5)
        ]
        allocation = max_min_fair_allocation(flows, {("a", "b"): 2.0})
        for rate in allocation.flow_rates.values():
            assert 0.0 <= rate <= 1.0 + 1e-9
        assert allocation.total_throughput() == pytest.approx(2.0)

    def test_flow_spec_validation(self):
        with pytest.raises(ValueError):
            FlowSpec("f", [("a", "b")], demand=0.0)
        with pytest.raises(ValueError):
            FlowSpec("f", [("a", "b")], demand=1.0, subflow_caps=[0.5, 0.5])

    def test_unrouted_flow_gets_zero_rate(self):
        # Degradation semantics: an empty path list models a demand whose
        # endpoints are unreachable; it claims nothing and receives 0.0.
        flows = [
            FlowSpec("stranded", [], demand=1.0),
            FlowSpec("routed", [("a", "b")], demand=1.0),
        ]
        allocation = max_min_fair_allocation(flows, {("a", "b"): 1.0})
        assert allocation.flow_rates["stranded"] == 0.0
        assert allocation.flow_rates["routed"] == pytest.approx(1.0)
