"""Tests for the fluid (flow-level) routing + congestion-control simulator."""

import pytest

from repro.flow.maxmin import FlowSpec
from repro.flow.throughput import normalized_throughput
from repro.simulation.fluid import (
    MPTCP,
    TCP_EIGHT_FLOWS,
    TCP_ONE_FLOW,
    SimulationConfig,
    _allocate_mptcp_sequential,
    simulate_fluid,
)
from repro.traffic.matrices import random_permutation_traffic


class TestConfigValidation:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.routing == "ksp"
        assert config.congestion_control == MPTCP

    def test_invalid_routing(self):
        with pytest.raises(ValueError):
            SimulationConfig(routing="pigeon")

    def test_invalid_congestion_control(self):
        with pytest.raises(ValueError):
            SimulationConfig(congestion_control="udp")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SimulationConfig(k=0)


class TestBasicBehaviour:
    def test_throughputs_in_unit_interval(self, equipment_jellyfish):
        result = simulate_fluid(equipment_jellyfish, rng=1)
        assert result.flow_throughputs
        assert all(0.0 <= value <= 1.0 for value in result.flow_throughputs)

    def test_one_throughput_per_flow(self, equipment_jellyfish):
        traffic = random_permutation_traffic(equipment_jellyfish, rng=2)
        result = simulate_fluid(equipment_jellyfish, traffic, rng=2)
        assert len(result.flow_throughputs) == len(traffic)

    def test_empty_traffic(self, equipment_jellyfish):
        topo = equipment_jellyfish.copy()
        for node in topo.graph.nodes:
            topo.servers[node] = 0
        result = simulate_fluid(topo, rng=3)
        assert result.average_throughput == 1.0
        assert result.fairness == 1.0

    def test_fairness_in_unit_interval(self, medium_fattree):
        result = simulate_fluid(
            medium_fattree,
            config=SimulationConfig(routing="ecmp", congestion_control=MPTCP),
            rng=4,
        )
        assert 0.0 < result.fairness <= 1.0


class TestMptcpLinkLoads:
    def test_mptcp_result_reports_link_loads(self, equipment_jellyfish):
        """The MPTCP branch must accumulate per-link loads across rounds."""
        traffic = random_permutation_traffic(equipment_jellyfish, rng=12)
        result = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=MPTCP), rng=12,
        )
        assert result.link_loads
        for (u, v), load in result.link_loads.items():
            capacity = float(
                equipment_jellyfish.graph[u][v].get("capacity", 1.0)
            )
            assert 0.0 <= load <= capacity + 1e-6

    def test_mptcp_link_loads_cover_throughput(self, equipment_jellyfish):
        traffic = random_permutation_traffic(equipment_jellyfish, rng=13)
        result = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=MPTCP), rng=13,
        )
        # Every unit of cross-network throughput traverses at least one link.
        crossing = sum(1 for d in traffic if d.source_switch != d.destination_switch)
        if crossing:
            assert sum(result.link_loads.values()) > 0.0

    def test_sequential_allocator_honors_default_capacity(self):
        specs = [FlowSpec("f", [("a", "b")], demand=5.0)]
        # No capacity entry for (a, b): the default applies per tier and to
        # the depletion bookkeeping, not a hardcoded 1.0.
        rates, loads = _allocate_mptcp_sequential(specs, {}, default_capacity=2.0)
        assert rates["f"] == pytest.approx(2.0)
        assert loads[("a", "b")] == pytest.approx(2.0)


class TestPaperOrderings:
    """Qualitative relationships from Table 1 must hold."""

    def test_fattree_ecmp_multiflow_beats_single_flow(self, medium_fattree):
        traffic = random_permutation_traffic(medium_fattree, rng=5)
        single = simulate_fluid(
            medium_fattree, traffic,
            SimulationConfig(routing="ecmp", congestion_control=TCP_ONE_FLOW), rng=5,
        )
        multi = simulate_fluid(
            medium_fattree, traffic,
            SimulationConfig(routing="ecmp", congestion_control=TCP_EIGHT_FLOWS), rng=5,
        )
        assert multi.average_throughput > single.average_throughput

    def test_jellyfish_ksp_mptcp_beats_ecmp_mptcp(self, equipment_jellyfish):
        traffic = random_permutation_traffic(equipment_jellyfish, rng=6)
        ecmp = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ecmp", congestion_control=MPTCP), rng=6,
        )
        ksp = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=MPTCP), rng=6,
        )
        assert ksp.average_throughput > ecmp.average_throughput

    def test_fattree_ecmp_mptcp_is_high(self, medium_fattree):
        result = simulate_fluid(
            medium_fattree,
            config=SimulationConfig(routing="ecmp", congestion_control=MPTCP),
            rng=7,
        )
        assert result.average_throughput > 0.85

    def test_simulated_throughput_below_lp_optimum(self, equipment_jellyfish):
        traffic = random_permutation_traffic(equipment_jellyfish, rng=8)
        optimum = normalized_throughput(
            equipment_jellyfish, traffic, engine="path", k=12
        ).normalized
        simulated = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=MPTCP), rng=8,
        ).average_throughput
        assert simulated <= optimum + 0.1

    def test_mptcp_at_least_tcp8_on_ksp(self, equipment_jellyfish):
        traffic = random_permutation_traffic(equipment_jellyfish, rng=9)
        tcp8 = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=TCP_EIGHT_FLOWS), rng=9,
        )
        mptcp = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=MPTCP), rng=9,
        )
        assert mptcp.average_throughput >= tcp8.average_throughput - 1e-6
