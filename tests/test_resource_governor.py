"""Resource governor tests: memory budgets and the degradation ladder.

Covers the PR-10 vertical slice: ``ExecutionProfile`` planners and ladder
rungs, ``RLIMIT_AS`` budget helpers, real in-worker budget enforcement
(``MemoryError`` classified ``oom``), signal-killed workers classified
``signal`` (not ``crash``) and escalating the ladder, chaos ``oom``
injection, ladder determinism (same seed + same faults -> same rung
sequence and bit-identical degraded values), degraded values staying out
of the result cache, profile-aware kernel budgets, and the bounded cache
quarantine directory.
"""

import json
import os
import sys

import pytest

from repro.engine.cache import ResultCache
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioPoint, ScenarioSpec, expand
from repro.resources import (
    MAX_DEGRADATION_LEVEL,
    PROFILE_LADDER,
    ExecutionProfile,
    activate_profile,
    active_profile,
    apply_memory_budget,
    current_address_space_bytes,
    default_memory_mb,
    memory_budget_bytes,
    profile_for_level,
)

ECHO = "repro.testing.targets:echo_point"
PROFILE = "repro.testing.targets:profile_point"
HUNGRY = "repro.testing.targets:hungry_point"

#: Fast retry schedule so fault tests don't sleep their way to minutes.
FAST = {"backoff_base_s": 0.01, "backoff_cap_s": 0.05}

linux_only = pytest.mark.skipif(
    sys.platform != "linux", reason="RLIMIT_AS budgets need /proc and Linux rlimits"
)


def _set_plan(monkeypatch, seed=0, faults=()):
    monkeypatch.setenv(
        "REPRO_FAULTS", json.dumps({"seed": seed, "faults": list(faults)})
    )


def _profile_points(xs=(1, 2, 3)):
    return expand(
        [ScenarioSpec.grid(PROFILE, seed=0, seed_strategy="derived", x=list(xs))]
    )


class TestExecutionProfile:
    def test_ladder_shape(self):
        assert len(PROFILE_LADDER) == MAX_DEGRADATION_LEVEL + 1
        assert PROFILE_LADDER[0] == ExecutionProfile()
        levels = [p.level for p in PROFILE_LADDER]
        assert levels == list(range(len(PROFILE_LADDER)))
        # Monotone: every knob only gets cheaper down the ladder.
        for shallow, deep in zip(PROFILE_LADDER, PROFILE_LADDER[1:]):
            assert deep.bfs_scratch_scale <= shallow.bfs_scratch_scale
            assert deep.dist_memo_scale <= shallow.dist_memo_scale
            assert deep.trial_scale <= shallow.trial_scale
            assert deep.sampled >= shallow.sampled

    def test_profile_for_level_clamps(self):
        assert profile_for_level(-5) == PROFILE_LADDER[0]
        assert profile_for_level(0) == PROFILE_LADDER[0]
        assert profile_for_level(99) == PROFILE_LADDER[-1]

    def test_scale_bytes_floors_at_one(self):
        profile = PROFILE_LADDER[1]
        assert profile.scale_bytes(100, 0.5) == 50
        assert profile.scale_bytes(1, 0.5) == 1
        assert profile.scale_bytes(100, 1.0) == 100

    def test_plan_sources_exact_stays_exact_at_rung0(self):
        assert PROFILE_LADDER[0].plan_sources(1000, None) is None
        assert PROFILE_LADDER[1].plan_sources(1000, None) is None

    def test_plan_sources_sampled_demotes_exact(self):
        assert PROFILE_LADDER[2].plan_sources(1000, None) == 250
        # rung 3 additionally halves the demoted sample
        assert PROFILE_LADDER[3].plan_sources(1000, None) == 125

    def test_plan_sources_never_exceeds_request(self):
        assert PROFILE_LADDER[2].plan_sources(1000, 64) == 64
        assert PROFILE_LADDER[3].plan_sources(1000, 64) == 32

    def test_plan_sources_floors_tiny_samples(self):
        # trial_scale never pushes a sample below min(16, requested)
        assert PROFILE_LADDER[3].plan_sources(1000, 20) == 16
        assert PROFILE_LADDER[3].plan_sources(1000, 8) == 8

    def test_plan_sources_tiny_graph_clamps_to_n_minus_one(self):
        # A sampled source count can never reach all-sources territory.
        assert PROFILE_LADDER[2].plan_sources(2, None) == 1

    def test_plan_trials(self):
        assert PROFILE_LADDER[0].plan_trials(10) == 10
        assert PROFILE_LADDER[3].plan_trials(10) == 5
        assert PROFILE_LADDER[3].plan_trials(1) == 1

    def test_activation_restores_previous(self):
        assert active_profile().level == 0
        with activate_profile(PROFILE_LADDER[2]):
            assert active_profile().level == 2
            with activate_profile(None):
                assert active_profile().level == 0
            assert active_profile().level == 2
        assert active_profile().level == 0

    def test_as_dict_round_trips(self):
        payload = PROFILE_LADDER[3].as_dict()
        assert payload == {
            "level": 3,
            "bfs_scratch_scale": 0.5,
            "dist_memo_scale": 0.5,
            "sampled": True,
            "trial_scale": 0.5,
        }
        assert ExecutionProfile(**payload) == PROFILE_LADDER[3]


class TestMemoryBudgetHelpers:
    def test_default_memory_mb_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_MB", raising=False)
        assert default_memory_mb() is None
        monkeypatch.setenv("REPRO_MEMORY_MB", "256")
        assert default_memory_mb() == 256.0
        monkeypatch.setenv("REPRO_MEMORY_MB", "0")
        assert default_memory_mb() is None
        monkeypatch.setenv("REPRO_MEMORY_MB", "banana")
        assert default_memory_mb() is None

    @linux_only
    def test_budget_sits_above_baseline(self):
        baseline = current_address_space_bytes()
        assert baseline is not None and baseline > 0
        budget = memory_budget_bytes(64)
        assert budget is not None
        assert budget > baseline + 64 * 1024 * 1024

    @linux_only
    def test_apply_and_restore_round_trip(self):
        import resource

        before = resource.getrlimit(resource.RLIMIT_AS)
        restore = apply_memory_budget(4096)
        assert restore is not None
        capped = resource.getrlimit(resource.RLIMIT_AS)
        assert capped[0] != resource.RLIM_INFINITY
        restore()
        assert resource.getrlimit(resource.RLIMIT_AS) == before


class TestOomClassification:
    @linux_only
    def test_budget_overrun_is_oom_then_degrades_and_fits(self):
        # hungry_point wants 96 MB at rung 0 and half that at rung 1; a
        # 48 MB budget forces exactly one oom then a degraded success.
        runner = SweepRunner(workers=1, memory_mb=48, **FAST)
        points = [ScenarioPoint(HUNGRY, {"x": 1, "mb": 96.0})]
        outcome = runner.run(points)[0]
        assert outcome.status == "ok"
        assert outcome.history == ["oom"]
        assert outcome.degradation_level == 1
        assert outcome.profile == PROFILE_LADDER[1].as_dict()
        assert outcome.value["level"] == 1
        assert runner.fault_stats.ooms == 1
        assert runner.fault_stats.degraded == 1
        assert runner.fault_stats.quarantined == 0

    def test_memory_budget_alone_forces_supervision(self, monkeypatch):
        # workers=0 but a budget: the point must run in a supervised worker
        # (an in-process rlimit would cap the parent for good).
        runner = SweepRunner(workers=0, memory_mb=4096, **FAST)
        outcome = runner.run([ScenarioPoint(ECHO, {"x": 5})])[0]
        assert outcome.status == "ok"
        assert outcome.worker != os.getpid()

    def test_chaos_oom_without_cap_synthesizes(self, monkeypatch):
        # Serial in-process path, no rlimit: the chaos rule must not fight
        # the real OOM killer; it raises a synthesized MemoryError that the
        # runner still classifies as oom and degrades on.
        _set_plan(monkeypatch, faults=[{"kind": "oom", "attempts": [1]}])
        runner = SweepRunner(**FAST)
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.status == "ok"
        assert outcome.history == ["oom"]
        assert outcome.degradation_level == 1
        assert runner.fault_stats.ooms == 1


class TestSignalClassification:
    def test_sigkilled_worker_classified_signal_not_crash(self, monkeypatch):
        # Simulated OOM-killer: the worker dies by SIGKILL, detected via its
        # sentinel, classified `signal`, and the ladder escalates.
        _set_plan(
            monkeypatch,
            faults=[{"kind": "crash", "signum": 9, "attempts": [1]}],
        )
        runner = SweepRunner(workers=1, timeout_s=60, **FAST)
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.status == "ok"
        assert outcome.history == ["signal"]
        assert outcome.degradation_level == 1
        assert outcome.value["level"] == 1
        assert runner.fault_stats.signals == 1
        assert runner.fault_stats.crashes == 0
        assert runner.fault_stats.degraded == 1

    def test_exit_crash_still_classified_crash(self, monkeypatch):
        _set_plan(
            monkeypatch,
            faults=[{"kind": "crash", "exit_code": 21, "attempts": [1]}],
        )
        runner = SweepRunner(workers=1, timeout_s=60, **FAST)
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.status == "ok"
        assert outcome.history == ["crash"]
        # Plain crashes retry identically -- no ladder escalation.
        assert outcome.degradation_level == 0
        assert runner.fault_stats.crashes == 1
        assert runner.fault_stats.signals == 0
        assert runner.fault_stats.degraded == 0

    def test_signal_exitcode_recorded_negative(self, monkeypatch):
        # A poison signal-killer (every attempt, degrade off) quarantines
        # with kind `signal` and the signal number in the exitcode.
        _set_plan(monkeypatch, faults=[{"kind": "crash", "signum": 9}])
        runner = SweepRunner(
            workers=1, timeout_s=60, max_attempts=2, degrade=False,
            raise_on_failure=False, **FAST
        )
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.status == "failed"
        assert outcome.failure.kind == "signal"
        assert outcome.failure.exitcode == -9
        assert outcome.failure.history == ["signal", "signal"]
        assert "signal 9" in outcome.failure.message


class TestDegradationLadder:
    def test_ladder_walks_one_rung_per_resource_fault(self, monkeypatch):
        # oom on attempts 1 and 2: rung 0 -> 1 -> 2; the survivor reports
        # rung 2 with sampled=True and the full failure history.
        _set_plan(monkeypatch, faults=[{"kind": "oom", "attempts": [1, 2]}])
        runner = SweepRunner(**FAST)
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.history == ["oom", "oom"]
        assert outcome.degradation_level == 2
        assert outcome.value["sampled"] is True
        assert outcome.value["planned_sources"] == 250

    def test_ladder_grants_attempts_beyond_max(self, monkeypatch):
        # max_attempts=1 would quarantine on the first failure, but each
        # ladder escalation grants one extra attempt -- bounded by the
        # ladder depth, after which the point genuinely quarantines.
        _set_plan(monkeypatch, faults=[{"kind": "oom"}])
        runner = SweepRunner(max_attempts=1, raise_on_failure=False, **FAST)
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1 + MAX_DEGRADATION_LEVEL
        assert outcome.failure.history == ["oom"] * (1 + MAX_DEGRADATION_LEVEL)
        assert outcome.degradation_level == MAX_DEGRADATION_LEVEL
        assert runner.fault_stats.quarantined == 1

    def test_plain_errors_never_escalate(self, monkeypatch):
        _set_plan(monkeypatch, faults=[{"kind": "error"}])
        runner = SweepRunner(max_attempts=2, raise_on_failure=False, **FAST)
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.status == "failed"
        assert outcome.degradation_level == 0
        assert outcome.attempts == 2
        assert runner.fault_stats.degraded == 0

    def test_no_degrade_quarantines_resource_faults(self, monkeypatch):
        _set_plan(monkeypatch, faults=[{"kind": "oom"}])
        runner = SweepRunner(
            max_attempts=2, degrade=False, raise_on_failure=False, **FAST
        )
        outcome = runner.run(_profile_points((1,)))[0]
        assert outcome.status == "failed"
        assert outcome.degradation_level == 0
        assert outcome.failure.kind == "oom"
        assert runner.fault_stats.degraded == 0

    def test_ladder_determinism(self, monkeypatch):
        # Same seed + same faults -> same rung sequence and bit-identical
        # degraded values, across repeated runs and worker counts.
        plan = [{"kind": "oom", "rate": 0.7, "attempts": [1, 2]}]

        def run_once(workers):
            _set_plan(monkeypatch, seed=13, faults=plan)
            runner = SweepRunner(workers=workers, timeout_s=60, **FAST)
            outcomes = runner.run(_profile_points((1, 2, 3, 4)))
            return [
                (o.degradation_level, tuple(o.history), json.dumps(o.value, sort_keys=True))
                for o in outcomes
            ]

        serial_a = run_once(0)
        serial_b = run_once(0)
        pooled = run_once(2)
        assert serial_a == serial_b == pooled
        # The 0.7 rate over 4 points actually exercises both regimes.
        levels = {level for level, _, _ in serial_a}
        assert 0 in levels or 1 in levels

    def test_degraded_values_not_cached(self, tmp_path, monkeypatch):
        _set_plan(monkeypatch, faults=[{"kind": "oom", "attempts": [1]}])
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(cache=cache, **FAST)
        points = _profile_points((1,))
        degraded = runner.run(points)[0]
        assert degraded.degradation_level == 1
        assert cache.stats.writes == 0
        assert points[0] not in cache
        # Fault-free re-run computes fresh at full fidelity and caches it.
        monkeypatch.delenv("REPRO_FAULTS")
        clean = SweepRunner(cache=cache, **FAST).run(points)[0]
        assert clean.cached is False
        assert clean.value["level"] == 0
        assert cache.stats.writes == 1

    def test_followers_inherit_degradation(self, monkeypatch):
        _set_plan(monkeypatch, faults=[{"kind": "oom", "attempts": [1]}])
        duplicated = _profile_points((1,)) * 2
        runner = SweepRunner(**FAST)
        primary, follower = runner.run(duplicated)
        assert follower.cached is True
        assert follower.degradation_level == primary.degradation_level == 1
        assert follower.history == primary.history == ["oom"]
        assert follower.value == primary.value


class TestProfileAwareKernels:
    def test_bfs_scratch_budget_scales(self):
        from repro.graphs.csr import default_bfs_scratch_bytes

        full = default_bfs_scratch_bytes()
        with activate_profile(PROFILE_LADDER[1]):
            assert default_bfs_scratch_bytes() == full // 2
        assert default_bfs_scratch_bytes() == full

    def test_distance_memo_budget_scales(self):
        from repro.graphs import csr as csr_module

        memo = csr_module._DistanceRowMemo(budget_bytes=1000)
        assert memo.effective_budget() == 1000
        with activate_profile(PROFILE_LADDER[1]):
            assert memo.effective_budget() == 500
        assert memo.stats()["effective_budget_bytes"] == 1000

    def test_sampled_estimator_honors_profile(self):
        import networkx as nx

        from repro.graphs.csr import csr_graph
        from repro.graphs.sampling import sampled_path_length_stats

        csr = csr_graph(nx.random_regular_graph(4, 400, seed=3))
        exact = sampled_path_length_stats(csr)
        assert exact.exact and exact.num_sources == 400
        with activate_profile(PROFILE_LADDER[2]):
            degraded = sampled_path_length_stats(csr)
        assert not degraded.exact
        assert degraded.num_sources == 100
        # Deterministic: same profile, same seed, same estimate.
        with activate_profile(PROFILE_LADDER[2]):
            again = sampled_path_length_stats(csr)
        assert again == degraded

    def test_bisection_trials_honor_profile(self):
        import networkx as nx

        from repro.graphs.csr import csr_graph
        from repro.graphs.sampling import sampled_bisection_stats

        csr = csr_graph(nx.random_regular_graph(4, 60, seed=3))
        with activate_profile(PROFILE_LADDER[3]):
            stats = sampled_bisection_stats(csr, trials=8, seed=1)
        assert stats.trials == 4

    def test_exact_path_length_switches_to_sampled(self):
        import networkx as nx

        from repro.graphs.csr import csr_graph
        from repro.graphs.properties import average_path_length_csr
        from repro.graphs.sampling import sampled_path_length_stats
        from repro.resources import PROFILE_SAMPLE_SEED

        csr = csr_graph(nx.random_regular_graph(4, 400, seed=5))
        exact = average_path_length_csr(csr)
        with activate_profile(PROFILE_LADDER[2]):
            degraded = average_path_length_csr(csr)
            expected = sampled_path_length_stats(
                csr,
                num_sources=PROFILE_LADDER[2].plan_sources(400, None),
                seed=PROFILE_SAMPLE_SEED,
            ).mean
        assert degraded == expected
        assert degraded != exact  # a genuine estimate...
        assert abs(degraded - exact) < 0.25  # ...but close

    def test_tiny_graph_stays_exact_under_sampled_profile(self):
        import networkx as nx

        from repro.graphs.csr import csr_graph
        from repro.graphs.properties import average_path_length_csr

        csr = csr_graph(nx.cycle_graph(4))
        exact = average_path_length_csr(csr)
        with activate_profile(PROFILE_LADDER[2]):
            assert average_path_length_csr(csr) == exact


class TestQuarantineBudget:
    def _corrupt_entries(self, cache, n):
        for i in range(n):
            point = ScenarioPoint(ECHO, {"x": i})
            path = cache.path_for(point.scenario_hash)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("{not json", encoding="ascii")
            hit, _ = cache.fetch(point)
            assert not hit

    def test_quarantine_evicts_oldest_beyond_budget(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", quarantine_budget=3)
        self._corrupt_entries(cache, 5)
        kept = list(cache.quarantine_dir().glob("*.json"))
        assert len(kept) == 3
        assert cache.stats.corruptions == 5
        assert cache.stats.quarantine_evictions == 2
        assert "quarantine evictions" in str(cache.stats)
        assert cache.stats.as_dict()["quarantine_evictions"] == 2

    def test_unbounded_when_budget_nonpositive(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", quarantine_budget=0)
        self._corrupt_entries(cache, 5)
        assert len(list(cache.quarantine_dir().glob("*.json"))) == 5
        assert cache.stats.quarantine_evictions == 0


class TestSurfaces:
    def test_manifest_records_degradation(self, tmp_path, monkeypatch):
        from repro.telemetry.manifest import RunRecorder, load_manifest

        _set_plan(monkeypatch, faults=[{"kind": "oom", "attempts": [1]}])
        recorder = RunRecorder("fig99", runs_root=tmp_path)
        runner = SweepRunner(progress=recorder.observe, **FAST)
        runner.run(_profile_points((1,)))
        path = recorder.finalize(
            runs_root=tmp_path, faults=runner.fault_stats.as_dict()
        )
        loaded = load_manifest(path)
        assert loaded.degraded_count() == 1
        record = loaded.points[0]
        assert record.degradation_level == 1
        assert record.profile == PROFILE_LADDER[1].as_dict()
        assert record.history == ["oom"]
        assert loaded.failures["ooms"] == 1
        assert loaded.failures["degraded"] == 1
        # The journal line carries the same audit trail.
        journal_lines = [
            json.loads(line)
            for line in open(loaded.journal, encoding="ascii")
            if line.strip()
        ]
        assert journal_lines[0]["degradation_level"] == 1
        assert journal_lines[0]["history"] == ["oom"]
        assert journal_lines[0]["profile"]["level"] == 1

    def test_stats_report_surfaces_degraded(self):
        from repro.telemetry.manifest import PointRecord, RunRecord
        from repro.telemetry.report import (
            experiment_rows,
            fault_summary,
            render_experiment_table,
            render_fault_summary,
        )

        record = RunRecord(
            run_id="1-x-x",
            sweep_id="fig05-scale",
            failures={
                "retries": 2, "timeouts": 0, "crashes": 0, "ooms": 1,
                "signals": 1, "errors": 0, "degraded": 2, "quarantined": 0,
                "journal_skips": 3,
            },
            points=[
                PointRecord("a" * 64, PROFILE, False, 1.0, degradation_level=2),
                PointRecord("b" * 64, PROFILE, False, 1.0),
            ],
        )
        rows = experiment_rows([record])
        assert rows[0]["degraded"] == 1
        table = render_experiment_table(rows)
        assert "deg" in table.splitlines()[0]
        totals = fault_summary([record])
        assert totals["ooms"] == 1
        assert totals["signals"] == 1
        assert totals["degraded"] == 2
        line = render_fault_summary(totals)
        assert "1 ooms" in line
        assert "1 signals" in line
        assert "2 degraded" in line
        assert "3 journal skips" in line

    def test_fault_stats_summary_line_lists_everything(self):
        from repro.engine.runner import FaultStats

        stats = FaultStats(
            retries=1, timeouts=2, crashes=3, ooms=4, signals=5, errors=6,
            degraded=7, quarantined=8, journal_skips=9,
        )
        text = str(stats)
        for fragment in (
            "1 retries", "2 timeouts", "3 crashes", "4 ooms", "5 signals",
            "6 errors", "7 degraded", "8 quarantined", "9 journal skips",
        ):
            assert fragment in text

    def test_cli_memory_mb_resolution(self, monkeypatch, tmp_path, capsys):
        # --memory-mb reaches the runner and still completes a tiny sweep.
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        code = cli.main(
            ["sweep", "run", "fig01", "--scale", "small",
             "--memory-mb", "4096", "--workers", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig01" in out

    def test_sweepdef_memory_mb_default(self):
        from repro.engine.registry import SweepDef

        sweep = SweepDef(
            sweep_id="x", description="", build=None, assemble=None, memory_mb=512
        )
        assert sweep.memory_mb == 512
