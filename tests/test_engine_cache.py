"""Tests for the content-addressed result cache (repro.engine.cache)."""

import json

from repro.engine.cache import CACHE_DIR_ENV, ResultCache, default_cache_root
from repro.engine.spec import ScenarioPoint

TARGET = "repro.experiments.fig02a_bisection:jellyfish_curve_point"


def _point(servers=720, seed=None):
    return ScenarioPoint(
        TARGET, {"num_switches": 720, "ports": 24, "servers": servers}, seed=seed
    )


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        hit, value = cache.fetch(point)
        assert not hit and value is None
        cache.store(point, {"answer": 0.5})
        hit, value = cache.fetch(point)
        assert hit and value == {"answer": 0.5}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_entries_are_content_addressed(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        path = cache.path_for(point.scenario_hash)
        assert path.exists()
        assert path.parent.name == point.scenario_hash[:2]
        envelope = json.loads(path.read_text())
        assert envelope["scenario"]["target"] == TARGET
        assert envelope["value"] == 1.0

    def test_distinct_scenarios_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(_point(servers=100), "a")
        cache.store(_point(servers=200), "b")
        assert cache.fetch(_point(servers=100))[1] == "a"
        assert cache.fetch(_point(servers=200))[1] == "b"
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        cache.path_for(point.scenario_hash).write_text("{ not json")
        hit, value = cache.fetch(point)
        assert not hit and value is None

    def test_incompatible_format_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        path = cache.path_for(point.scenario_hash)
        envelope = json.loads(path.read_text())
        envelope["version"] = 999
        path.write_text(json.dumps(envelope))
        assert not cache.fetch(point)[0]

    def test_envelope_without_value_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        cache.path_for(point.scenario_hash).write_text('{"version": 1}')
        assert not cache.fetch(point)[0]

    def test_contains_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        assert point not in cache
        cache.store(point, 1.0)
        assert point in cache
        assert cache.clear() == 1
        assert point not in cache
        assert len(cache) == 0

    def test_shared_root_shares_entries(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(_point(), 2.5)
        reader = ResultCache(tmp_path)
        hit, value = reader.fetch(_point())
        assert hit and value == 2.5

    def test_no_stray_temp_files_after_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(_point(), 1.0)
        assert not list(tmp_path.glob("**/.tmp-*"))


class TestDefaultCacheRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_root() == tmp_path / "override"

    def test_default_is_under_home_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        root = default_cache_root()
        assert root.name == "jellyfish-repro"


class TestCorruptionQuarantine:
    def test_unparseable_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        path = cache.path_for(point.scenario_hash)
        path.write_text("{ not json")
        hit, value = cache.fetch(point)
        assert not hit and value is None
        assert cache.stats.corruptions == 1
        assert not path.exists()  # moved, not left in place
        moved = cache.quarantine_dir() / path.name
        assert moved.exists() and moved.read_text() == "{ not json"

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, {"answer": 0.5})
        path = cache.path_for(point.scenario_hash)
        envelope = json.loads(path.read_text())
        envelope["value"] = {"answer": 0.75}  # tampered value, stale checksum
        path.write_text(json.dumps(envelope))
        assert not cache.fetch(point)[0]
        assert cache.stats.corruptions == 1
        assert (cache.quarantine_dir() / path.name).exists()

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, [1, 2, 3, 4])
        path = cache.path_for(point.scenario_hash)
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])  # a torn write
        assert not cache.fetch(point)[0]
        assert cache.stats.corruptions == 1

    def test_version_mismatch_is_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        path = cache.path_for(point.scenario_hash)
        envelope = json.loads(path.read_text())
        envelope["version"] = 999
        path.write_text(json.dumps(envelope))
        assert not cache.fetch(point)[0]
        assert cache.stats.corruptions == 0  # old format: plain miss
        assert path.exists()  # left where it is

    def test_missing_file_is_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.fetch(_point())[0]
        assert cache.stats.corruptions == 0

    def test_quarantined_entries_do_not_count_as_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        cache.path_for(point.scenario_hash).write_text("junk")
        cache.fetch(point)
        assert len(cache) == 0  # corrupt/ does not match the ??/ glob

    def test_store_heals_after_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        cache.path_for(point.scenario_hash).write_text("junk")
        cache.fetch(point)
        cache.store(point, 2.0)
        hit, value = cache.fetch(point)
        assert hit and value == 2.0
        assert cache.stats.corruptions == 1

    def test_corruptions_in_stats_dict_and_str(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, 1.0)
        cache.path_for(point.scenario_hash).write_text("junk")
        cache.fetch(point)
        assert cache.stats.as_dict()["corruptions"] == 1
        assert "1 corrupt" in str(cache.stats)

    def test_entries_carry_checksum(self, tmp_path):
        from repro.engine.spec import content_hash

        cache = ResultCache(tmp_path)
        point = _point()
        cache.store(point, {"answer": 0.5})
        envelope = json.loads(cache.path_for(point.scenario_hash).read_text())
        assert envelope["checksum"] == content_hash({"answer": 0.5})
