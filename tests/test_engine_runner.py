"""Tests for sweep execution (repro.engine.runner)."""

import pytest

from repro.engine.cache import ResultCache
from repro.engine.runner import SweepError, SweepRunner
from repro.engine.spec import ScenarioPoint, ScenarioSpec

TARGET = "repro.experiments.fig02a_bisection:jellyfish_curve_point"
FAILING_TARGET = "repro.experiments.fig02a_bisection:run"  # wrong kwargs -> TypeError


def _grid(servers):
    return ScenarioSpec.grid(
        TARGET, num_switches=720, ports=24, servers=list(servers)
    ).points()


class TestSerialExecution:
    def test_results_in_input_order(self):
        points = _grid([720, 1440, 2160])
        outcomes = SweepRunner().run(points)
        assert [o.point for o in outcomes] == points
        values = [o.value for o in outcomes]
        # Fewer servers leave more network ports, so the curve decreases.
        assert values == sorted(values, reverse=True)
        assert all(not o.cached for o in outcomes)
        assert all(o.duration_s >= 0 for o in outcomes)

    def test_run_values_matches_run(self):
        points = _grid([720, 1440])
        runner = SweepRunner()
        assert runner.run_values(points) == [o.value for o in runner.run(points)]

    def test_duplicate_points_execute_once(self):
        point = _grid([720])[0]
        duplicate = ScenarioPoint(point.target, dict(point.params))
        outcomes = SweepRunner().run([point, duplicate])
        assert outcomes[0].value == outcomes[1].value
        assert not outcomes[0].cached
        assert outcomes[1].cached  # served by the dedup pass, not re-executed

    def test_progress_callback_sees_every_point(self):
        events = []
        runner = SweepRunner(progress=lambda done, total, outcome: events.append((done, total)))
        runner.run(_grid([720, 1440, 2160]))
        assert events == [(1, 3), (2, 3), (3, 3)]

    def test_empty_sweep(self):
        assert SweepRunner().run([]) == []

    def test_execution_error_is_wrapped(self):
        point = ScenarioPoint(FAILING_TARGET, {"no_such_kwarg": 1})
        with pytest.raises(SweepError, match=point.scenario_hash[:12]):
            SweepRunner().run([point])

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=-1)


class TestCachedExecution:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        points = _grid([720, 1440, 2160])
        cold = ResultCache(tmp_path)
        first = SweepRunner(cache=cold).run(points)
        assert cold.stats.misses == 3 and cold.stats.writes == 3

        warm = ResultCache(tmp_path)
        second = SweepRunner(cache=warm).run(points)
        assert warm.stats.hits == 3 and warm.stats.misses == 0
        assert all(o.cached for o in second)
        assert [o.value for o in first] == [o.value for o in second]

    def test_overlapping_sweeps_share_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run(_grid([720, 1440]))
        outcomes = SweepRunner(cache=cache).run(_grid([1440, 2160]))
        assert [o.cached for o in outcomes] == [True, False]


class TestParallelExecution:
    def test_pool_matches_serial(self):
        points = _grid([720, 1440, 2160, 2880])
        serial = SweepRunner(workers=0).run_values(points)
        parallel = SweepRunner(workers=2).run_values(points)
        assert parallel == serial

    def test_pool_with_cache(self, tmp_path):
        points = _grid([720, 1440, 2160])
        cache = ResultCache(tmp_path)
        first = SweepRunner(workers=2, cache=cache).run_values(points)
        warm = ResultCache(tmp_path)
        second = SweepRunner(workers=2, cache=warm).run_values(points)
        assert first == second
        assert warm.stats.hits == 3


class TestSupervisedSemantics:
    def test_healthy_outcomes_report_status_and_attempts(self):
        outcomes = SweepRunner().run(_grid([720, 1440]))
        assert all(o.status == "ok" for o in outcomes)
        assert all(o.attempts == 1 for o in outcomes)
        assert all(o.failure is None for o in outcomes)

    def test_cached_outcomes_have_zero_attempts(self, tmp_path):
        points = _grid([720])
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run(points)
        outcome = SweepRunner(cache=ResultCache(tmp_path)).run(points)[0]
        assert outcome.cached and outcome.attempts == 0

    def test_sweep_failure_is_a_sweep_error(self):
        from repro.engine.runner import SweepFailure

        assert issubclass(SweepFailure, SweepError)

    def test_failure_carries_all_outcomes(self):
        good = _grid([720])[0]
        bad = ScenarioPoint(FAILING_TARGET, {"no_such_kwarg": 1})
        runner = SweepRunner(max_attempts=1)
        with pytest.raises(SweepError) as excinfo:
            runner.run([good, bad])
        outcomes = excinfo.value.outcomes
        assert outcomes[0].status == "ok" and outcomes[0].value is not None
        assert outcomes[1].status == "failed" and outcomes[1].value is None
        assert runner.fault_stats.quarantined == 1

    def test_supervised_pool_matches_serial(self):
        points = _grid([720, 1440, 2160])
        serial = SweepRunner(workers=0).run_values(points)
        supervised = SweepRunner(workers=2, timeout_s=600).run_values(points)
        assert supervised == serial

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(max_attempts=0)
        with pytest.raises(ValueError):
            SweepRunner(timeout_s=0)
        with pytest.raises(ValueError):
            SweepRunner(timeout_s=-1.0)
