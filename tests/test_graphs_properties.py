"""Tests for graph metrics (repro.graphs.properties)."""

import networkx as nx
import pytest

import repro.graphs.properties as properties
from repro.graphs.properties import (
    all_pairs_hop_distances,
    average_path_length,
    bfs_distances,
    clear_distance_memo,
    degree_histogram,
    diameter,
    is_connected,
    node_connectivity_at_least,
    path_length_cdf,
    path_length_distribution,
)


class TestBfsDistances:
    def test_path_graph(self):
        graph = nx.path_graph(4)
        assert bfs_distances(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_nodes_absent(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        assert bfs_distances(graph, 0) == {0: 0}


class TestPathLengthDistribution:
    def test_triangle(self):
        histogram = path_length_distribution(nx.complete_graph(3))
        assert histogram == {1: 3}

    def test_path_graph_counts(self):
        histogram = path_length_distribution(nx.path_graph(4))
        assert histogram[1] == 3
        assert histogram[2] == 2
        assert histogram[3] == 1

    def test_restricted_node_subset(self):
        graph = nx.path_graph(5)
        histogram = path_length_distribution(graph, nodes=[0, 4])
        assert histogram == {4: 1}


class TestAveragePathLengthAndDiameter:
    def test_cycle(self):
        graph = nx.cycle_graph(6)
        assert diameter(graph) == 3
        assert average_path_length(graph) == pytest.approx((1 * 6 + 2 * 6 + 3 * 3) / 15)

    def test_complete_graph(self):
        graph = nx.complete_graph(5)
        assert diameter(graph) == 1
        assert average_path_length(graph) == pytest.approx(1.0)

    def test_disconnected_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        with pytest.raises(ValueError):
            average_path_length(graph)

    def test_matches_networkx(self):
        graph = nx.random_regular_graph(3, 20, seed=1)
        assert average_path_length(graph) == pytest.approx(
            nx.average_shortest_path_length(graph)
        )
        assert diameter(graph) == nx.diameter(graph)


class TestPathLengthCdf:
    def test_monotone_and_ends_at_one(self):
        graph = nx.random_regular_graph(3, 16, seed=2)
        cdf = path_length_cdf(graph)
        values = [cdf[h] for h in sorted(cdf)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)


class TestAllPairsMemoization:
    """BFS sweeps run once per graph and are shared across metric queries.

    Sweeps are counted at the CSR kernel seam (``properties._bfs_matrix``);
    every requested source index counts as one BFS, matching the old
    per-source accounting.
    """

    @pytest.fixture(autouse=True)
    def _fresh_memo(self):
        clear_distance_memo()
        yield
        clear_distance_memo()

    @pytest.fixture()
    def bfs_counter(self, monkeypatch):
        calls = []
        original = properties._bfs_matrix

        def counting(csr, source_indices):
            calls.extend(source_indices)
            return original(csr, source_indices)

        monkeypatch.setattr(properties, "_bfs_matrix", counting)
        return calls

    def test_distances_match_uncached_bfs(self):
        graph = nx.random_regular_graph(3, 20, seed=5)
        table = all_pairs_hop_distances(graph)
        for source in graph.nodes:
            assert table[source] == bfs_distances(graph, source)

    def test_metric_queries_share_one_sweep(self, bfs_counter):
        graph = nx.random_regular_graph(3, 20, seed=6)
        average_path_length(graph)
        assert len(bfs_counter) == 20
        diameter(graph)
        path_length_cdf(graph)
        assert len(bfs_counter) == 20  # no additional BFS for the later queries

    def test_subset_queries_reuse_sources(self, bfs_counter):
        graph = nx.path_graph(10)
        path_length_distribution(graph, nodes=[0, 4])
        assert len(bfs_counter) == 2
        path_length_distribution(graph, nodes=[0, 4, 9])
        assert len(bfs_counter) == 3  # only the new source runs BFS

    def test_mutation_invalidates_memo(self, bfs_counter):
        graph = nx.cycle_graph(8)
        before = diameter(graph)
        graph.remove_edge(0, 1)
        after = diameter(graph)
        assert after > before
        assert len(bfs_counter) == 16

    def test_swap_preserving_edge_count_invalidates(self, bfs_counter):
        graph = nx.cycle_graph(8)
        diameter(graph)
        graph.remove_edge(0, 1)
        graph.add_edge(0, 4)  # same node and edge counts, different structure
        mutated = diameter(graph)
        assert len(bfs_counter) == 16  # the stale entry was not reused
        assert mutated == diameter(graph.copy())

    def test_large_graphs_skip_the_memo(self, bfs_counter):
        graph = nx.cycle_graph(12)
        all_pairs_hop_distances(graph, memo_limit=10)
        all_pairs_hop_distances(graph, memo_limit=10)
        assert len(bfs_counter) == 24  # recomputed both times, nothing stored


class TestOtherMetrics:
    def test_is_connected_empty(self):
        assert is_connected(nx.Graph())

    def test_degree_histogram(self):
        graph = nx.star_graph(3)  # one hub of degree 3, three leaves of degree 1
        histogram = degree_histogram(graph)
        assert histogram == {3: 1, 1: 3}

    def test_node_connectivity(self):
        graph = nx.complete_graph(5)
        assert node_connectivity_at_least(graph, 4)
        assert not node_connectivity_at_least(graph, 5)
        assert node_connectivity_at_least(graph, 0)
