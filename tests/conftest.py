"""Shared fixtures: small topologies reused across the test suite."""

import pytest

from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology


@pytest.fixture(scope="session")
def small_fattree():
    """A k=4 fat-tree: 20 switches, 16 servers, 32 links."""
    return FatTreeTopology.build(4)


@pytest.fixture(scope="session")
def medium_fattree():
    """A k=6 fat-tree: 45 switches, 54 servers."""
    return FatTreeTopology.build(6)


@pytest.fixture()
def small_jellyfish():
    """RRG(20, 6, 4): 20 switches with 2 servers each."""
    return JellyfishTopology.build(20, 6, 4, rng=42)


@pytest.fixture()
def equipment_jellyfish(medium_fattree):
    """Jellyfish built from the k=6 fat-tree's equipment, same server count."""
    return JellyfishTopology.from_equipment(
        num_switches=medium_fattree.num_switches,
        ports_per_switch=6,
        num_servers=medium_fattree.num_servers,
        rng=7,
    )
