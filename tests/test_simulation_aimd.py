"""Tests for the round-based AIMD (TCP/MPTCP) simulator."""

import pytest

from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.simulation.fluid import MPTCP, TCP_ONE_FLOW
from repro.traffic.matrices import random_permutation_traffic


class TestConfig:
    def test_to_simulation_config(self):
        config = AimdConfig(routing="ecmp", k=4, congestion_control=TCP_ONE_FLOW)
        sim = config.to_simulation_config()
        assert sim.routing == "ecmp"
        assert sim.k == 4
        assert sim.congestion_control == TCP_ONE_FLOW


class TestSimulation:
    def test_throughputs_in_unit_interval(self, small_jellyfish):
        result = simulate_aimd(
            small_jellyfish, config=AimdConfig(rounds=60, warmup_rounds=20), rng=1
        )
        assert result.flow_throughputs
        assert all(0.0 <= value <= 1.0 for value in result.flow_throughputs)

    def test_one_result_per_flow(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=2)
        result = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(rounds=60, warmup_rounds=20), rng=2,
        )
        assert len(result.flow_throughputs) == len(traffic)

    def test_empty_traffic(self, small_jellyfish):
        topo = small_jellyfish.copy()
        for node in topo.graph.nodes:
            topo.servers[node] = 0
        result = simulate_aimd(topo, rng=3)
        assert result.average_throughput == 1.0

    def test_longer_simulation_converges_higher(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=4)
        short = simulate_aimd(
            small_jellyfish, traffic, AimdConfig(rounds=12, warmup_rounds=2), rng=4
        )
        long = simulate_aimd(
            small_jellyfish, traffic, AimdConfig(rounds=150, warmup_rounds=50), rng=4
        )
        # After warm-up the AIMD windows should have grown toward equilibrium.
        assert long.average_throughput >= short.average_throughput - 0.05

    def test_mptcp_not_worse_than_single_path_tcp(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=5)
        tcp = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(congestion_control=TCP_ONE_FLOW, rounds=120, warmup_rounds=40),
            rng=5,
        )
        mptcp = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(congestion_control=MPTCP, rounds=120, warmup_rounds=40),
            rng=5,
        )
        assert mptcp.average_throughput >= tcp.average_throughput - 0.05

    def test_agrees_roughly_with_fluid_model(self, small_jellyfish):
        from repro.simulation.fluid import SimulationConfig, simulate_fluid

        traffic = random_permutation_traffic(small_jellyfish, rng=6)
        fluid = simulate_fluid(
            small_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=MPTCP), rng=6,
        )
        aimd = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(routing="ksp", congestion_control=MPTCP,
                       rounds=200, warmup_rounds=80),
            rng=6,
        )
        assert abs(fluid.average_throughput - aimd.average_throughput) < 0.35
