"""Tests for the round-based AIMD (TCP/MPTCP) simulator."""

import numpy as np
import pytest

from repro.simulation.aimd import (
    AimdConfig,
    measure_convergence_round,
    simulate_aimd,
)
from repro.simulation.fluid import MPTCP, TCP_ONE_FLOW
from repro.traffic.matrices import random_permutation_traffic


class TestConfig:
    def test_to_simulation_config(self):
        config = AimdConfig(routing="ecmp", k=4, congestion_control=TCP_ONE_FLOW)
        sim = config.to_simulation_config()
        assert sim.routing == "ecmp"
        assert sim.k == 4
        assert sim.congestion_control == TCP_ONE_FLOW


class TestSimulation:
    def test_throughputs_in_unit_interval(self, small_jellyfish):
        result = simulate_aimd(
            small_jellyfish, config=AimdConfig(rounds=60, warmup_rounds=20), rng=1
        )
        assert result.flow_throughputs
        assert all(0.0 <= value <= 1.0 for value in result.flow_throughputs)

    def test_one_result_per_flow(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=2)
        result = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(rounds=60, warmup_rounds=20), rng=2,
        )
        assert len(result.flow_throughputs) == len(traffic)

    def test_empty_traffic(self, small_jellyfish):
        topo = small_jellyfish.copy()
        for node in topo.graph.nodes:
            topo.servers[node] = 0
        result = simulate_aimd(topo, rng=3)
        assert result.average_throughput == 1.0

    def test_longer_simulation_converges_higher(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=4)
        short = simulate_aimd(
            small_jellyfish, traffic, AimdConfig(rounds=12, warmup_rounds=2), rng=4
        )
        long = simulate_aimd(
            small_jellyfish, traffic, AimdConfig(rounds=150, warmup_rounds=50), rng=4
        )
        # After warm-up the AIMD windows should have grown toward equilibrium.
        assert long.average_throughput >= short.average_throughput - 0.05

    def test_mptcp_not_worse_than_single_path_tcp(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=5)
        tcp = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(congestion_control=TCP_ONE_FLOW, rounds=120, warmup_rounds=40),
            rng=5,
        )
        mptcp = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(congestion_control=MPTCP, rounds=120, warmup_rounds=40),
            rng=5,
        )
        assert mptcp.average_throughput >= tcp.average_throughput - 0.05

    def test_trace_opt_in(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=7)
        without = simulate_aimd(
            small_jellyfish, traffic, AimdConfig(rounds=30, warmup_rounds=10), rng=7
        )
        assert without.trace is None
        with_trace = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(rounds=30, warmup_rounds=10, record_trace=True), rng=7,
        )
        trace = np.asarray(with_trace.trace)
        assert trace.shape == (30, len(with_trace.flow_throughputs))
        assert np.all(trace >= 0.0)
        assert np.all(trace <= 1.0 + 1e-9)
        # Disabling the trace must not change the measurement.
        assert without.flow_throughputs == with_trace.flow_throughputs
        assert without.convergence_round == with_trace.convergence_round

    def test_convergence_round_is_measured_or_none(self, small_jellyfish):
        result = simulate_aimd(
            small_jellyfish, config=AimdConfig(rounds=120, warmup_rounds=30), rng=8
        )
        if result.convergence_round is not None:
            assert 30 <= result.convergence_round < 120

    def test_agrees_roughly_with_fluid_model(self, small_jellyfish):
        from repro.simulation.fluid import SimulationConfig, simulate_fluid

        traffic = random_permutation_traffic(small_jellyfish, rng=6)
        fluid = simulate_fluid(
            small_jellyfish, traffic,
            SimulationConfig(routing="ksp", congestion_control=MPTCP), rng=6,
        )
        aimd = simulate_aimd(
            small_jellyfish, traffic,
            AimdConfig(routing="ksp", congestion_control=MPTCP,
                       rounds=200, warmup_rounds=80),
            rng=6,
        )
        assert abs(fluid.average_throughput - aimd.average_throughput) < 0.35


class TestConvergenceMeasure:
    def test_constant_trace_converges_immediately(self):
        trace = np.full((20, 3), 0.5)
        assert measure_convergence_round(trace, warmup_rounds=5) == 5

    def test_step_trace_converges_at_the_step(self):
        trace = np.full((30, 2), 0.2)
        trace[18:] = 0.8  # settles from round 18 onward
        found = measure_convergence_round(
            trace, warmup_rounds=0, tolerance=0.05, window=1
        )
        assert found == 18

    def test_window_smooths_the_sawtooth(self):
        # A +-0.2 sawtooth around 0.5: unsettled per-round, settled once
        # smoothed over a full period.
        rounds = np.arange(64)
        trace = (0.5 + 0.2 * ((rounds % 2) * 2 - 1))[:, None]
        assert (
            measure_convergence_round(trace, warmup_rounds=0, tolerance=0.05, window=1)
            is None
        )
        assert (
            measure_convergence_round(trace, warmup_rounds=0, tolerance=0.05, window=2)
            is not None
        )

    def test_never_settling_returns_none(self):
        trace = np.linspace(0.0, 1.0, 40)[:, None]
        assert (
            measure_convergence_round(trace, warmup_rounds=0, tolerance=0.01, window=1)
            is None
        )

    def test_empty_inputs(self):
        assert measure_convergence_round(np.zeros((0, 3)), warmup_rounds=0) is None
        assert measure_convergence_round(np.zeros((10, 0)), warmup_rounds=0) is None
        assert measure_convergence_round(np.zeros((10, 2)), warmup_rounds=10) is None
        with pytest.raises(ValueError):
            measure_convergence_round(np.zeros(5), warmup_rounds=0)

    def test_horizon_shorter_than_required_tail_is_not_converged(self):
        # A constant trace is trivially within tolerance, but fewer measured
        # rounds than the required settled tail cannot demonstrate settling.
        trace = np.full((40, 2), 0.5)
        assert measure_convergence_round(trace, warmup_rounds=39, window=1) is None
        assert measure_convergence_round(trace, warmup_rounds=30, window=16) is None
        assert measure_convergence_round(trace, warmup_rounds=24, window=16) == 24
