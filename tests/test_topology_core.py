"""Parity suite for the array-native topology layer.

Pins the production constructors, the splice repair, the incremental
expansion and the mask-based failure injection bit-identical (same seed ->
same edge set, same adjacency insertion order, same rng end state) to the
retained reference implementations:

* fast sequential RRG vs :mod:`repro.graphs._reference` (hypothesis);
* fast degree-budget construction vs its reference, heterogeneous budgets
  and disconnection corners included;
* vectorized stub matching vs its scalar reference, with and without the
  shared scratch buffers;
* ``add_switch``'s incremental candidate set vs the historical quadratic
  rebuild;
* mask-based link/switch failures vs the copy-and-remove path;

plus direct tests of :class:`~repro.topologies.core.TopologyCore`
invariants: the graph materialization order contract, the zero-copy CSR
bridge, canonical content hashing, and the lazy ``Topology`` wrapper.
"""

import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.failures.injection import (
    fail_random_links,
    fail_random_links_core,
    fail_random_switches,
    fail_random_switches_core,
    link_failure_mask,
    switch_failure_mask,
)
from repro.graphs._reference import (
    random_graph_with_degree_budget_reference,
    sequential_random_regular_graph_reference,
    stub_matching_regular_graph_reference,
)
from repro.graphs.csr import CSRGraph, csr_graph
from repro.graphs.regular import (
    graph_from_rows,
    random_graph_with_degree_budget,
    sequential_random_regular_graph,
    stub_matching_regular_graph,
    stub_matching_regular_rows,
)
from repro.topologies.base import Topology, TopologyError
from repro.topologies.core import TopologyCore
from repro.topologies.ensemble import (
    EnsembleSpec,
    build_ensemble,
    ensemble_point_specs,
    ensemble_summary,
    generate_cores,
    summarize_instance_metrics,
)
from repro.topologies.jellyfish import JellyfishTopology

COMMON_SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def assert_same_graph(fast: nx.Graph, reference: nx.Graph) -> None:
    """Node list, edge list (order + orientation) and adjacency order equal."""
    assert list(fast.nodes) == list(reference.nodes)
    assert list(fast.edges) == list(reference.edges)
    for node in reference.nodes:
        assert list(fast.adj[node]) == list(reference.adj[node])


@st.composite
def regular_params(draw):
    num_nodes = draw(st.integers(min_value=0, max_value=26))
    if num_nodes == 0:
        return num_nodes, 0, draw(st.integers(min_value=0, max_value=2**16))
    degree = draw(st.integers(min_value=0, max_value=min(num_nodes - 1, 7)))
    if (num_nodes * degree) % 2 != 0:
        degree -= 1
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return num_nodes, max(0, degree), seed


class TestSequentialParity:
    @COMMON_SETTINGS
    @given(regular_params())
    def test_bit_identical_to_reference(self, params):
        num_nodes, degree, seed = params
        fast_rng = random.Random(seed)
        reference_rng = random.Random(seed)
        fast = sequential_random_regular_graph(num_nodes, degree, fast_rng)
        reference = sequential_random_regular_graph_reference(
            num_nodes, degree, reference_rng
        )
        assert_same_graph(fast, reference)
        # The fast path must consume the rng stream identically.
        assert fast_rng.random() == reference_rng.random()

    def test_rejects_odd_total_degree(self):
        with pytest.raises(ValueError):
            sequential_random_regular_graph(5, 3)

    def test_large_instance_spot_check(self):
        fast = sequential_random_regular_graph(120, 11, random.Random(9))
        reference = sequential_random_regular_graph_reference(
            120, 11, random.Random(9)
        )
        assert_same_graph(fast, reference)


class TestDegreeBudgetParity:
    @COMMON_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=18),
        st.integers(min_value=0, max_value=2**16),
        st.booleans(),
    )
    def test_bit_identical_to_reference(self, raw_budgets, seed, string_labels):
        size = len(raw_budgets)
        budgets = {
            (f"s{i}" if string_labels else i): min(value, size - 1)
            for i, value in enumerate(raw_budgets)
        }
        from repro.graphs.regular import GraphConstructionError

        fast_rng = random.Random(seed)
        reference_rng = random.Random(seed)
        # Unsatisfiable budgets (e.g. one node wants links but every
        # potential partner has budget 0) stall both implementations
        # identically; satisfiable ones must produce identical graphs.
        try:
            reference = random_graph_with_degree_budget_reference(
                budgets, reference_rng, max_stall_rounds=50
            )
        except GraphConstructionError as error:
            with pytest.raises(GraphConstructionError, match="degree budgets"):
                random_graph_with_degree_budget(budgets, fast_rng, max_stall_rounds=50)
            del error
            return
        fast = random_graph_with_degree_budget(budgets, fast_rng, max_stall_rounds=50)
        assert_same_graph(fast, reference)
        assert fast_rng.random() == reference_rng.random()

    def test_zero_budgets_give_isolated_nodes(self):
        graph = random_graph_with_degree_budget({0: 0, 1: 0, 2: 2, 3: 2}, rng=1)
        assert graph.degree(0) == 0 and graph.degree(1) == 0
        assert not nx.is_connected(graph)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            random_graph_with_degree_budget({0: -1})
        with pytest.raises(ValueError):
            random_graph_with_degree_budget({0: 2, 1: 1})


class TestStubMatchingParity:
    @COMMON_SETTINGS
    @given(regular_params())
    def test_bit_identical_to_reference(self, params):
        num_nodes, degree, seed = params
        fast_rng = random.Random(seed)
        reference_rng = random.Random(seed)
        fast = stub_matching_regular_graph(num_nodes, degree, fast_rng)
        reference = stub_matching_regular_graph_reference(
            num_nodes, degree, reference_rng
        )
        assert_same_graph(fast, reference)
        assert fast_rng.random() == reference_rng.random()

    @COMMON_SETTINGS
    @given(regular_params())
    def test_scratch_reuse_does_not_change_results(self, params):
        num_nodes, degree, seed = params
        scratch = {}
        # Two builds through one scratch dict, compared against fresh builds.
        for offset in (0, 1):
            with_scratch = stub_matching_regular_rows(
                num_nodes, degree, random.Random(seed + offset), scratch=scratch
            )
            fresh = stub_matching_regular_rows(
                num_nodes, degree, random.Random(seed + offset)
            )
            assert [list(row) for row in with_scratch] == [
                list(row) for row in fresh
            ]

    def test_regular_at_paper_degrees(self):
        graph = stub_matching_regular_graph(60, 11, rng=4)
        assert all(degree == 11 for _, degree in graph.degree())


class TestAddSwitchParity:
    @COMMON_SETTINGS
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=3),
    )
    def test_bit_identical_to_reference(self, build_seed, splice_seed, servers):
        fast = JellyfishTopology.build(18, 7, 4, rng=build_seed)
        reference = JellyfishTopology.build(18, 7, 4, rng=build_seed)
        fast_rng = random.Random(splice_seed)
        reference_rng = random.Random(splice_seed)
        fast.add_switch("new", 7, servers=servers, rng=fast_rng)
        reference._add_switch_reference("new", 7, servers=servers, rng=reference_rng)
        assert_same_graph(fast.graph, reference.graph)
        assert fast_rng.random() == reference_rng.random()

    def test_expand_validates_once_and_matches_per_step_validation(self):
        fast = JellyfishTopology.build(20, 6, 4, rng=7)
        stepwise = JellyfishTopology.build(20, 6, 4, rng=7)
        rng_fast, rng_step = random.Random(8), random.Random(8)
        fast.expand(5, 6, 2, rng=rng_fast)
        start = stepwise.num_switches
        for offset in range(5):
            stepwise.add_switch(
                ("new", start + offset), 6, servers=2, rng=rng_step
            )
        assert_same_graph(fast.graph, stepwise.graph)
        assert fast.servers == stepwise.servers


class TestFailureMaskParity:
    @COMMON_SETTINGS
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2**16),
        st.sampled_from([0.0, 0.1, 0.25, 0.5, 1.0]),
    )
    def test_link_mask_matches_copy_and_remove(self, build_seed, fail_seed, fraction):
        topology = JellyfishTopology.build(16, 6, 4, rng=build_seed)
        reference = fail_random_links(topology, fraction, rng=fail_seed)
        failed_core = fail_random_links_core(topology.core(), fraction, rng=fail_seed)
        expected = {frozenset(edge) for edge in reference.graph.edges}
        labels = failed_core.labels
        actual = {
            frozenset((labels[u], labels[v]))
            for u, v in failed_core.edge_array().tolist()
        }
        assert actual == expected

    @COMMON_SETTINGS
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2**16),
        st.sampled_from([0.0, 0.2, 0.5]),
    )
    def test_switch_mask_matches_copy_and_remove(self, build_seed, fail_seed, fraction):
        topology = JellyfishTopology.build(14, 6, 4, rng=build_seed)
        reference = fail_random_switches(topology, fraction, rng=fail_seed)
        failed_core = fail_random_switches_core(
            topology.core(), fraction, rng=fail_seed
        )
        assert set(failed_core.labels) == set(reference.graph.nodes)
        expected = {frozenset(edge) for edge in reference.graph.edges}
        labels = failed_core.labels
        actual = {
            frozenset((labels[u], labels[v]))
            for u, v in failed_core.edge_array().tolist()
        }
        assert actual == expected
        assert dict(zip(failed_core.labels, failed_core.servers.tolist())) == (
            reference.servers
        )

    def test_masks_draw_like_the_sample_calls(self):
        mask = link_failure_mask(40, 0.25, rng=3)
        expected = random.Random(3).sample(range(40), 10)
        assert sorted(np.flatnonzero(mask).tolist()) == sorted(expected)
        assert not switch_failure_mask(10, 0.0, rng=3).any()


class TestTopologyCore:
    def test_materialization_matches_add_edge_replay(self):
        rows = [{} for _ in range(4)]
        # Chronology: (1,3), (0,2), remove (1,3), (3,1) re-added, (0,1).
        for u, v in [(1, 3), (0, 2)]:
            rows[u][v] = True
            rows[v][u] = True
        del rows[1][3], rows[3][1]
        for u, v in [(3, 1), (0, 1)]:
            rows[u][v] = True
            rows[v][u] = True
        graph = graph_from_rows(["a", "b", "c", "d"], rows)
        replay = nx.Graph()
        replay.add_nodes_from(["a", "b", "c", "d"])
        for u, v in [("b", "d"), ("a", "c")]:
            replay.add_edge(u, v)
        replay.remove_edge("b", "d")
        replay.add_edge("d", "b")
        replay.add_edge("a", "b")
        assert_same_graph(graph, replay)

    def test_materialized_edge_attr_dicts_are_shared(self):
        topology = JellyfishTopology.build(10, 5, 2, rng=0)
        graph = topology.graph
        u, v = next(iter(graph.edges))
        graph[u][v]["capacity"] = 7.0
        assert graph[v][u]["capacity"] == 7.0

    def test_csr_bridge_equals_graph_built_csr(self):
        topology = JellyfishTopology.build(24, 8, 5, rng=2)
        core_csr = topology.core().csr()
        fresh = CSRGraph(topology.graph)
        assert core_csr.nodes == fresh.nodes
        assert np.array_equal(core_csr.indptr, fresh.indptr)
        assert np.array_equal(core_csr.indices, fresh.indices)
        assert core_csr.num_edges == fresh.num_edges

    def test_materialization_adopts_core_csr(self):
        topology = JellyfishTopology.build(12, 6, 3, rng=3)
        view = topology.csr()  # built on the core, graph not materialized
        assert not topology.has_materialized_graph
        graph = topology.graph
        assert csr_graph(graph) is view

    def test_content_hash_ignores_construction_order(self):
        topology = JellyfishTopology.build(12, 6, 4, rng=5)
        core = topology.core()
        shuffled_rows = [list(reversed(row)) for row in core.rows]
        shuffled = TopologyCore(
            core.labels, shuffled_rows, core.ports, core.servers
        )
        assert shuffled.content_hash == core.content_hash

    def test_content_hash_sees_structure_ports_and_servers(self):
        base = JellyfishTopology.build(12, 6, 4, rng=5).core()
        rewired = base.without_edges(
            np.arange(base.num_edges) == 0
        )
        assert rewired.content_hash != base.content_hash
        more_servers = base.copy()
        more_servers.set_servers(0, 1 + int(base.servers[0]))
        assert more_servers.content_hash != base.content_hash

    def test_copy_as_graph_copy_matches_networkx_copy_order(self):
        topology = JellyfishTopology.build(15, 6, 4, rng=6)
        nx_copy = topology.graph.copy()
        core_copy = topology.core().copy_as_graph_copy()
        materialized = core_copy.to_networkx()
        assert_same_graph(materialized, nx_copy)

    def test_without_nodes_reindexes(self):
        core = JellyfishTopology.build(10, 6, 3, rng=7).core()
        mask = np.zeros(10, dtype=bool)
        mask[[2, 5]] = True
        survivor = core.without_nodes(mask)
        assert survivor.labels == [0, 1, 3, 4, 6, 7, 8, 9]
        assert survivor.num_nodes == 8
        survivor.validate()

    def test_validate_reports_overdrawn_switch(self):
        with pytest.raises(TopologyError, match="uses"):
            TopologyCore(["a", "b"], [[1], [0]], [1, 2], [1, 0]).validate()


class TestLazyTopologyWrapper:
    def test_metrics_without_materialization(self):
        topology = JellyfishTopology.build(30, 8, 5, rng=1)
        assert not topology.has_materialized_graph
        assert topology.num_switches == 30
        assert topology.num_links == 75
        assert topology.is_connected()
        mean_lazy = topology.switch_average_path_length()
        diameter_lazy = topology.switch_diameter()
        cdf_lazy = topology.server_path_length_cdf()
        assert not topology.has_materialized_graph
        # Materialize and recompute through the graph path.
        eager = JellyfishTopology(
            topology.graph,
            dict(topology.ports),
            dict(topology.servers),
        )
        assert eager.switch_average_path_length() == mean_lazy
        assert eager.switch_diameter() == diameter_lazy
        assert eager.server_path_length_cdf() == cdf_lazy

    def test_server_cdf_matches_host_graph_path(self):
        from repro.graphs.properties import path_length_cdf

        topology = JellyfishTopology.from_equipment(20, 6, 26, rng=4)
        via_host_graph = path_length_cdf(
            topology.host_graph(), topology.server_nodes()
        )
        assert topology.server_path_length_cdf() == via_host_graph

    def test_attach_servers_updates_core(self):
        topology = JellyfishTopology.build(10, 8, 3, rng=2, servers_per_switch=3)
        topology.attach_servers(0, 2)
        core = topology.core()
        assert int(core.servers[core.index_of[0]]) == 3 + 2
        with pytest.raises(TopologyError):
            topology.attach_servers(0, 100)

    def test_core_revalidates_after_graph_mutation(self):
        topology = JellyfishTopology.build(10, 6, 3, rng=3)
        before = topology.core().num_edges
        topology.remove_links([next(iter(topology.graph.edges))])
        assert topology.core().num_edges == before - 1

    def test_from_core_validates(self):
        with pytest.raises(TopologyError):
            Topology.from_core(
                TopologyCore(["a", "b"], [[1], [0]], [1, 1], [1, 1])
            )


class TestTrafficArrays:
    def test_as_switch_array_matches_switch_pairs(self):
        from repro.traffic.matrices import random_permutation_traffic

        topology = JellyfishTopology.build(12, 6, 4, rng=5)
        traffic = random_permutation_traffic(topology, rng=6)
        csr = topology.csr()
        arrays = traffic.as_switch_array(csr.index_of)
        pairs = traffic.switch_pairs()
        assert arrays.pairs == list(pairs)
        assert arrays.rates.tolist() == list(pairs.values())
        assert [csr.nodes[i] for i in arrays.src.tolist()] == [
            src for src, _ in pairs
        ]
        assert [csr.nodes[i] for i in arrays.dst.tolist()] == [
            dst for _, dst in pairs
        ]
        # Cached per index mapping object.
        assert traffic.as_switch_array(csr.index_of) is arrays

    def test_caches_invalidate_on_demand_list_changes(self):
        from repro.traffic.matrices import Demand, random_permutation_traffic

        topology = JellyfishTopology.build(10, 6, 4, rng=7)
        traffic = random_permutation_traffic(topology, rng=8)
        csr = topology.csr()
        before_pairs = dict(traffic.switch_pairs())
        before_arrays = traffic.as_switch_array(csr.index_of)
        # Same-length slot replacement must invalidate both caches.
        old = traffic.demands[0]
        traffic.demands[0] = Demand(old.source, old.destination, old.rate + 1.0)
        after_pairs = traffic.switch_pairs()
        assert after_pairs != before_pairs
        after_arrays = traffic.as_switch_array(csr.index_of)
        assert after_arrays is not before_arrays
        assert after_arrays.rates.sum() == pytest.approx(
            before_arrays.rates.sum() + 1.0
        )
        # Demands themselves are frozen, so in-place rate edits cannot
        # bypass the fingerprint.
        with pytest.raises(AttributeError):
            traffic.demands[0].rate = 99.0


class TestEnsembles:
    def test_instances_are_distinct_and_reproducible(self):
        spec = EnsembleSpec(
            num_instances=6, num_switches=20, ports_per_switch=6,
            network_degree=4, seed=3,
        )
        first = [core.content_hash for _, core in generate_cores(spec)]
        second = [core.content_hash for _, core in generate_cores(spec)]
        assert first == second
        assert len(set(first)) == 6

    def test_methods_share_seeding_but_differ_structurally(self):
        sequential = EnsembleSpec(
            num_instances=3, num_switches=20, ports_per_switch=6,
            network_degree=4, seed=1,
        )
        stubs = EnsembleSpec(
            num_instances=3, num_switches=20, ports_per_switch=6,
            network_degree=4, method="stubs", seed=1,
        )
        assert sequential.instance_seeds() == stubs.instance_seeds()
        assert [c.content_hash for _, c in generate_cores(sequential)] != [
            c.content_hash for _, c in generate_cores(stubs)
        ]

    def test_build_ensemble_yields_lazy_topologies(self):
        spec = EnsembleSpec(
            num_instances=4, num_switches=16, ports_per_switch=6,
            network_degree=3, method="stubs", seed=2,
        )
        topologies = build_ensemble(spec)
        assert len(topologies) == 4
        assert all(not t.has_materialized_graph for t in topologies)
        assert all(t.num_servers == 16 * 3 for t in topologies)

    def test_sharded_points_match_serial_summary(self):
        from repro.engine.runner import SweepRunner
        from repro.engine.spec import expand

        spec = EnsembleSpec(
            num_instances=5, num_switches=14, ports_per_switch=6,
            network_degree=3, seed=4,
        )
        serial = ensemble_summary(spec)
        values = SweepRunner().run_values(expand(ensemble_point_specs(spec)))
        assert summarize_instance_metrics(values) == serial

    def test_ablation_methods_build_serially_too(self):
        # pairing/networkx have no rows-native path; the serial generator
        # must still produce cores for them (matching the sharded points).
        spec = EnsembleSpec(
            num_instances=2, num_switches=12, ports_per_switch=6,
            network_degree=4, method="pairing", seed=6,
        )
        summary = ensemble_summary(spec)
        assert summary["num_instances"] == 2
        assert summary["distinct_hashes"] == 2

    def test_odd_total_degree_drops_one_port(self):
        spec = EnsembleSpec(
            num_instances=2, num_switches=5, ports_per_switch=6,
            network_degree=3, seed=5,
        )
        assert spec.effective_degree == 2
        for _, core in generate_cores(spec):
            assert int(core.degrees().max()) <= 2
