"""Tests for path-diversity accounting (Fig 9 machinery)."""

import pytest

from repro.routing.diversity import (
    fraction_links_at_or_below,
    link_path_counts,
    ranked_counts,
)


class TestLinkPathCounts:
    def test_counts_directed_links(self):
        paths = [(0, 1, 2), (0, 1, 3)]
        counts = link_path_counts(paths)
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1
        assert (1, 0) not in counts

    def test_duplicate_paths_counted_once(self):
        paths = [(0, 1, 2), (0, 1, 2)]
        counts = link_path_counts(paths)
        assert counts[(0, 1)] == 1

    def test_empty(self):
        assert link_path_counts([]) == {}


class TestRankedCounts:
    def test_padding_with_zeros(self):
        counts = {(0, 1): 3, (1, 2): 1}
        assert ranked_counts(counts, total_links=4) == [0, 0, 1, 3]

    def test_no_padding(self):
        counts = {(0, 1): 3, (1, 2): 1}
        assert ranked_counts(counts) == [1, 3]

    def test_total_too_small_rejected(self):
        with pytest.raises(ValueError):
            ranked_counts({(0, 1): 1, (1, 2): 1}, total_links=1)


class TestFractionAtOrBelow:
    def test_counts_unused_links(self):
        counts = {(0, 1): 5, (1, 2): 1}
        # 4 links total: two unused (0 paths), one with 1, one with 5.
        assert fraction_links_at_or_below(counts, 2, total_links=4) == pytest.approx(0.75)

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            fraction_links_at_or_below({}, 2, total_links=0)
