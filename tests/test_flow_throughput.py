"""Tests for the throughput harness (normalized throughput, binary search)."""

import pytest

from repro.flow.throughput import (
    max_servers_at_full_throughput,
    normalized_throughput,
    supports_full_throughput,
)
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic


class TestNormalizedThroughput:
    def test_fattree_supports_full_capacity(self, small_fattree):
        result = normalized_throughput(small_fattree, engine="edge", rng=1)
        assert result.supports_full_capacity()
        assert result.normalized == pytest.approx(1.0)

    def test_normalized_capped_at_one(self, small_jellyfish):
        result = normalized_throughput(small_jellyfish, engine="path", k=8, rng=2)
        assert 0.0 <= result.normalized <= 1.0

    def test_num_flows_matches_traffic(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rng=3)
        result = normalized_throughput(small_fattree, traffic, engine="path", k=4)
        assert result.num_flows == len(traffic)

    def test_empty_topology(self, small_jellyfish):
        topo = small_jellyfish.copy()
        for node in topo.graph.nodes:
            topo.servers[node] = 0
        result = normalized_throughput(topo, rng=4)
        assert result.normalized == 1.0
        assert result.num_flows == 0

    def test_unknown_engine(self, small_fattree):
        with pytest.raises(ValueError):
            normalized_throughput(small_fattree, engine="quantum")


class TestSupportsFullThroughput:
    def test_fattree(self, small_fattree):
        assert supports_full_throughput(small_fattree, num_matrices=2, engine="path", k=8, rng=1)

    def test_oversubscribed_jellyfish_fails(self):
        # 2 network ports per switch but 6 servers: far too oversubscribed.
        topo = JellyfishTopology.build(12, 8, 2, rng=1)
        assert not supports_full_throughput(topo, num_matrices=1, engine="path", k=4, rng=2)

    def test_disconnected_topology_reports_false(self, small_jellyfish):
        topo = small_jellyfish.copy()
        topo.remove_links(list(topo.graph.edges))
        assert not supports_full_throughput(topo, num_matrices=1, rng=3)


class TestBinarySearch:
    def test_finds_threshold_with_synthetic_factory(self):
        # Use a deterministic fake: a topology family that supports full
        # throughput iff it hosts at most 24 servers.
        threshold = 24

        def factory(num_servers: int):
            degree = 8 if num_servers <= threshold else 1
            return JellyfishTopology.build(
                12, 12, degree, rng=1, servers_per_switch=max(1, num_servers // 12)
            )

        best = max_servers_at_full_throughput(
            factory, lower=12, upper=48, num_matrices=1, engine="path", k=4, rng=1
        )
        assert 12 <= best <= threshold + 12  # coarse: factory granularity is 12

    def test_lower_bound_infeasible_raises(self):
        def factory(num_servers: int):
            return JellyfishTopology.build(12, 8, 1, rng=1, servers_per_switch=4)

        with pytest.raises(ValueError):
            max_servers_at_full_throughput(factory, lower=10, upper=20, num_matrices=1, rng=1)

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            max_servers_at_full_throughput(lambda n: None, lower=10, upper=5)

    def test_jellyfish_matches_fattree_equipment(self, small_fattree):
        # The Jellyfish built from the k=4 fat-tree's equipment supports at
        # least as many servers at full capacity.
        def factory(num_servers: int):
            return JellyfishTopology.from_equipment(
                num_switches=small_fattree.num_switches,
                ports_per_switch=4,
                num_servers=num_servers,
                rng=5,
            )

        best = max_servers_at_full_throughput(
            factory,
            lower=8,
            upper=small_fattree.num_switches * 1,
            num_matrices=1,
            engine="path",
            k=8,
            rng=6,
        )
        assert best >= small_fattree.num_servers * 0.8
