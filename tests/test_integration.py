"""Cross-module integration tests: the paper's core claims end to end."""

import pytest

from repro.flow.mcf import max_concurrent_flow_edge_lp
from repro.flow.path_lp import max_concurrent_flow_path_lp
from repro.flow.throughput import normalized_throughput, supports_full_throughput
from repro.graphs.properties import average_path_length
from repro.routing.paths import build_path_set
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.stats import mean


class TestJellyfishVersusFatTree:
    """Section 4.1: same equipment, shorter paths, no less capacity."""

    def test_shorter_average_paths_than_fattree(self, medium_fattree):
        jellyfish = JellyfishTopology.from_equipment(
            medium_fattree.num_switches, 6, medium_fattree.num_servers, rng=1
        )
        assert (
            average_path_length(jellyfish.graph)
            < average_path_length(medium_fattree.graph)
        )

    def test_diameter_no_worse_than_fattree(self, medium_fattree):
        jellyfish = JellyfishTopology.from_equipment(
            medium_fattree.num_switches, 6, medium_fattree.num_servers, rng=2
        )
        assert jellyfish.switch_diameter() <= medium_fattree.switch_diameter()

    def test_full_throughput_at_fattree_server_count(self, medium_fattree):
        jellyfish = JellyfishTopology.from_equipment(
            medium_fattree.num_switches, 6, medium_fattree.num_servers, rng=3
        )
        assert supports_full_throughput(
            jellyfish, num_matrices=2, engine="path", k=8, rng=3
        )

    def test_incremental_expansion_keeps_capacity(self):
        topology = JellyfishTopology.build(20, 12, 8, rng=4)
        base = normalized_throughput(topology, engine="path", k=8, rng=4).normalized
        topology.expand(10, 12, 4, rng=5)
        expanded = normalized_throughput(topology, engine="path", k=8, rng=5).normalized
        assert expanded >= base - 0.15


class TestLpEngineAgreement:
    def test_path_lp_close_to_edge_lp_on_fattree(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rng=6)
        edge = max_concurrent_flow_edge_lp(small_fattree, traffic)
        path = max_concurrent_flow_path_lp(small_fattree, traffic, k=8)
        assert path == pytest.approx(edge, rel=0.05)

    def test_path_lp_close_to_edge_lp_on_jellyfish(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=7)
        edge = max_concurrent_flow_edge_lp(small_jellyfish, traffic)
        path = max_concurrent_flow_path_lp(small_jellyfish, traffic, k=16)
        assert path <= edge + 1e-6
        assert path >= 0.92 * edge


class TestRoutingAndCongestionControl:
    """Section 5: practical routing captures most of the LP capacity."""

    def test_ksp_mptcp_close_to_optimal(self):
        topology = JellyfishTopology.build(16, 8, 5, rng=8)
        traffic = random_permutation_traffic(topology, rng=8)
        optimal = normalized_throughput(topology, traffic, engine="path", k=12).normalized
        simulated = simulate_fluid(
            topology, traffic,
            SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP),
            rng=8,
        ).average_throughput
        assert simulated >= 0.75 * optimal

    def test_path_sets_reused_across_engines(self, equipment_jellyfish):
        traffic = random_permutation_traffic(equipment_jellyfish, rng=9)
        pairs = list(traffic.switch_pairs())
        path_set = build_path_set(equipment_jellyfish.graph, pairs, scheme="ksp", k=8)
        path_set.validate_against(equipment_jellyfish.graph)
        via_lp = max_concurrent_flow_path_lp(
            equipment_jellyfish, traffic, path_set=path_set
        )
        via_sim = simulate_fluid(
            equipment_jellyfish, traffic,
            SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP),
            rng=9, path_set=path_set,
        ).average_throughput
        assert via_sim <= min(via_lp, 1.0) + 0.1

    def test_average_throughput_reproducible_with_seed(self, equipment_jellyfish):
        traffic = random_permutation_traffic(equipment_jellyfish, rng=10)
        config = SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)
        first = simulate_fluid(equipment_jellyfish, traffic, config, rng=11)
        second = simulate_fluid(equipment_jellyfish, traffic, config, rng=11)
        assert first.average_throughput == pytest.approx(second.average_throughput)


class TestFailureResilience:
    def test_random_graph_stays_connected_after_moderate_failures(self):
        from repro.failures.injection import fail_random_links

        topology = JellyfishTopology.build(40, 10, 6, rng=12)
        failed = fail_random_links(topology, 0.15, rng=12)
        assert failed.is_connected()

    def test_fifteen_percent_failures_cost_less_than_thirty_percent_capacity(self):
        topology = JellyfishTopology.build(30, 10, 6, rng=13)
        from repro.failures.injection import throughput_under_link_failures

        series = throughput_under_link_failures(
            topology, [0.0, 0.15], engine="path", k=8, rng=13
        )
        baseline, degraded = series[0][1], series[1][1]
        assert degraded >= baseline * 0.7
