"""Tests for the LP throughput engines (edge-based and path-based)."""

import networkx as nx
import pytest

from repro.flow.mcf import max_concurrent_flow_edge_lp
from repro.flow.path_lp import max_concurrent_flow_path_lp
from repro.topologies.base import Topology
from repro.traffic.matrices import Demand, TrafficMatrix, random_permutation_traffic


def line_topology():
    """Two switches joined by one unit link, one server each."""
    graph = nx.Graph()
    graph.add_edge("a", "b")
    return Topology(graph, {"a": 2, "b": 2}, {"a": 1, "b": 1}, name="line")


def single_demand(rate: float) -> TrafficMatrix:
    return TrafficMatrix([Demand(("a", 0), ("b", 0), rate)])


class TestEdgeLp:
    def test_single_link_theta(self):
        assert max_concurrent_flow_edge_lp(line_topology(), single_demand(1.0)) == pytest.approx(1.0)
        assert max_concurrent_flow_edge_lp(line_topology(), single_demand(2.0)) == pytest.approx(0.5)
        assert max_concurrent_flow_edge_lp(line_topology(), single_demand(0.25)) == pytest.approx(4.0)

    def test_empty_traffic_is_infinite(self):
        assert max_concurrent_flow_edge_lp(line_topology(), TrafficMatrix([])) == float("inf")

    def test_parallel_paths_add_capacity(self):
        graph = nx.Graph()
        graph.add_edge("a", "m1")
        graph.add_edge("m1", "b")
        graph.add_edge("a", "m2")
        graph.add_edge("m2", "b")
        topo = Topology(graph, {n: 4 for n in graph.nodes}, {"a": 1, "b": 1})
        theta = max_concurrent_flow_edge_lp(topo, single_demand(1.0))
        assert theta == pytest.approx(2.0)

    def test_respects_edge_capacity_attribute(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", capacity=3.0)
        topo = Topology(graph, {"a": 4, "b": 4}, {"a": 1, "b": 1})
        assert max_concurrent_flow_edge_lp(topo, single_demand(1.0)) == pytest.approx(3.0)

    def test_fattree_full_bisection(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rng=0)
        theta = max_concurrent_flow_edge_lp(small_fattree, traffic)
        assert theta >= 1.0 - 1e-6


class TestPathLp:
    def test_matches_edge_lp_on_single_link(self):
        topo = line_topology()
        traffic = single_demand(2.0)
        assert max_concurrent_flow_path_lp(topo, traffic, k=4) == pytest.approx(
            max_concurrent_flow_edge_lp(topo, traffic)
        )

    def test_lower_bound_of_edge_lp(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=1)
        edge_theta = max_concurrent_flow_edge_lp(small_jellyfish, traffic)
        path_theta = max_concurrent_flow_path_lp(small_jellyfish, traffic, k=8)
        assert path_theta <= edge_theta + 1e-6

    def test_close_to_edge_lp_with_enough_paths(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=2)
        edge_theta = max_concurrent_flow_edge_lp(small_jellyfish, traffic)
        path_theta = max_concurrent_flow_path_lp(small_jellyfish, traffic, k=16)
        assert path_theta >= 0.9 * edge_theta

    def test_more_paths_never_hurt(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=3)
        theta_few = max_concurrent_flow_path_lp(small_jellyfish, traffic, k=2)
        theta_many = max_concurrent_flow_path_lp(small_jellyfish, traffic, k=8)
        assert theta_many >= theta_few - 1e-9

    def test_empty_traffic(self, small_jellyfish):
        assert max_concurrent_flow_path_lp(small_jellyfish, TrafficMatrix([])) == float("inf")
