"""Tests for the fat-tree baseline topology."""

import pytest

from repro.topologies.base import TopologyError
from repro.topologies.fattree import (
    FatTreeTopology,
    fattree_num_servers,
    fattree_num_switches,
)


class TestFormulas:
    def test_servers(self):
        assert fattree_num_servers(4) == 16
        assert fattree_num_servers(48) == 27648

    def test_switches(self):
        assert fattree_num_switches(4) == 20
        assert fattree_num_switches(24) == 720


class TestBuild:
    def test_k4_structure(self, small_fattree):
        assert small_fattree.num_switches == 20
        assert small_fattree.num_servers == 16
        # k^3/2 switch-to-switch links.
        assert small_fattree.num_links == 32
        assert small_fattree.is_connected()

    def test_k6_counts(self, medium_fattree):
        assert medium_fattree.num_switches == 45
        assert medium_fattree.num_servers == 54
        assert medium_fattree.num_links == 108

    def test_every_port_accounted_for(self, small_fattree):
        for node in small_fattree.graph.nodes:
            used = small_fattree.graph.degree(node) + small_fattree.servers[node]
            assert used == small_fattree.ports[node]

    def test_layers(self, small_fattree):
        assert len(small_fattree.core_switches()) == 4
        assert len(small_fattree.aggregation_switches()) == 8
        assert len(small_fattree.edge_switches()) == 8

    def test_core_switch_reaches_every_pod(self, small_fattree):
        for core in small_fattree.core_switches():
            pods = {agg[1] for agg in small_fattree.graph.neighbors(core)}
            assert pods == set(range(4))

    def test_diameter_is_six_server_to_server(self, small_fattree):
        # Switch-level diameter 4 => server-to-server diameter 6.
        assert small_fattree.switch_diameter() == 4

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeTopology.build(5)

    def test_k_below_two_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeTopology.build(0)

    def test_pod_helpers(self, small_fattree):
        edge = small_fattree.edge_switches()[0]
        assert small_fattree.layer(edge) == "edge"
        assert isinstance(small_fattree.pod_of(edge), int)
        with pytest.raises(ValueError):
            small_fattree.pod_of(small_fattree.core_switches()[0])


class TestBisection:
    def test_full_bisection(self, small_fattree):
        assert small_fattree.normalized_bisection_bandwidth() == pytest.approx(1.0)
        assert small_fattree.bisection_bandwidth_edges() == pytest.approx(8.0)
