"""Tests for the Topology abstraction (repro.topologies.base)."""

import networkx as nx
import pytest

from repro.topologies.base import Topology, TopologyError


def triangle_topology():
    graph = nx.cycle_graph(3)
    ports = {0: 4, 1: 4, 2: 4}
    servers = {0: 2, 1: 1}
    return Topology(graph, ports, servers, name="triangle")


class TestConstructionAndValidation:
    def test_basic_counts(self):
        topo = triangle_topology()
        assert topo.num_switches == 3
        assert topo.num_links == 3
        assert topo.num_servers == 3
        assert topo.total_ports == 12

    def test_port_budget_violation_rejected(self):
        graph = nx.cycle_graph(3)
        with pytest.raises(TopologyError):
            Topology(graph, {0: 2, 1: 4, 2: 4}, {0: 1})

    def test_missing_port_count_rejected(self):
        graph = nx.cycle_graph(3)
        with pytest.raises(TopologyError):
            Topology(graph, {0: 4, 1: 4})

    def test_server_on_unknown_switch_rejected(self):
        graph = nx.cycle_graph(3)
        with pytest.raises(TopologyError):
            Topology(graph, {0: 4, 1: 4, 2: 4}, {99: 1})

    def test_negative_servers_rejected(self):
        graph = nx.cycle_graph(3)
        with pytest.raises(TopologyError):
            Topology(graph, {0: 4, 1: 4, 2: 4}, {0: -1})

    def test_port_count_for_unknown_switch_rejected(self):
        graph = nx.cycle_graph(3)
        with pytest.raises(TopologyError):
            Topology(graph, {0: 4, 1: 4, 2: 4, 9: 4})


class TestAccounting:
    def test_free_ports(self):
        topo = triangle_topology()
        assert topo.free_ports(0) == 4 - 2 - 2
        assert topo.free_ports(2) == 2

    def test_equipment_summary(self):
        summary = triangle_topology().equipment()
        assert summary.num_switches == 3
        assert summary.num_servers == 3
        assert summary.as_dict()["total_ports"] == 12

    def test_server_list_and_hosts(self):
        topo = triangle_topology()
        assert set(topo.server_hosts()) == {0, 1}
        assert len(topo.server_list()) == 3

    def test_host_graph_contains_servers_as_leaves(self):
        topo = triangle_topology()
        hosts = topo.host_graph()
        assert hosts.number_of_nodes() == 3 + 3
        for server in topo.server_nodes():
            assert hosts.degree(server) == 1


class TestDerivedMetrics:
    def test_switch_path_metrics(self):
        topo = triangle_topology()
        assert topo.switch_diameter() == 1
        assert topo.switch_average_path_length() == pytest.approx(1.0)

    def test_server_path_length_cdf_ends_at_one(self):
        cdf = triangle_topology().server_path_length_cdf()
        assert max(cdf.values()) == pytest.approx(1.0)

    def test_is_connected(self):
        assert triangle_topology().is_connected()


class TestMutation:
    def test_copy_is_independent(self):
        topo = triangle_topology()
        clone = topo.copy()
        clone.graph.remove_edge(0, 1)
        clone.servers[2] = 2
        assert topo.graph.has_edge(0, 1)
        assert topo.servers[2] == 0

    def test_remove_links(self):
        topo = triangle_topology()
        topo.remove_links([(0, 1), (5, 6)])  # missing links are ignored
        assert topo.num_links == 2

    def test_attach_servers_respects_budget(self):
        topo = triangle_topology()
        topo.attach_servers(2, 2)
        assert topo.servers[2] == 2
        with pytest.raises(TopologyError):
            topo.attach_servers(2, 5)

    def test_attach_negative_rejected(self):
        with pytest.raises(TopologyError):
            triangle_topology().attach_servers(0, -1)
