"""Tests for failure injection."""

import pytest

from repro.failures.injection import (
    fail_random_links,
    fail_random_links_core,
    fail_random_switches,
    fail_random_switches_core,
    link_failure_mask,
    switch_failure_mask,
    throughput_under_link_failures,
)


class TestFailRandomLinks:
    def test_fraction_of_links_removed(self, small_jellyfish):
        failed = fail_random_links(small_jellyfish, 0.25, rng=1)
        expected_removed = round(0.25 * small_jellyfish.num_links)
        assert failed.num_links == small_jellyfish.num_links - expected_removed

    def test_original_untouched(self, small_jellyfish):
        links_before = small_jellyfish.num_links
        fail_random_links(small_jellyfish, 0.5, rng=2)
        assert small_jellyfish.num_links == links_before

    def test_servers_preserved(self, small_jellyfish):
        failed = fail_random_links(small_jellyfish, 0.3, rng=3)
        assert failed.num_servers == small_jellyfish.num_servers

    def test_zero_fraction_is_identity(self, small_jellyfish):
        failed = fail_random_links(small_jellyfish, 0.0, rng=4)
        assert failed.num_links == small_jellyfish.num_links

    def test_invalid_fraction(self, small_jellyfish):
        with pytest.raises(ValueError):
            fail_random_links(small_jellyfish, 1.5)


class TestFailRandomSwitches:
    def test_switches_and_their_servers_removed(self, small_jellyfish):
        failed = fail_random_switches(small_jellyfish, 0.2, rng=1)
        removed = round(0.2 * small_jellyfish.num_switches)
        assert failed.num_switches == small_jellyfish.num_switches - removed
        assert failed.num_servers < small_jellyfish.num_servers

    def test_zero_fraction(self, small_jellyfish):
        failed = fail_random_switches(small_jellyfish, 0.0, rng=2)
        assert failed.num_switches == small_jellyfish.num_switches


class TestThroughputUnderFailures:
    def test_throughput_decreases_gracefully(self, small_jellyfish):
        series = throughput_under_link_failures(
            small_jellyfish, [0.0, 0.2], engine="path", k=8, rng=1
        )
        assert len(series) == 2
        baseline = series[0][1]
        degraded = series[1][1]
        assert 0.0 <= degraded <= baseline + 0.15

    def test_all_points_in_unit_interval(self, small_jellyfish):
        series = throughput_under_link_failures(
            small_jellyfish, [0.0, 0.1, 0.3], engine="path", k=4, rng=2
        )
        assert all(0.0 <= value <= 1.0 for _, value in series)

    def test_heavy_failures_do_not_crash(self, small_jellyfish):
        # Failing most links can disconnect the network; the harness must
        # still return a (low) throughput value rather than raising.
        series = throughput_under_link_failures(
            small_jellyfish, [0.8], engine="path", k=4, rng=3
        )
        assert 0.0 <= series[0][1] <= 1.0


class TestMaskInjection:
    """Edge cases of the mask-based (TopologyCore) failure injection."""

    def test_double_injection_is_idempotent(self, small_jellyfish):
        import numpy as np

        core = small_jellyfish.core()
        mask = link_failure_mask(core.num_edges, 0.25, rng=7)
        failed = core.without_edges(mask)
        # Re-applying the *same* failure: none of the masked edges remain,
        # so the equivalent mask on the failed core is all-False and the
        # result is content-identical.
        again = failed.without_edges(np.zeros(failed.num_edges, dtype=bool))
        assert again.content_hash == failed.content_hash
        assert again.num_edges == failed.num_edges

    def test_failing_all_links_of_a_switch_matches_failing_the_switch(
        self, small_jellyfish
    ):
        import numpy as np

        core = small_jellyfish.core()
        victim = 3
        node_mask = np.zeros(core.num_nodes, dtype=bool)
        node_mask[victim] = True
        switch_failed = core.without_nodes(node_mask)

        edges = core.edge_array()
        edge_mask = (edges[:, 0] == victim) | (edges[:, 1] == victim)
        assert edge_mask.any()  # the victim actually had links
        # Removing every incident link first, then the (now isolated)
        # switch, must land on the same topology as failing the switch.
        links_then_switch = core.without_edges(edge_mask).without_nodes(node_mask)
        assert links_then_switch.content_hash == switch_failed.content_hash

    def test_empty_mask_injection_is_a_noop(self, small_jellyfish):
        import numpy as np

        core = small_jellyfish.core()
        no_links = core.without_edges(np.zeros(core.num_edges, dtype=bool))
        no_nodes = core.without_nodes(np.zeros(core.num_nodes, dtype=bool))
        assert no_links.content_hash == core.content_hash
        assert no_nodes.content_hash == core.content_hash
        assert no_links.num_edges == core.num_edges
        assert no_nodes.num_nodes == core.num_nodes

    def test_zero_fraction_masks_are_empty_and_identity(self, small_jellyfish):
        core = small_jellyfish.core()
        assert not link_failure_mask(core.num_edges, 0.0, rng=1).any()
        assert not switch_failure_mask(core.num_nodes, 0.0, rng=1).any()
        assert (
            fail_random_links_core(core, 0.0, rng=1).content_hash
            == core.content_hash
        )
        assert (
            fail_random_switches_core(core, 0.0, rng=1).content_hash
            == core.content_hash
        )
