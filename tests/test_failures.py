"""Tests for failure injection."""

import pytest

from repro.failures.injection import (
    fail_random_links,
    fail_random_switches,
    throughput_under_link_failures,
)


class TestFailRandomLinks:
    def test_fraction_of_links_removed(self, small_jellyfish):
        failed = fail_random_links(small_jellyfish, 0.25, rng=1)
        expected_removed = round(0.25 * small_jellyfish.num_links)
        assert failed.num_links == small_jellyfish.num_links - expected_removed

    def test_original_untouched(self, small_jellyfish):
        links_before = small_jellyfish.num_links
        fail_random_links(small_jellyfish, 0.5, rng=2)
        assert small_jellyfish.num_links == links_before

    def test_servers_preserved(self, small_jellyfish):
        failed = fail_random_links(small_jellyfish, 0.3, rng=3)
        assert failed.num_servers == small_jellyfish.num_servers

    def test_zero_fraction_is_identity(self, small_jellyfish):
        failed = fail_random_links(small_jellyfish, 0.0, rng=4)
        assert failed.num_links == small_jellyfish.num_links

    def test_invalid_fraction(self, small_jellyfish):
        with pytest.raises(ValueError):
            fail_random_links(small_jellyfish, 1.5)


class TestFailRandomSwitches:
    def test_switches_and_their_servers_removed(self, small_jellyfish):
        failed = fail_random_switches(small_jellyfish, 0.2, rng=1)
        removed = round(0.2 * small_jellyfish.num_switches)
        assert failed.num_switches == small_jellyfish.num_switches - removed
        assert failed.num_servers < small_jellyfish.num_servers

    def test_zero_fraction(self, small_jellyfish):
        failed = fail_random_switches(small_jellyfish, 0.0, rng=2)
        assert failed.num_switches == small_jellyfish.num_switches


class TestThroughputUnderFailures:
    def test_throughput_decreases_gracefully(self, small_jellyfish):
        series = throughput_under_link_failures(
            small_jellyfish, [0.0, 0.2], engine="path", k=8, rng=1
        )
        assert len(series) == 2
        baseline = series[0][1]
        degraded = series[1][1]
        assert 0.0 <= degraded <= baseline + 0.15

    def test_all_points_in_unit_interval(self, small_jellyfish):
        series = throughput_under_link_failures(
            small_jellyfish, [0.0, 0.1, 0.3], engine="path", k=4, rng=2
        )
        assert all(0.0 <= value <= 1.0 for _, value in series)

    def test_heavy_failures_do_not_crash(self, small_jellyfish):
        # Failing most links can disconnect the network; the harness must
        # still return a (low) throughput value rather than raising.
        series = throughput_under_link_failures(
            small_jellyfish, [0.8], engine="path", k=4, rng=3
        )
        assert 0.0 <= series[0][1] <= 1.0
