"""Tests for random regular graph construction (repro.graphs.regular)."""

import networkx as nx
import pytest

from repro.graphs.regular import (
    free_port_counts,
    is_regular,
    pairing_model_regular_graph,
    random_graph_with_degree_budget,
    random_regular_graph,
    sequential_random_regular_graph,
)


class TestSequentialConstruction:
    def test_exact_regularity_even_product(self):
        graph = sequential_random_regular_graph(20, 4, rng=1)
        assert is_regular(graph, 4)

    def test_node_and_edge_counts(self):
        graph = sequential_random_regular_graph(30, 6, rng=2)
        assert graph.number_of_nodes() == 30
        assert graph.number_of_edges() == 30 * 6 // 2

    def test_connected_for_degree_three_and_up(self):
        for seed in range(5):
            graph = sequential_random_regular_graph(40, 3, rng=seed)
            assert nx.is_connected(graph)

    def test_simple_graph_no_self_loops(self):
        graph = sequential_random_regular_graph(25, 4, rng=3)
        assert all(u != v for u, v in graph.edges)

    def test_zero_degree(self):
        graph = sequential_random_regular_graph(10, 0, rng=4)
        assert graph.number_of_edges() == 0

    def test_empty_graph(self):
        graph = sequential_random_regular_graph(0, 0, rng=5)
        assert graph.number_of_nodes() == 0

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            sequential_random_regular_graph(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(ValueError):
            sequential_random_regular_graph(4, 4)

    def test_deterministic_given_seed(self):
        a = sequential_random_regular_graph(20, 4, rng=11)
        b = sequential_random_regular_graph(20, 4, rng=11)
        assert set(a.edges) == set(b.edges)

    def test_different_seeds_give_different_graphs(self):
        a = sequential_random_regular_graph(30, 5, rng=1)
        b = sequential_random_regular_graph(30, 5, rng=2)
        assert set(a.edges) != set(b.edges)


class TestPairingModel:
    def test_regularity(self):
        graph = pairing_model_regular_graph(24, 5, rng=1)
        assert is_regular(graph, 5)

    def test_simple(self):
        graph = pairing_model_regular_graph(24, 5, rng=2)
        assert all(u != v for u, v in graph.edges)

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            pairing_model_regular_graph(7, 3)


class TestDispatcher:
    @pytest.mark.parametrize("method", ["sequential", "pairing", "networkx"])
    def test_all_methods_regular(self, method):
        graph = random_regular_graph(16, 4, rng=9, method=method)
        assert is_regular(graph, 4)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            random_regular_graph(10, 3, method="magic")


class TestDegreeBudget:
    def test_budgets_respected_exactly_when_even(self):
        budgets = {i: 4 for i in range(20)}
        graph = random_graph_with_degree_budget(budgets, rng=1)
        assert all(graph.degree(node) == 4 for node in budgets)

    def test_heterogeneous_budgets(self):
        budgets = {i: (5 if i < 10 else 3) for i in range(20)}
        graph = random_graph_with_degree_budget(budgets, rng=2)
        for node, budget in budgets.items():
            assert graph.degree(node) <= budget
        # At most one node-port can remain unmatched overall.
        unused = sum(budget - graph.degree(node) for node, budget in budgets.items())
        assert unused <= 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            random_graph_with_degree_budget({0: -1, 1: 1})

    def test_unrealizable_budget_rejected(self):
        with pytest.raises(ValueError):
            random_graph_with_degree_budget({0: 3, 1: 3, 2: 3})  # 3 nodes, degree 3

    def test_zero_budgets(self):
        graph = random_graph_with_degree_budget({0: 0, 1: 0}, rng=3)
        assert graph.number_of_edges() == 0


class TestHelpers:
    def test_free_port_counts(self):
        graph = nx.path_graph(3)
        counts = free_port_counts(graph, 4)
        assert counts == {0: 3, 1: 2, 2: 3}

    def test_is_regular_empty(self):
        assert is_regular(nx.Graph())

    def test_is_regular_wrong_degree(self):
        assert not is_regular(nx.cycle_graph(5), 3)
        assert is_regular(nx.cycle_graph(5), 2)
