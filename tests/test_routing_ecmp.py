"""Tests for ECMP routing."""

import networkx as nx
import pytest

from repro.routing.ecmp import all_shortest_paths, ecmp_paths, ecmp_route_flows


class TestAllShortestPaths:
    def test_grid_has_multiple_shortest_paths(self):
        graph = nx.grid_2d_graph(3, 3)
        paths = all_shortest_paths(graph, (0, 0), (1, 1))
        assert len(paths) == 2
        assert all(len(p) == 3 for p in paths)

    def test_no_path(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        assert all_shortest_paths(graph, 0, 1) == []

    def test_deterministic_order(self):
        graph = nx.grid_2d_graph(3, 3)
        assert all_shortest_paths(graph, (0, 0), (2, 2)) == all_shortest_paths(
            graph, (0, 0), (2, 2)
        )


class TestEcmpPaths:
    def test_width_limits_path_count(self):
        graph = nx.grid_2d_graph(4, 4)
        wide = ecmp_paths(graph, (0, 0), (3, 3), width=64)
        narrow = ecmp_paths(graph, (0, 0), (3, 3), width=2)
        assert len(narrow) == 2
        assert len(wide) > len(narrow)

    def test_all_paths_are_shortest(self):
        graph = nx.grid_2d_graph(3, 4)
        paths = ecmp_paths(graph, (0, 0), (2, 3), width=8)
        shortest = nx.shortest_path_length(graph, (0, 0), (2, 3))
        assert all(len(p) - 1 == shortest for p in paths)

    def test_invalid_width(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            ecmp_paths(graph, 0, 2, width=0)


class TestEcmpRouteFlows:
    def test_each_flow_gets_a_path_from_its_pair(self):
        graph = nx.grid_2d_graph(3, 3)
        pair = ((0, 0), (2, 2))
        table = {pair: ecmp_paths(graph, *pair, width=8)}
        flows = [pair] * 20
        chosen = ecmp_route_flows(table, flows, rng=1)
        assert len(chosen) == 20
        assert all(path in table[pair] for path in chosen)

    def test_missing_pair_raises(self):
        with pytest.raises(ValueError):
            ecmp_route_flows({}, [(0, 1)], rng=1)

    def test_hashing_spreads_flows(self):
        graph = nx.grid_2d_graph(4, 4)
        pair = ((0, 0), (3, 3))
        table = {pair: ecmp_paths(graph, *pair, width=8)}
        chosen = ecmp_route_flows(table, [pair] * 200, rng=2)
        assert len(set(chosen)) > 1
