"""Tests for Yen's k-shortest-paths implementation."""

import networkx as nx
import pytest

from repro.routing.ksp import all_pairs_k_shortest_paths, k_shortest_paths


class TestKShortestPaths:
    def test_single_shortest_path(self):
        graph = nx.path_graph(5)
        paths = k_shortest_paths(graph, 0, 4, 3)
        assert paths == [(0, 1, 2, 3, 4)]

    def test_cycle_has_two_paths(self):
        graph = nx.cycle_graph(6)
        paths = k_shortest_paths(graph, 0, 3, 5)
        assert len(paths) == 2
        assert len(paths[0]) <= len(paths[1])

    def test_paths_are_loopless_and_valid(self):
        graph = nx.random_regular_graph(4, 20, seed=1)
        paths = k_shortest_paths(graph, 0, 10, 8)
        for path in paths:
            assert path[0] == 0 and path[-1] == 10
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert graph.has_edge(u, v)

    def test_non_decreasing_lengths(self):
        graph = nx.random_regular_graph(4, 20, seed=2)
        paths = k_shortest_paths(graph, 1, 15, 8)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_distinct_paths(self):
        graph = nx.random_regular_graph(5, 24, seed=3)
        paths = k_shortest_paths(graph, 0, 12, 8)
        assert len(set(paths)) == len(paths)

    def test_matches_networkx_shortest_simple_paths(self):
        graph = nx.random_regular_graph(3, 14, seed=4)
        ours = k_shortest_paths(graph, 0, 7, 5)
        reference = []
        for path in nx.shortest_simple_paths(graph, 0, 7):
            reference.append(tuple(path))
            if len(reference) == 5:
                break
        assert [len(p) for p in ours] == [len(p) for p in reference]

    def test_source_equals_target(self):
        graph = nx.path_graph(3)
        assert k_shortest_paths(graph, 1, 1, 4) == [(1,)]

    def test_disconnected_returns_empty(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        assert k_shortest_paths(graph, 0, 1, 3) == []

    def test_missing_node_raises(self):
        graph = nx.path_graph(3)
        with pytest.raises(nx.NodeNotFound):
            k_shortest_paths(graph, 0, 99, 2)

    def test_invalid_k(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            k_shortest_paths(graph, 0, 2, 0)


class TestAllPairs:
    def test_keys_and_counts(self):
        graph = nx.cycle_graph(8)
        pairs = [(0, 4), (1, 5)]
        table = all_pairs_k_shortest_paths(graph, pairs, 2)
        assert set(table) == set(pairs)
        assert all(len(paths) == 2 for paths in table.values())
