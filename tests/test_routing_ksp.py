"""Tests for Yen's k-shortest-paths implementation."""

from itertools import islice

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.regular import sequential_random_regular_graph
from repro.routing.ksp import all_pairs_k_shortest_paths, k_shortest_paths


class TestKShortestPaths:
    def test_single_shortest_path(self):
        graph = nx.path_graph(5)
        paths = k_shortest_paths(graph, 0, 4, 3)
        assert paths == [(0, 1, 2, 3, 4)]

    def test_cycle_has_two_paths(self):
        graph = nx.cycle_graph(6)
        paths = k_shortest_paths(graph, 0, 3, 5)
        assert len(paths) == 2
        assert len(paths[0]) <= len(paths[1])

    def test_paths_are_loopless_and_valid(self):
        graph = nx.random_regular_graph(4, 20, seed=1)
        paths = k_shortest_paths(graph, 0, 10, 8)
        for path in paths:
            assert path[0] == 0 and path[-1] == 10
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert graph.has_edge(u, v)

    def test_non_decreasing_lengths(self):
        graph = nx.random_regular_graph(4, 20, seed=2)
        paths = k_shortest_paths(graph, 1, 15, 8)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_distinct_paths(self):
        graph = nx.random_regular_graph(5, 24, seed=3)
        paths = k_shortest_paths(graph, 0, 12, 8)
        assert len(set(paths)) == len(paths)

    def test_matches_networkx_shortest_simple_paths(self):
        graph = nx.random_regular_graph(3, 14, seed=4)
        ours = k_shortest_paths(graph, 0, 7, 5)
        reference = []
        for path in nx.shortest_simple_paths(graph, 0, 7):
            reference.append(tuple(path))
            if len(reference) == 5:
                break
        assert [len(p) for p in ours] == [len(p) for p in reference]

    def test_source_equals_target(self):
        graph = nx.path_graph(3)
        assert k_shortest_paths(graph, 1, 1, 4) == [(1,)]

    def test_disconnected_returns_empty(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        assert k_shortest_paths(graph, 0, 1, 3) == []

    def test_missing_node_raises(self):
        graph = nx.path_graph(3)
        with pytest.raises(nx.NodeNotFound):
            k_shortest_paths(graph, 0, 99, 2)

    def test_invalid_k(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            k_shortest_paths(graph, 0, 2, 0)


@st.composite
def ksp_cases(draw):
    """A random regular graph plus a (source, target, k) query."""
    num_nodes = draw(st.integers(min_value=6, max_value=24))
    degree = draw(st.integers(min_value=2, max_value=min(5, num_nodes - 1)))
    if (num_nodes * degree) % 2 != 0:
        degree -= 1
    seed = draw(st.integers(min_value=0, max_value=2**16))
    k = draw(st.integers(min_value=1, max_value=8))
    return num_nodes, max(2, degree), seed, k


class TestPropertyAgainstNetworkX:
    """Yen's KSP must agree with networkx.shortest_simple_paths on random
    regular graphs: loopless paths, non-decreasing lengths, k respected."""

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ksp_cases())
    def test_matches_reference_on_random_regular_graphs(self, case):
        num_nodes, degree, seed, k = case
        graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
        nodes = sorted(graph.nodes)
        source, target = nodes[0], nodes[-1]
        if not nx.has_path(graph, source, target):
            return

        ours = k_shortest_paths(graph, source, target, k)
        reference = list(islice(nx.shortest_simple_paths(graph, source, target), k))

        # k respected: never more than k paths, and exactly as many as the
        # reference enumeration finds within the first k simple paths.
        assert len(ours) <= k
        assert len(ours) == len(reference)
        # Same length profile (tie-breaking within a length may differ).
        assert [len(p) for p in ours] == [len(p) for p in reference]
        # Non-decreasing lengths.
        lengths = [len(p) for p in ours]
        assert lengths == sorted(lengths)
        # Loopless, valid, distinct paths with the right endpoints.
        assert len(set(ours)) == len(ours)
        for path in ours:
            assert path[0] == source and path[-1] == target
            assert len(set(path)) == len(path)
            assert all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ksp_cases())
    def test_exhaustive_when_k_exceeds_path_count(self, case):
        """With a huge k, the paths found must be every simple path, i.e.
        exactly what the reference enumeration yields."""
        num_nodes, degree, seed, _ = case
        graph = sequential_random_regular_graph(min(num_nodes, 10), 2, rng=seed)
        nodes = sorted(graph.nodes)
        source, target = nodes[0], nodes[-1]
        if not nx.has_path(graph, source, target):
            return
        ours = k_shortest_paths(graph, source, target, 1000)
        reference = list(nx.shortest_simple_paths(graph, source, target))
        assert sorted(ours) == sorted(tuple(p) for p in reference)


class TestAllPairs:
    def test_keys_and_counts(self):
        graph = nx.cycle_graph(8)
        pairs = [(0, 4), (1, 5)]
        table = all_pairs_k_shortest_paths(graph, pairs, 2)
        assert set(table) == set(pairs)
        assert all(len(paths) == 2 for paths in table.values())
