"""Lifecycle engine: event streams, backend parity, resume, chaos, fig08."""

import json

import pytest

from repro.engine.spec import expand
from repro.experiments import fig08_lifecycle
from repro.lifecycle import (
    EPOCH,
    EPOCH_TARGET,
    EXPAND,
    LINK_FAIL,
    LINK_REPAIR,
    SWITCH_FAIL,
    LifecycleConfig,
    LifecycleEvent,
    epoch_hash,
    generate_events,
    lifecycle_point,
    run_lifecycle,
)
from repro.topologies.jellyfish import JellyfishTopology

FAST = dict(
    duration_hours=72.0,
    link_failure_rate=0.3,
    switch_failure_rate=0.05,
    link_mttr_hours=4.0,
    switch_mttr_hours=8.0,
    epoch_interval_hours=24.0,
    epoch_engine="path",
    routing="ecmp",
    k=4,
    congestion_control="tcp1",
)


def small_plant(seed=7):
    return JellyfishTopology.build(12, 6, 4, rng=seed)


class TestEventGeneration:
    def test_deterministic_and_sorted(self):
        config = LifecycleConfig(**FAST)
        first = generate_events(config, 3)
        second = generate_events(config, 3)
        assert first == second
        assert first != generate_events(config, 4)
        keys = [event.sort_key() for event in first]
        assert keys == sorted(keys)

    def test_same_time_priority_repairs_before_failures_before_epoch(self):
        ordered = sorted(
            [
                LifecycleEvent(24.0, EPOCH, 1),
                LifecycleEvent(24.0, LINK_FAIL, 5),
                LifecycleEvent(24.0, EXPAND, 1),
                LifecycleEvent(24.0, LINK_REPAIR, 2),
                LifecycleEvent(24.0, SWITCH_FAIL, 0),
            ],
            key=LifecycleEvent.sort_key,
        )
        assert [event.kind for event in ordered] == [
            LINK_REPAIR,
            LINK_FAIL,
            SWITCH_FAIL,
            EXPAND,
            EPOCH,
        ]

    def test_max_events_keeps_sorted_prefix(self):
        config = LifecycleConfig(**FAST)
        full = generate_events(config, 1)
        truncated = generate_events(
            config := LifecycleConfig(**{**FAST, "max_events": 10}), 1
        )
        assert truncated == full[:10]

    def test_failure_streams_are_independent(self):
        links_only = {**FAST, "switch_failure_rate": 0.05}
        more_switches = {**FAST, "switch_failure_rate": 0.5}

        def link_events(kwargs):
            return [
                event
                for event in generate_events(LifecycleConfig(**kwargs), 9)
                if event.kind in (LINK_FAIL, LINK_REPAIR)
            ]

        assert link_events(links_only) == link_events(more_switches)

    def test_epochs_start_at_zero_expansions_do_not(self):
        config = LifecycleConfig(
            **{
                **FAST,
                "expansion_interval_hours": 24.0,
                "expansion_batch": 1,
                "expansion_ports": 6,
                "expansion_servers": 2,
            }
        )
        events = generate_events(config, 0)
        epochs = [event.time_h for event in events if event.kind == EPOCH]
        expands = [event.time_h for event in events if event.kind == EXPAND]
        assert epochs[0] == 0.0
        assert expands and min(expands) > 0.0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"duration_hours": 0.0},
            {"link_failure_rate": -1.0},
            {"link_mttr_hours": 0.0},
            {"epoch_interval_hours": 0.0},
            {"expansion_interval_hours": 24.0},  # expanding without a batch
            {
                "expansion_interval_hours": 24.0,
                "expansion_batch": 1,
                "expansion_ports": 4,
                "expansion_servers": 5,
            },
            {"epoch_engine": "quantum"},
            {"routing": "ospf"},
            {"congestion_control": "bbr"},
            {"traffic": "replay"},
            {"max_events": -1},
        ],
    )
    def test_bad_configs_raise(self, overrides):
        with pytest.raises(ValueError):
            LifecycleConfig(**{**FAST, **overrides})

    def test_config_hash_sensitive_to_every_field(self):
        base = LifecycleConfig(**FAST).config_hash()
        assert LifecycleConfig(**{**FAST, "traffic": "fixed"}).config_hash() != base
        assert LifecycleConfig(**{**FAST, "k": 5}).config_hash() != base
        assert LifecycleConfig(**FAST).config_hash() == base


class TestBackendParity:
    @pytest.mark.parametrize("traffic_mode", ["per-epoch", "fixed"])
    def test_incremental_matches_reference(self, traffic_mode):
        config = LifecycleConfig(**{**FAST, "traffic": traffic_mode})
        incremental = run_lifecycle(small_plant(), config, seed=11)
        reference = run_lifecycle(
            small_plant(), config, seed=11, backend="reference"
        )
        assert incremental.event_log == reference.event_log
        assert incremental.epochs == reference.epochs

    def test_parity_through_expansion(self):
        config = LifecycleConfig(
            **{
                **FAST,
                "expansion_interval_hours": 24.0,
                "expansion_batch": 2,
                "expansion_ports": 6,
                "expansion_servers": 2,
            }
        )
        incremental = run_lifecycle(small_plant(), config, seed=5)
        reference = run_lifecycle(
            small_plant(), config, seed=5, backend="reference"
        )
        assert incremental.epochs == reference.epochs
        # Expansion actually grew the plant over the run.
        switches = [record["switches"] for record in incremental.event_log]
        assert max(switches) > small_plant().num_switches

    @pytest.mark.parametrize("backend", ["incremental", "reference"])
    def test_losing_every_switch_degrades_to_zero(self, backend):
        plant = small_plant()
        config = LifecycleConfig(**FAST)
        events = [
            LifecycleEvent(float(i), SWITCH_FAIL, i)
            for i in range(plant.num_switches)
        ]
        events.append(LifecycleEvent(float(plant.num_switches), EPOCH, 0))
        result = run_lifecycle(
            plant, config, seed=0, backend=backend, events=events
        )
        assert result.events_applied == plant.num_switches + 1
        final = result.epochs[-1]
        assert final["availability"] == 0.0
        assert final["throughput"] == 0.0
        assert final["failed_switches"] == plant.num_switches


class TestResumeAndChaos:
    def test_journaled_epochs_are_not_reevaluated(self):
        config = LifecycleConfig(**FAST)
        baseline = run_lifecycle(small_plant(), config, seed=2)
        completed = {
            epoch_hash(config, "jellyfish", 2, record["epoch"]): record
            for record in baseline.epochs[:2]
        }
        outcomes = []
        resumed = run_lifecycle(
            small_plant(),
            config,
            seed=2,
            family="jellyfish",
            completed=completed,
            observer=lambda done, total, outcome: outcomes.append(outcome),
        )
        assert resumed.epochs == baseline.epochs
        assert [outcome.status for outcome in outcomes[:2]] == [
            "journaled",
            "journaled",
        ]
        assert all(outcome.cached for outcome in outcomes[:2])
        assert all(outcome.status == "ok" for outcome in outcomes[2:])

    def test_transient_chaos_error_is_retried(self, monkeypatch):
        config = LifecycleConfig(**FAST)
        baseline = run_lifecycle(small_plant(), config, seed=2)
        plan = {
            "seed": 0,
            "faults": [
                {
                    "kind": "error",
                    "rate": 1.0,
                    "attempts": [1],
                    "indices": [1],
                    "target": EPOCH_TARGET,
                }
            ],
        }
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan))
        outcomes = []
        result = run_lifecycle(
            small_plant(),
            config,
            seed=2,
            observer=lambda done, total, outcome: outcomes.append(outcome),
        )
        assert result.epochs == baseline.epochs
        assert result.failed_epochs == 0
        assert outcomes[1].attempts == 2

    def test_exhausted_retries_mark_epoch_failed(self, monkeypatch):
        config = LifecycleConfig(**FAST)
        plan = {
            "seed": 0,
            "faults": [
                {
                    "kind": "error",
                    "rate": 1.0,
                    "indices": [1],
                    "target": EPOCH_TARGET,
                }
            ],
        }
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan))
        outcomes = []
        result = run_lifecycle(
            small_plant(),
            config,
            seed=2,
            max_attempts=2,
            observer=lambda done, total, outcome: outcomes.append(outcome),
        )
        assert result.failed_epochs == 1
        assert outcomes[1].status == "failed"
        assert outcomes[1].attempts == 2
        assert outcomes[1].failure is not None
        # The failed epoch is simply absent from the timeline.
        assert [record["epoch"] for record in result.epochs] == [0, 2]


class TestLifecyclePoint:
    def test_point_is_json_serializable(self):
        value = lifecycle_point(
            family="jellyfish",
            ports=6,
            num_switches=12,
            num_servers=24,
            seed=1,
            **FAST,
        )
        json.dumps(value)
        assert value["family"] == "jellyfish"
        assert value["plant_servers"] == 24
        assert len(value["epochs"]) == 3


class TestFig08Lifecycle:
    def test_build_specs_shares_one_seed_across_families(self):
        specs = fig08_lifecycle.build_specs("small", seed=4)
        assert len(specs) == 1
        points = expand(specs)
        assert sorted(point.params["family"] for point in points) == [
            "fattree",
            "jellyfish",
        ]
        assert {point.seed for point in points} == {4}

    def test_run_is_deterministic(self):
        first = fig08_lifecycle.run("small", seed=0)
        second = fig08_lifecycle.run("small", seed=0)
        assert first.rows == second.rows
        assert first.columns[0] == "time_h"
        for row in first.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 1.0

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            fig08_lifecycle.build_specs("galactic", seed=0)
