"""Tests for repro.utils.rng."""

import random

import pytest

from repro.utils.rng import ensure_rng, spawn_seeds


class TestEnsureRng:
    def test_none_returns_random_instance(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_random_instance_passes_through(self):
        rng = random.Random(3)
        assert ensure_rng(rng) is rng

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_deterministic_given_parent_seed(self):
        assert spawn_seeds(11, 4) == spawn_seeds(11, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []
