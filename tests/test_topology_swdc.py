"""Tests for Small-World Datacenter topologies."""

import pytest

from repro.topologies.base import TopologyError
from repro.topologies.swdc import HEX_TORUS_3D, RING, TORUS_2D, SmallWorldTopology


class TestRing:
    def test_degree_filled_to_target(self):
        topo = SmallWorldTopology.build(40, RING, degree=6, rng=1)
        degrees = [topo.graph.degree(node) for node in topo.graph.nodes]
        assert max(degrees) == 6
        # At most a couple of nodes may fall one short when the random
        # completion gets stuck, exactly as in Jellyfish construction.
        assert sum(1 for d in degrees if d < 6) <= 2

    def test_contains_ring_lattice_links(self):
        topo = SmallWorldTopology.build(30, RING, degree=6, rng=2)
        for node in range(30):
            assert topo.graph.has_edge(node, (node + 1) % 30)

    def test_connected(self):
        topo = SmallWorldTopology.build(50, RING, degree=6, rng=3)
        assert topo.is_connected()

    def test_one_server_per_switch_by_default(self):
        topo = SmallWorldTopology.build(30, RING, degree=6, rng=4)
        assert topo.num_servers == 30


class TestTorus2D:
    def test_requires_square(self):
        with pytest.raises(TopologyError):
            SmallWorldTopology.build(30, TORUS_2D, degree=6)

    def test_lattice_degree_four_plus_shortcuts(self):
        topo = SmallWorldTopology.build(36, TORUS_2D, degree=6, rng=5)
        assert max(dict(topo.graph.degree()).values()) == 6
        assert topo.is_connected()


class TestHexTorus3D:
    def test_requires_two_s_squared(self):
        with pytest.raises(TopologyError):
            SmallWorldTopology.build(30, HEX_TORUS_3D, degree=6)

    def test_valid_size(self):
        topo = SmallWorldTopology.build(2 * 5 * 5, HEX_TORUS_3D, degree=6, rng=6)
        assert topo.num_switches == 50
        assert topo.is_connected()


class TestValidationAndHelpers:
    def test_unknown_variant(self):
        with pytest.raises(TopologyError):
            SmallWorldTopology.build(20, "moebius", degree=6)

    def test_degree_below_lattice_rejected(self):
        with pytest.raises(TopologyError):
            SmallWorldTopology.build(36, TORUS_2D, degree=3)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            SmallWorldTopology.build(3, RING, degree=6)

    def test_set_servers_per_switch(self):
        topo = SmallWorldTopology.build(30, RING, degree=6, rng=7)
        topo.set_servers_per_switch(2)
        assert topo.num_servers == 60
        topo.validate()

    def test_set_servers_negative_rejected(self):
        topo = SmallWorldTopology.build(30, RING, degree=6, rng=8)
        with pytest.raises(TopologyError):
            topo.set_servers_per_switch(-1)
