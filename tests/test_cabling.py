"""Tests for physical layout, cabling and the localized (two-layer) Jellyfish."""

import pytest

from repro.cabling.containers import (
    build_localized_jellyfish,
    container_of,
    fattree_local_link_fraction,
    local_link_fraction,
)
from repro.cabling.layout import FloorPlan
from repro.expansion.cost import CostModel


class TestFloorPlan:
    def test_rack_positions_on_grid(self):
        plan = FloorPlan(num_racks=9, rack_pitch_m=2.0)
        assert plan.rack_position(0) == (0.0, 0.0)
        assert plan.rack_position(4) == (2.0, 2.0)

    def test_rack_index_out_of_range(self):
        plan = FloorPlan(num_racks=4)
        with pytest.raises(ValueError):
            plan.rack_position(4)

    def test_cluster_in_the_middle(self):
        plan = FloorPlan(num_racks=9, rack_pitch_m=2.0)
        assert plan.cluster_position() == (2.0, 2.0)

    def test_rack_to_cluster_length_is_positive(self):
        plan = FloorPlan(num_racks=16)
        assert all(plan.rack_to_cluster_length(i) > 0 for i in range(16))


class TestCablingReport:
    def test_counts(self, small_jellyfish):
        plan = FloorPlan(num_racks=small_jellyfish.num_switches)
        report = plan.report(small_jellyfish)
        assert report.switch_to_switch_cables == small_jellyfish.num_links
        assert report.server_to_switch_cables == small_jellyfish.num_servers
        assert report.total_cables == small_jellyfish.num_links + small_jellyfish.num_servers
        assert len(report.cable_lengths_m) == report.total_cables

    def test_costs_positive(self, small_jellyfish):
        plan = FloorPlan(num_racks=small_jellyfish.num_switches)
        report = plan.report(small_jellyfish)
        assert report.total_cost > 0
        assert report.total_length_m > 0
        assert report.mean_length_m() > 0

    def test_electrical_versus_optical_split(self, small_jellyfish):
        plan = FloorPlan(
            num_racks=small_jellyfish.num_switches,
            rack_pitch_m=30.0,  # force long server runs
            cost_model=CostModel(electrical_cable_limit_m=10.0),
        )
        report = plan.report(small_jellyfish)
        assert report.num_optical > 0
        assert report.num_optical + report.num_electrical == report.total_cables

    def test_jellyfish_needs_fewer_cables_than_fattree(self, medium_fattree):
        """Section 6.2: same servers, 15-20% fewer cables for Jellyfish."""
        from repro.topologies.jellyfish import JellyfishTopology

        jellyfish = JellyfishTopology.build(30, 6, 4, rng=1, servers_per_switch=2)
        assert jellyfish.num_servers > medium_fattree.num_servers
        plan = FloorPlan(num_racks=45)
        comparison = plan.compare(jellyfish, medium_fattree)
        assert comparison["cable_count_ratio"] < 1.0


class TestLocalizedJellyfish:
    def test_structure(self):
        topo = build_localized_jellyfish(
            num_containers=3, switches_per_container=8, ports_per_switch=10,
            network_degree=6, servers_per_switch=4, local_fraction=0.5, rng=1,
        )
        assert topo.num_switches == 24
        assert topo.num_servers == 96
        topo.validate()

    def test_local_fraction_tracks_request(self):
        low = build_localized_jellyfish(3, 10, 10, 6, 4, local_fraction=0.0, rng=2)
        high = build_localized_jellyfish(3, 10, 10, 6, 4, local_fraction=0.9, rng=2)
        assert local_link_fraction(high) > local_link_fraction(low)

    def test_fully_local_disconnects_containers(self):
        topo = build_localized_jellyfish(2, 8, 10, 4, 4, local_fraction=1.0, rng=3)
        assert local_link_fraction(topo) == pytest.approx(1.0)
        assert not topo.is_connected()

    def test_container_of(self):
        topo = build_localized_jellyfish(2, 6, 10, 4, 4, local_fraction=0.5, rng=4)
        assert {container_of(node) for node in topo.graph.nodes} == {0, 1}

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            build_localized_jellyfish(1, 1, 10, 4, 4, local_fraction=0.5)
        with pytest.raises(Exception):
            build_localized_jellyfish(2, 8, 4, 4, 4, local_fraction=0.5)

    def test_fattree_local_fraction_formula(self):
        assert fattree_local_link_fraction(14) == pytest.approx(0.5 * (1 + 1 / 14))
        with pytest.raises(ValueError):
            fattree_local_link_fraction(0)
