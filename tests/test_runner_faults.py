"""Fault-tolerance tests: supervised execution under injected failures.

Every recovery path of the sweep runner is exercised against the
deterministic chaos harness (:mod:`repro.testing.chaos`): transient
exceptions retried with backoff, worker crashes detected through process
sentinels, hangs preempted by wall-clock timeouts, poison points
quarantined without aborting healthy work, torn cache writes caught by the
checksum pass, and resume journals skipping completed points.  Fault
schedules are pure functions of the plan seed and point identity, so each
test is reproducible regardless of worker count or scheduling.
"""

import json

import pytest

from repro.engine.cache import ResultCache
from repro.engine.runner import (
    FaultStats,
    PointFailure,
    SweepFailure,
    SweepRunner,
    backoff_delay,
)
from repro.engine.spec import ScenarioSpec, expand
from repro.testing.chaos import ChaosError, FaultPlan, FaultRule, active_plan

ECHO = "repro.testing.targets:echo_point"

#: Fast retry schedule so fault tests don't sleep their way to minutes.
FAST = {"backoff_base_s": 0.01, "backoff_cap_s": 0.05}


def _points(xs=(1, 2, 3, 4)):
    return expand(
        [ScenarioSpec.grid(ECHO, seed=0, seed_strategy="derived", x=list(xs))]
    )


def _set_plan(monkeypatch, seed=0, faults=()):
    monkeypatch.setenv(
        "REPRO_FAULTS", json.dumps({"seed": seed, "faults": list(faults)})
    )


class TestFaultPlan:
    def test_parse_inline_and_file(self, tmp_path):
        payload = {"seed": 7, "faults": [{"kind": "error", "indices": [1]}]}
        inline = FaultPlan.parse(json.dumps(payload))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload))
        from_file = FaultPlan.parse(f"@{path}")
        assert inline == from_file
        assert inline.seed == 7
        assert inline.rules[0].kind == "error"

    def test_unknown_rule_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule keys"):
            FaultRule.from_dict({"kind": "error", "bogus": 1})

    def test_bad_kind_and_rate_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultRule(kind="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind="error", rate=1.5)

    def test_active_plan_tracks_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active_plan() is None
        _set_plan(monkeypatch, faults=[{"kind": "error"}])
        plan = active_plan()
        assert plan is not None and plan.rules[0].kind == "error"
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_plan() is None

    def test_error_rule_raises_chaos_error(self):
        plan = FaultPlan(rules=(FaultRule(kind="error", hash_prefix="ab"),))
        with pytest.raises(ChaosError):
            plan.on_execute(0, "abcdef", ECHO, 1)
        plan.on_execute(0, "zzz", ECHO, 1)  # non-matching: no-op

    def test_probabilistic_rules_are_seed_deterministic(self):
        rule = FaultRule(kind="error", rate=0.5)
        hits = [rule.matches(3, 0, f"hash{i}", ECHO, 1) for i in range(64)]
        again = [rule.matches(3, 0, f"hash{i}", ECHO, 1) for i in range(64)]
        assert hits == again
        assert 8 < sum(hits) < 56  # actually probabilistic, not constant


class TestBackoff:
    def test_deterministic_and_growing(self):
        delays = [backoff_delay("abc", a, 0.25, 60.0) for a in (1, 2, 3, 4)]
        assert delays == [backoff_delay("abc", a, 0.25, 60.0) for a in (1, 2, 3, 4)]
        assert delays == sorted(delays)
        # Jitter stays within [1.0, 1.5) of the exponential schedule.
        for attempt, delay in zip((1, 2, 3, 4), delays):
            base = 0.25 * 2 ** (attempt - 1)
            assert base <= delay < base * 1.5

    def test_cap(self):
        assert backoff_delay("abc", 30, 0.25, 2.0) == 2.0

    def test_jitter_decorrelates_points(self):
        assert backoff_delay("abc", 1, 0.25, 60.0) != backoff_delay(
            "xyz", 1, 0.25, 60.0
        )


class TestSerialRecovery:
    def test_transient_error_retried_to_success(self, monkeypatch):
        _set_plan(monkeypatch, faults=[{"kind": "error", "indices": [1], "attempts": [1]}])
        runner = SweepRunner(**FAST)
        outcomes = runner.run(_points())
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert outcomes[1].attempts == 2
        assert runner.fault_stats.errors == 1
        assert runner.fault_stats.retries == 1
        assert runner.fault_stats.quarantined == 0

    def test_poison_point_quarantined_and_raises(self, monkeypatch):
        _set_plan(monkeypatch, faults=[{"kind": "error", "indices": [2]}])
        runner = SweepRunner(max_attempts=2, **FAST)
        with pytest.raises(SweepFailure) as excinfo:
            runner.run(_points())
        outcomes = excinfo.value.outcomes
        # The sweep completed: healthy points all have values.
        assert [o.status for o in outcomes] == ["ok", "ok", "failed", "ok"]
        assert outcomes[2].point.scenario_hash[:12] in str(excinfo.value)
        assert excinfo.value.failures == [outcomes[2]]
        failure = outcomes[2].failure
        assert isinstance(failure, PointFailure)
        assert failure.kind == "error"
        assert failure.history == ["error", "error"]
        assert "ChaosError" in failure.message
        assert runner.fault_stats.quarantined == 1

    def test_raise_on_failure_false_returns_mixed_outcomes(self, monkeypatch):
        _set_plan(monkeypatch, faults=[{"kind": "error", "indices": [0]}])
        runner = SweepRunner(max_attempts=1, raise_on_failure=False, **FAST)
        outcomes = runner.run(_points())
        assert outcomes[0].status == "failed"
        assert outcomes[0].value is None
        assert [o.status for o in outcomes[1:]] == ["ok"] * 3
        assert runner.fault_stats.retries == 0  # max_attempts=1: no retry

    def test_failed_point_not_cached(self, monkeypatch, tmp_path):
        _set_plan(monkeypatch, faults=[{"kind": "error", "indices": [0]}])
        cache = ResultCache(tmp_path)
        runner = SweepRunner(
            cache=cache, max_attempts=1, raise_on_failure=False, **FAST
        )
        outcomes = runner.run(_points())
        assert outcomes[0].status == "failed"
        assert not cache.path_for(outcomes[0].point.scenario_hash).exists()
        assert len(cache) == 3  # only the healthy points were stored


class TestSupervisedRecovery:
    def test_crash_detected_and_retried(self, monkeypatch):
        _set_plan(
            monkeypatch,
            faults=[{"kind": "crash", "indices": [0], "attempts": [1], "exit_code": 21}],
        )
        runner = SweepRunner(workers=2, timeout_s=60, **FAST)
        outcomes = runner.run(_points())
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert outcomes[0].attempts == 2
        assert runner.fault_stats.crashes == 1
        assert runner.fault_stats.retries == 1

    def test_poison_crash_quarantined_with_exitcode(self, monkeypatch):
        _set_plan(
            monkeypatch,
            faults=[{"kind": "crash", "indices": [3], "exit_code": 21}],
        )
        runner = SweepRunner(
            workers=2, timeout_s=60, max_attempts=2, raise_on_failure=False, **FAST
        )
        outcomes = runner.run(_points())
        assert [o.status for o in outcomes] == ["ok", "ok", "ok", "failed"]
        failure = outcomes[3].failure
        assert failure.kind == "crash"
        assert failure.exitcode == 21
        assert failure.history == ["crash", "crash"]
        assert runner.fault_stats.crashes == 2
        assert runner.fault_stats.quarantined == 1

    def test_hang_preempted_by_timeout(self, monkeypatch):
        _set_plan(
            monkeypatch,
            faults=[{"kind": "hang", "indices": [1], "attempts": [1], "hang_s": 60}],
        )
        runner = SweepRunner(workers=2, timeout_s=0.5, **FAST)
        outcomes = runner.run(_points())
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert outcomes[1].attempts == 2
        assert runner.fault_stats.timeouts == 1

    def test_poison_hang_quarantined_as_timeout(self, monkeypatch):
        # degrade=False: with the ladder on, a timeout would escalate through
        # every rung before quarantining (covered in test_resource_governor);
        # this test pins the classic retry-then-quarantine path.
        _set_plan(
            monkeypatch, faults=[{"kind": "hang", "indices": [0], "hang_s": 60}]
        )
        runner = SweepRunner(
            workers=1, timeout_s=0.3, max_attempts=2, raise_on_failure=False,
            degrade=False, **FAST
        )
        outcomes = runner.run(_points((1, 2)))
        assert outcomes[0].status == "failed"
        assert outcomes[0].failure.kind == "timeout"
        assert "0.3" in outcomes[0].failure.message
        assert outcomes[1].status == "ok"  # healthy point still ran
        assert runner.fault_stats.timeouts == 2

    def test_transient_error_in_worker(self, monkeypatch):
        _set_plan(
            monkeypatch,
            faults=[{"kind": "error", "indices": [2], "attempts": [1]}],
        )
        runner = SweepRunner(workers=2, timeout_s=60, **FAST)
        outcomes = runner.run(_points())
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert runner.fault_stats.errors == 1

    def test_timeout_alone_forces_supervision(self, monkeypatch):
        # workers=0 but a timeout: must still preempt the hang, which the
        # in-process serial path cannot do.
        _set_plan(
            monkeypatch,
            faults=[{"kind": "hang", "indices": [0], "attempts": [1], "hang_s": 60}],
        )
        runner = SweepRunner(workers=0, timeout_s=0.4, **FAST)
        outcomes = runner.run(_points((1, 2)))
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert runner.fault_stats.timeouts == 1

    def test_identical_plans_give_identical_histories(self, monkeypatch):
        faults = [
            {"kind": "error", "rate": 0.5, "attempts": [1]},
            {"kind": "crash", "indices": [1], "attempts": [1]},
        ]
        histories = []
        for _ in range(2):
            _set_plan(monkeypatch, seed=11, faults=faults)
            runner = SweepRunner(
                workers=2, timeout_s=60, raise_on_failure=False, **FAST
            )
            outcomes = runner.run(_points((1, 2, 3, 4, 5, 6)))
            histories.append(
                [
                    (o.status, o.attempts, o.failure.history if o.failure else None)
                    for o in outcomes
                ]
            )
        assert histories[0] == histories[1]

    def test_fault_stats_reset_between_runs(self, monkeypatch):
        _set_plan(
            monkeypatch, faults=[{"kind": "error", "indices": [0], "attempts": [1]}]
        )
        runner = SweepRunner(**FAST)
        runner.run(_points((1, 2)))
        assert runner.fault_stats.errors == 1
        monkeypatch.delenv("REPRO_FAULTS")
        runner.run(_points((3, 4)))
        assert runner.fault_stats == FaultStats()


class TestTornWrites:
    def test_torn_write_then_checksum_quarantine(self, monkeypatch, tmp_path):
        points = _points()
        victim = points[2].scenario_hash
        _set_plan(
            monkeypatch,
            faults=[{"kind": "torn_write", "hash_prefix": victim[:12]}],
        )
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, **FAST).run(points)
        assert cache.stats.writes == 4  # the torn write still counts
        monkeypatch.delenv("REPRO_FAULTS")

        fresh = ResultCache(tmp_path)
        runner = SweepRunner(cache=fresh, **FAST)
        outcomes = runner.run(points)
        # The torn entry read as corruption (quarantined, re-executed), the
        # other three as ordinary hits.
        assert fresh.stats.corruptions == 1
        assert fresh.stats.hits == 3
        assert [o.cached for o in outcomes] == [True, True, False, True]
        quarantined = list(fresh.quarantine_dir().glob("*.json"))
        assert [p.name for p in quarantined] == [f"{victim}.json"]
        # Re-execution healed the cache: a third read is all hits.
        healed = ResultCache(tmp_path)
        assert all(o.cached for o in SweepRunner(cache=healed).run(points))
        assert healed.stats.corruptions == 0

    def test_torn_write_by_target(self, monkeypatch, tmp_path):
        _set_plan(monkeypatch, faults=[{"kind": "torn_write", "target": ECHO}])
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, **FAST).run(_points((1, 2)))
        monkeypatch.delenv("REPRO_FAULTS")
        fresh = ResultCache(tmp_path)
        SweepRunner(cache=fresh, **FAST).run(_points((1, 2)))
        assert fresh.stats.corruptions == 2


class TestResumeJournal:
    def test_journaled_points_skip_execution_and_cache(self, tmp_path):
        points = _points()
        completed = {points[0].scenario_hash: {"x": 101}}
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache, completed=completed, **FAST)
        outcomes = runner.run(points)
        assert outcomes[0].status == "journaled"
        assert outcomes[0].cached
        assert outcomes[0].value == {"x": 101}  # journal value wins
        assert runner.fault_stats.journal_skips == 1
        # The journaled point never touched the cache (no lookup, no store).
        assert not cache.path_for(points[0].scenario_hash).exists()
        assert cache.stats.hits == 0

    def test_journal_makes_poison_run_resumable(self, monkeypatch):
        points = _points()
        _set_plan(monkeypatch, faults=[{"kind": "error", "indices": [3]}])
        first = SweepRunner(max_attempts=1, raise_on_failure=False, **FAST)
        outcomes = first.run(points)
        completed = {
            o.point.scenario_hash: o.value for o in outcomes if o.status == "ok"
        }
        monkeypatch.delenv("REPRO_FAULTS")
        second = SweepRunner(completed=completed, **FAST)
        resumed = second.run(points)
        assert [o.status for o in resumed] == [
            "journaled", "journaled", "journaled", "ok",
        ]
        assert second.fault_stats.journal_skips == 3
