"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flow.maxmin import FlowSpec, max_min_fair_allocation
from repro.graphs.bisection import bollobas_bisection_lower_bound, cut_size
from repro.graphs.properties import average_path_length, diameter, path_length_distribution
from repro.graphs.regular import is_regular, sequential_random_regular_graph
from repro.routing.ksp import k_shortest_paths
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.stats import jains_fairness_index, percentile

# Keep hypothesis example counts modest: individual cases build graphs.
COMMON_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def regular_graph_params(draw):
    num_nodes = draw(st.integers(min_value=6, max_value=40))
    degree = draw(st.integers(min_value=2, max_value=min(6, num_nodes - 1)))
    if (num_nodes * degree) % 2 != 0:
        degree -= 1
    return num_nodes, max(2, degree), draw(st.integers(min_value=0, max_value=2**16))


class TestRandomRegularGraphProperties:
    @COMMON_SETTINGS
    @given(regular_graph_params())
    def test_construction_is_regular_and_simple(self, params):
        num_nodes, degree, seed = params
        graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
        assert is_regular(graph, degree)
        assert all(u != v for u, v in graph.edges)
        assert graph.number_of_edges() == num_nodes * degree // 2

    @COMMON_SETTINGS
    @given(regular_graph_params())
    def test_handshake_lemma(self, params):
        num_nodes, degree, seed = params
        graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
        assert sum(d for _, d in graph.degree()) == 2 * graph.number_of_edges()

    @COMMON_SETTINGS
    @given(regular_graph_params())
    def test_diameter_at_least_log_bound(self, params):
        """Moore bound: a degree-r graph of diameter d has at most
        1 + r * ((r-1)^d - 1)/(r-2) nodes, so the diameter cannot be tiny."""
        num_nodes, degree, seed = params
        graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
        if not nx.is_connected(graph) or degree < 3:
            return
        d = diameter(graph)
        moore = 1 + degree * ((degree - 1) ** d - 1) / (degree - 2)
        assert moore >= num_nodes


class TestJellyfishProperties:
    @COMMON_SETTINGS
    @given(
        st.integers(min_value=8, max_value=30),
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_port_budget_never_violated(self, switches, degree, servers, seed):
        ports = degree + servers
        topo = JellyfishTopology.build(
            switches, ports, degree, rng=seed, servers_per_switch=servers
        )
        for node in topo.graph.nodes:
            assert topo.graph.degree(node) + topo.servers[node] <= topo.ports[node]

    @COMMON_SETTINGS
    @given(
        st.integers(min_value=10, max_value=25),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_expansion_preserves_invariants(self, switches, seed):
        topo = JellyfishTopology.build(switches, 6, 4, rng=seed)
        servers_before = topo.num_servers
        topo.add_switch("extra", 6, servers=2, rng=seed + 1)
        topo.validate()
        assert topo.num_servers == servers_before + 2
        assert topo.graph.degree("extra") <= 4

    @COMMON_SETTINGS
    @given(
        st.integers(min_value=10, max_value=30),
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_permutation_traffic_is_a_derangement(self, switches, servers, seed):
        servers = min(servers, switches * 2)
        topo = JellyfishTopology.from_equipment(switches, 6, servers, rng=seed)
        traffic = random_permutation_traffic(topo, rng=seed)
        assert len(traffic) == (servers if servers >= 2 else 0)
        assert all(d.source != d.destination for d in traffic)


class TestKShortestPathProperties:
    @COMMON_SETTINGS
    @given(regular_graph_params(), st.integers(min_value=1, max_value=6))
    def test_paths_sorted_valid_and_distinct(self, params, k):
        num_nodes, degree, seed = params
        graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
        nodes = sorted(graph.nodes)
        source, target = nodes[0], nodes[-1]
        if not nx.has_path(graph, source, target):
            return
        paths = k_shortest_paths(graph, source, target, k)
        assert 1 <= len(paths) <= k
        assert len(set(paths)) == len(paths)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        for path in paths:
            assert path[0] == source and path[-1] == target
            assert len(set(path)) == len(path)
            assert all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))
        # The first path must be a true shortest path.
        assert len(paths[0]) - 1 == nx.shortest_path_length(graph, source, target)


class TestAllocationProperties:
    @COMMON_SETTINGS
    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=2.0),
            min_size=1,
            max_size=12,
        )
    )
    def test_single_link_sharing_never_exceeds_capacity(self, demands):
        flows = [
            FlowSpec(f"f{i}", [("a", "b")], demand=demand)
            for i, demand in enumerate(demands)
        ]
        allocation = max_min_fair_allocation(flows, {("a", "b"): 1.0})
        total = sum(allocation.flow_rates.values())
        assert total <= 1.0 + 1e-6
        assert total <= sum(demands) + 1e-6
        for spec in flows:
            assert allocation.flow_rates[spec.flow_id] <= spec.demand + 1e-6
        # Work conservation: either the link is full or every demand is met.
        assert (
            total >= min(1.0, sum(demands)) - 1e-6
        )


class TestStatisticsProperties:
    @COMMON_SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50))
    def test_jain_index_bounds(self, rates):
        value = jains_fairness_index(rates)
        assert 1.0 / len(rates) - 1e-9 <= value <= 1.0 + 1e-9

    @COMMON_SETTINGS
    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9


class TestBisectionProperties:
    @COMMON_SETTINGS
    @given(regular_graph_params())
    def test_any_balanced_cut_respects_bollobas_direction(self, params):
        """Bollobás lower-bounds the *minimum* cut; any specific balanced cut
        we evaluate must be at least that bound minus the finite-size slack
        (the bound is asymptotic, so only check it is not wildly violated)."""
        num_nodes, degree, seed = params
        if num_nodes % 2 != 0 or degree < 3:
            return
        graph = sequential_random_regular_graph(num_nodes, degree, rng=seed)
        nodes = sorted(graph.nodes)
        partition = set(nodes[: num_nodes // 2])
        observed = cut_size(graph, partition)
        bound = bollobas_bisection_lower_bound(num_nodes, degree)
        assert observed >= 0.5 * bound - 2
