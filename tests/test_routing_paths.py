"""Tests for the PathSet container and builder."""

import networkx as nx
import pytest

from repro.routing.paths import PathSet, build_path_set


@pytest.fixture()
def grid():
    return nx.grid_2d_graph(4, 4)


class TestBuildPathSet:
    def test_ksp_counts(self, grid):
        pairs = [((0, 0), (3, 3)), ((0, 3), (3, 0))]
        path_set = build_path_set(grid, pairs, scheme="ksp", k=4)
        assert len(path_set) == 2
        assert all(len(path_set[p]) == 4 for p in pairs)
        assert path_set.kind == "ksp-4"

    def test_ecmp_paths_are_shortest(self, grid):
        pairs = [((0, 0), (2, 2))]
        path_set = build_path_set(grid, pairs, scheme="ecmp", k=8)
        shortest = nx.shortest_path_length(grid, (0, 0), (2, 2))
        assert all(len(p) - 1 == shortest for p in path_set[pairs[0]])

    def test_same_node_pairs_skipped(self, grid):
        path_set = build_path_set(grid, [((0, 0), (0, 0))], scheme="ksp", k=2)
        assert len(path_set) == 0

    def test_unknown_scheme(self, grid):
        with pytest.raises(ValueError):
            build_path_set(grid, [((0, 0), (1, 1))], scheme="magic")

    def test_disconnected_pair_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        with pytest.raises(ValueError):
            build_path_set(graph, [(0, 1)], scheme="ksp", k=2)

    def test_validate_against(self, grid):
        pairs = [((0, 0), (3, 3))]
        path_set = build_path_set(grid, pairs, scheme="ksp", k=4)
        path_set.validate_against(grid)

    def test_validate_detects_broken_path(self, grid):
        path_set = PathSet()
        path_set.add(((0, 0), (3, 3)), ((0, 0), (3, 3)))  # not an edge
        with pytest.raises(ValueError):
            path_set.validate_against(grid)

    def test_validate_detects_loop(self, grid):
        path_set = PathSet()
        path_set.add(((0, 0), (0, 1)), ((0, 0), (1, 0), (0, 0), (0, 1)))
        with pytest.raises(ValueError):
            path_set.validate_against(grid)


class TestPathSetStatistics:
    def test_average_path_length(self, grid):
        path_set = PathSet()
        path_set.add((0, 1), (0, "a", 1))
        path_set.add((0, 2), (0, "a", "b", 2))
        assert path_set.average_path_length() == pytest.approx(2.5)

    def test_average_of_empty_raises(self):
        with pytest.raises(ValueError):
            PathSet().average_path_length()

    def test_max_paths_per_pair(self, grid):
        path_set = build_path_set(grid, [((0, 0), (3, 3))], scheme="ksp", k=5)
        assert path_set.max_paths_per_pair() == 5
        assert PathSet().max_paths_per_pair() == 0
