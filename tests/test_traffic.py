"""Tests for traffic matrices."""

import pytest

from repro.traffic.matrices import (
    all_to_all_traffic,
    hotspot_traffic,
    random_permutation_traffic,
    stride_traffic,
)


class TestRandomPermutation:
    def test_every_server_sends_and_receives_once(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rng=1)
        sources = [d.source for d in traffic]
        destinations = [d.destination for d in traffic]
        servers = [tuple(s) for s in small_fattree.server_list()]
        assert sorted(sources) == sorted(servers)
        assert sorted(destinations) == sorted(servers)

    def test_no_fixed_points(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rng=2)
        assert all(d.source != d.destination for d in traffic)

    def test_rates(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rate=2.5, rng=3)
        assert all(d.rate == 2.5 for d in traffic)
        assert traffic.total_demand() == pytest.approx(2.5 * 16)

    def test_deterministic_with_seed(self, small_fattree):
        a = random_permutation_traffic(small_fattree, rng=5)
        b = random_permutation_traffic(small_fattree, rng=5)
        assert [(d.source, d.destination) for d in a] == [
            (d.source, d.destination) for d in b
        ]

    def test_single_server_gives_empty_matrix(self, small_jellyfish):
        topo = small_jellyfish.copy()
        for node in topo.graph.nodes:
            topo.servers[node] = 0
        topo.servers[0] = 1
        assert len(random_permutation_traffic(topo, rng=1)) == 0

    def test_invalid_rate(self, small_fattree):
        with pytest.raises(ValueError):
            random_permutation_traffic(small_fattree, rate=0)


class TestSwitchPairAggregation:
    def test_same_switch_traffic_excluded(self, small_jellyfish):
        traffic = random_permutation_traffic(small_jellyfish, rng=4)
        pairs = traffic.switch_pairs()
        assert all(src != dst for src, dst in pairs)
        # Aggregated demand never exceeds total demand.
        assert sum(pairs.values()) <= traffic.total_demand() + 1e-9

    def test_scaled(self, small_fattree):
        traffic = random_permutation_traffic(small_fattree, rng=6)
        double = traffic.scaled(2.0)
        assert double.total_demand() == pytest.approx(2 * traffic.total_demand())


class TestOtherPatterns:
    def test_all_to_all_counts(self, small_fattree):
        traffic = all_to_all_traffic(small_fattree)
        n = small_fattree.num_servers
        assert len(traffic) == n * (n - 1)
        # Each server's total send rate equals the requested rate.
        per_source = {}
        for demand in traffic:
            per_source[demand.source] = per_source.get(demand.source, 0.0) + demand.rate
        assert all(value == pytest.approx(1.0) for value in per_source.values())

    def test_stride(self, small_fattree):
        traffic = stride_traffic(small_fattree, stride=3)
        assert len(traffic) == small_fattree.num_servers
        assert all(d.source != d.destination for d in traffic)

    def test_stride_zero_rejected(self, small_fattree):
        with pytest.raises(ValueError):
            stride_traffic(small_fattree, stride=0)

    def test_hotspot(self, small_fattree):
        traffic = hotspot_traffic(small_fattree, num_hotspots=2, rng=1)
        destinations = {d.destination for d in traffic}
        assert len(destinations) <= 2

    def test_hotspot_invalid_count(self, small_fattree):
        with pytest.raises(ValueError):
            hotspot_traffic(small_fattree, num_hotspots=0)
