"""Tests for bisection bandwidth tools (repro.graphs.bisection)."""

import math

import networkx as nx
import pytest

from repro.graphs.bisection import (
    bollobas_bisection_lower_bound,
    cut_size,
    estimate_bisection_bandwidth,
    exact_bisection_bandwidth,
    jellyfish_normalized_bisection,
    normalized_bisection_bandwidth,
)


class TestBollobasBound:
    def test_formula(self):
        value = bollobas_bisection_lower_bound(100, 16)
        expected = 100 * (16 / 4 - math.sqrt(16 * math.log(2)) / 2)
        assert value == pytest.approx(expected)

    def test_clamped_at_zero_for_tiny_degree(self):
        assert bollobas_bisection_lower_bound(100, 1) == 0.0

    def test_approaches_quarter_of_links_for_large_degree(self):
        num_nodes, degree = 1000, 10_000
        bound = bollobas_bisection_lower_bound(num_nodes, degree)
        total_links = num_nodes * degree / 2
        assert bound / total_links == pytest.approx(0.5, rel=0.1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            bollobas_bisection_lower_bound(-1, 3)


class TestCutAndExact:
    def test_cut_size_path(self):
        graph = nx.path_graph(4)
        assert cut_size(graph, {0, 1}) == 1
        assert cut_size(graph, {0, 2}) == 3

    def test_exact_on_complete_graph(self):
        graph = nx.complete_graph(6)
        # Every balanced cut of K6 crosses 3*3 = 9 edges.
        assert exact_bisection_bandwidth(graph) == 9

    def test_exact_on_cycle(self):
        assert exact_bisection_bandwidth(nx.cycle_graph(8)) == 2

    def test_exact_requires_even(self):
        with pytest.raises(ValueError):
            exact_bisection_bandwidth(nx.path_graph(5))

    def test_exact_rejects_large_graphs(self):
        with pytest.raises(ValueError):
            exact_bisection_bandwidth(nx.cycle_graph(30))


class TestHeuristic:
    def test_heuristic_upper_bounds_exact(self):
        graph = nx.random_regular_graph(3, 14, seed=3)
        exact = exact_bisection_bandwidth(graph)
        estimate = estimate_bisection_bandwidth(graph, trials=8, rng=0)
        assert estimate >= exact
        # Kernighan-Lin should get close on such a small instance.
        assert estimate <= exact * 2

    def test_trivial_graph(self):
        assert estimate_bisection_bandwidth(nx.Graph(), trials=1) == 0.0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            estimate_bisection_bandwidth(nx.cycle_graph(4), trials=0)


class TestNormalization:
    def test_normalized_bisection(self):
        assert normalized_bisection_bandwidth(50, 100) == pytest.approx(1.0)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            normalized_bisection_bandwidth(50, 0)

    def test_jellyfish_normalized_monotone_in_degree(self):
        low = jellyfish_normalized_bisection(100, 24, 10)
        high = jellyfish_normalized_bisection(100, 24, 20)
        assert high > low

    def test_jellyfish_requires_servers(self):
        with pytest.raises(ValueError):
            jellyfish_normalized_bisection(100, 24, 24)
