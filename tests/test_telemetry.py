"""Tests for the instrumentation layer (repro.telemetry).

Covers the tracer's span nesting and disabled-mode no-op contract, the
JSONL event sink, run-manifest round-trips through the ``repro stats``
CLI, cache counters under the sharded multiprocessing runner, and -- the
load-bearing guarantee -- that instrumented kernels stay bit-identical to
their retained ``_reference`` implementations while tracing is active.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import telemetry
from repro.telemetry import tracer as tracer_module
from repro.telemetry.log import configure as configure_logging
from repro.telemetry.log import get_logger, verbosity_to_level
from repro.telemetry.manifest import (
    PointRecord,
    RunRecord,
    RunRecorder,
    load_manifest,
    load_manifests,
    write_manifest,
)
from repro.telemetry.report import (
    load_events,
    percentile,
    render_flame,
    render_stats,
    span_coverage,
)
from repro.telemetry.timing import best_of, timed_best_of
from repro.telemetry.tracer import (
    NULL_SPAN,
    count,
    disable,
    enable,
    get_tracer,
    is_enabled,
    trace,
)


@pytest.fixture(autouse=True)
def _pristine_tracer():
    """Every test starts and ends with tracing disabled."""
    disable()
    yield
    disable()


class TestSpans:
    def test_disabled_trace_is_shared_noop(self):
        assert not is_enabled()
        span = trace("anything", links=3)
        assert span is NULL_SPAN
        with span as inner:
            inner.add(more=1)
        count("ignored", 5)  # must not raise, must not record anything
        assert get_tracer() is None

    def test_nesting_records_parent_depth_and_self_time(self):
        tracer = enable()
        with trace("outer", a=1):
            with trace("inner"):
                pass
        events = list(tracer.events)
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner, outer = events
        assert outer["depth"] == 0 and outer["parent"] is None
        assert inner["depth"] == 1 and inner["parent"] == outer["i"]
        assert outer["counters"] == {"a": 1}
        # Self time excludes the child's duration.
        assert 0.0 <= outer["self_s"] <= outer["dur_s"]
        assert outer["dur_s"] >= inner["dur_s"]

    def test_add_accumulates_numeric_counters(self):
        tracer = enable()
        with trace("k", n=2) as span:
            span.add(n=3, label="x")
        (event,) = tracer.events
        assert event["counters"] == {"n": 5, "label": "x"}

    def test_count_credits_innermost_span(self):
        tracer = enable()
        with trace("outer"):
            with trace("inner"):
                count("spurs", 7)
                count("spurs", 2)
        inner = next(e for e in tracer.events if e["name"] == "inner")
        outer = next(e for e in tracer.events if e["name"] == "outer")
        assert inner["counters"] == {"spurs": 9}
        assert outer["counters"] == {}

    def test_count_without_span_lands_on_root(self):
        tracer = enable()
        count("orphan", 1)
        assert tracer.root_counters == {"orphan": 1}

    def test_exception_inside_span_still_pops_it(self):
        tracer = enable()
        with pytest.raises(RuntimeError):
            with trace("boom"):
                raise RuntimeError("x")
        assert tracer._stack == []
        assert [e["name"] for e in tracer.events] == ["boom"]

    def test_ring_buffer_evicts_oldest(self):
        tracer = enable(ring_size=4)
        for i in range(10):
            with trace(f"s{i}"):
                pass
        assert [e["name"] for e in tracer.events] == ["s6", "s7", "s8", "s9"]

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        enable(jsonl_path=str(path))
        with trace("a", n=1):
            with trace("b"):
                pass
        disable()  # closes the sink
        events = load_events(path)
        assert [e["name"] for e in events] == ["b", "a"]
        assert all(e["pid"] == os.getpid() for e in events)

    def test_env_var_activates_tracing_at_import(self, tmp_path):
        env = dict(os.environ, REPRO_TRACE="1")
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.telemetry as t; print(t.is_enabled())"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.stdout.strip() == "True", proc.stderr


class TestTiming:
    def test_best_of_returns_minimum(self):
        calls = []
        assert best_of(lambda: calls.append(1), 3) >= 0.0
        assert len(calls) == 3

    def test_best_of_runs_setup_outside_timed_region(self):
        order = []
        best_of(lambda: order.append("run"), 2, setup=lambda: order.append("setup"))
        assert order == ["setup", "run", "setup", "run"]

    def test_best_of_emits_span_when_tracing(self):
        tracer = enable()
        best_of(lambda: None, 2, label="probe")
        (event,) = [e for e in tracer.events if e["name"] == "bench.best_of"]
        assert event["counters"]["label"] == "probe"
        assert event["counters"]["repeats"] == 2

    def test_timed_best_of_returns_last_value(self):
        values = iter([10, 20])
        best, value = timed_best_of(lambda: next(values), 2)
        assert value == 20 and best >= 0.0

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, 0)


class TestLogging:
    def test_verbosity_mapping(self):
        import logging

        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_configure_is_idempotent(self):
        root = configure_logging(0)
        before = list(root.handlers)
        configure_logging(1)
        configure_logging(2)
        assert list(get_logger().handlers) == before

    def test_loggers_live_under_repro_hierarchy(self):
        assert get_logger("sweep.fig01").name == "repro.sweep.fig01"
        assert get_logger().name == "repro"


class TestManifest:
    def _record(self):
        record = RunRecord(run_id="1-t-abc", sweep_id="fig01", seed=3)
        record.points = [
            PointRecord("a" * 64, "t", cached=False, duration_s=0.5, worker=11),
            PointRecord("b" * 64, "t", cached=True, duration_s=0.001),
        ]
        return record

    def test_write_and_load_round_trip(self, tmp_path):
        record = self._record()
        path = write_manifest(record, runs_root=tmp_path)
        assert path.name == "run-1-t-abc.json"
        loaded = load_manifest(path)
        assert loaded == record

    def test_load_manifests_skips_foreign_files(self, tmp_path):
        write_manifest(self._record(), runs_root=tmp_path)
        (tmp_path / "run-junk.json").write_text("{not json")
        (tmp_path / "run-wrong.json").write_text(json.dumps({"version": 99}))
        records = load_manifests(tmp_path)
        assert [r.run_id for r in records] == ["1-t-abc"]

    def test_derived_metrics(self):
        record = self._record()
        assert record.executed_durations() == [0.5]
        assert record.cached_count() == 1
        assert record.max_peak_rss_kb() == 0

    def test_recorder_collects_outcomes_and_cache_stats(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.runner import SweepRunner
        from repro.engine.spec import ScenarioSpec

        spec = ScenarioSpec.grid(
            "repro.experiments.fig02a_bisection:jellyfish_curve_point",
            num_switches=720,
            ports=24,
            servers=[720, 1440],
        )
        cache = ResultCache(tmp_path / "cache")
        recorder = RunRecorder("fig02a", seed=0, command=["test"], workers=0)
        runner = SweepRunner(cache=cache, progress=recorder.observe)
        runner.run(spec.points())
        path = recorder.finalize(cache=cache, runs_root=tmp_path / "runs")
        loaded = load_manifest(path)
        assert len(loaded.points) == 2
        assert all(not p.cached for p in loaded.points)
        assert all(p.worker == os.getpid() for p in loaded.points)
        assert all(p.peak_rss_kb > 0 for p in loaded.points)
        assert loaded.cache["misses"] == 2 and loaded.cache["writes"] == 2
        assert loaded.duration_s > 0


class TestCachedPointTiming:
    def test_cached_points_report_lookup_time(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.runner import SweepRunner
        from repro.engine.spec import ScenarioSpec

        spec = ScenarioSpec.grid(
            "repro.experiments.fig02a_bisection:jellyfish_curve_point",
            num_switches=720,
            ports=24,
            servers=[720],
        )
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run(spec.points())
        (outcome,) = SweepRunner(cache=cache).run(spec.points())
        assert outcome.cached
        assert outcome.duration_s > 0.0  # actual lookup time, not a flat 0.0
        assert cache.stats.lookup_s > 0.0
        assert cache.stats.store_s > 0.0

    def test_cache_clear_counts_evictions(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.runner import SweepRunner
        from repro.engine.spec import ScenarioSpec

        spec = ScenarioSpec.grid(
            "repro.experiments.fig02a_bisection:jellyfish_curve_point",
            num_switches=720,
            ports=24,
            servers=[720],
        )
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run(spec.points())
        assert cache.clear() == 1
        assert cache.stats.evictions == 1
        assert "1 evictions" in str(cache.stats)


class TestShardedRunner:
    def test_cache_counters_and_worker_pids_with_pool(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.runner import SweepRunner
        from repro.engine.spec import ScenarioSpec

        spec = ScenarioSpec.grid(
            "repro.experiments.fig02a_bisection:jellyfish_curve_point",
            num_switches=720,
            ports=24,
            servers=[720, 1440, 2160],
        )
        cache = ResultCache(tmp_path)
        cold = SweepRunner(workers=2, cache=cache).run(spec.points())
        assert cache.stats.misses == 3 and cache.stats.writes == 3
        executed = [o for o in cold if not o.cached]
        assert executed and all(o.worker not in (0, os.getpid()) for o in executed)
        assert all(o.peak_rss_kb > 0 for o in executed)

        warm_cache = ResultCache(tmp_path)
        warm = SweepRunner(workers=2, cache=warm_cache).run(spec.points())
        assert warm_cache.stats.hits == 3 and warm_cache.stats.misses == 0
        assert all(o.cached for o in warm)
        assert [o.value for o in warm] == [o.value for o in cold]


class TestInstrumentedParity:
    """Tracing ON must not perturb kernel results (bit-identical parity)."""

    def test_maxmin_matches_reference_with_tracing_enabled(self):
        from repro.flow._reference import max_min_fair_allocation_reference
        from repro.flow.maxmin import FlowSpec, max_min_fair_allocation

        flows = [
            FlowSpec("f1", paths=[(0, 1, 2), (0, 3, 2)], demand=1.0),
            FlowSpec("f2", paths=[(2, 1, 0)], demand=0.7),
            FlowSpec("f3", paths=[(1, 2)], demand=2.0, subflow_caps=[0.4]),
        ]
        capacity = {(0, 1): 1.0, (1, 2): 0.5, (0, 3): 0.25, (3, 2): 1.0, (2, 1): 1.0, (1, 0): 1.0}
        reference = max_min_fair_allocation_reference(flows, capacity)
        tracer = enable()
        traced = max_min_fair_allocation(flows, capacity)
        assert traced.flow_rates == reference.flow_rates
        assert traced.subflow_rates == reference.subflow_rates
        assert traced.link_loads == reference.link_loads
        (event,) = [e for e in tracer.events if e["name"] == "maxmin.fill"]
        assert event["counters"]["saturation_rounds"] >= 1

    def test_aimd_matches_reference_with_tracing_enabled(self, small_jellyfish):
        from repro.simulation._reference import simulate_aimd_reference
        from repro.simulation.aimd import AimdConfig, simulate_aimd

        config = AimdConfig(rounds=60, warmup_rounds=10)
        reference = simulate_aimd_reference(small_jellyfish, config=config, rng=5)
        tracer = enable()
        traced = simulate_aimd(small_jellyfish, config=config, rng=5)
        assert traced.flow_throughputs == reference.flow_throughputs
        assert traced.average_throughput == reference.average_throughput
        assert traced.fairness == reference.fairness
        assert traced.convergence_round == reference.convergence_round
        names = {e["name"] for e in tracer.events}
        assert {"aimd.compile", "aimd.rounds"} <= names

    def test_bfs_and_yen_match_reference_with_tracing_enabled(self, small_jellyfish):
        from repro.graphs.csr import batched_hop_distances, clear_csr_cache
        from repro.routing._reference import (
            all_pairs_hop_distances_reference,
            k_shortest_paths_reference,
        )
        from repro.routing.ksp import k_shortest_paths

        from repro.graphs.csr import csr_graph

        graph = small_jellyfish.graph
        reference_dist = all_pairs_hop_distances_reference(graph)
        nodes = sorted(graph.nodes)
        source, target = nodes[0], nodes[-1]
        reference_paths = k_shortest_paths_reference(graph, source, target, 4)
        tracer = enable()
        clear_csr_cache()  # drop memoized BFS rows/KSP results: trace fresh
        traced_dist = batched_hop_distances(graph)
        order = csr_graph(graph).nodes
        for i, u in enumerate(order):
            for j, v in enumerate(order):
                assert traced_dist[i, j] == reference_dist[u][v]
        assert k_shortest_paths(graph, source, target, 4) == reference_paths
        batch = [e for e in tracer.events if e["name"] == "bfs.batch"]
        assert batch and all(e["counters"]["frontier_sweeps"] >= 1 for e in batch)


class TestReport:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        assert percentile([], 50) != percentile([], 50)  # NaN

    def test_span_coverage_and_flame(self):
        tracer = enable()
        with trace("engine.point"):
            with trace("lp.solve", method="highs"):
                pass
        events = list(tracer.events)
        record = RunRecord(run_id="1-x-a", sweep_id="fig02c")
        record.points = [
            PointRecord("c" * 64, "t", cached=False, duration_s=events[-1]["dur_s"])
        ]
        coverage = span_coverage([record], events)
        assert coverage is not None
        root_s, executed_s, fraction = coverage
        assert fraction == pytest.approx(1.0)
        flame = render_flame(events)
        assert "engine.point" in flame.splitlines()[0]
        assert "lp.solve" in flame and "method=highs" in flame

    def test_render_stats_mentions_everything(self):
        tracer = enable()
        with trace("maxmin.fill"):
            pass
        record = RunRecord(run_id="1-y-b", sweep_id="fig09")
        record.points = [
            PointRecord("d" * 64, "t", cached=False, duration_s=0.25),
            PointRecord("e" * 64, "t", cached=True, duration_s=0.001),
        ]
        text = render_stats([record], list(tracer.events), flame="maxmin.fill")
        assert "fig09" in text
        assert "maxmin.fill" in text
        assert "hit rate" in text
        assert "flame: maxmin.fill" in text


class TestStatsCli:
    def test_traced_sweep_then_stats(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        runs_dir = tmp_path / "runs"
        trace_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "run",
                    "fig01",
                    "--seed",
                    "2",
                    "--cache-dir",
                    str(cache_dir),
                    "--runs-dir",
                    str(runs_dir),
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        disable()  # the CLI enabled a global tracer; tear it down
        assert list(runs_dir.glob("run-*.json"))
        assert trace_path.is_file()
        capsys.readouterr()

        assert main(["stats", "--runs-dir", str(runs_dir), "--flame"]) == 0
        out = capsys.readouterr().out
        assert "run manifests: 1" in out
        assert "fig01" in out
        assert "engine.point" in out
        assert "span coverage" in out
        assert "flame: engine.point" in out

    def test_stats_with_no_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", "--runs-dir", str(tmp_path / "nothing")]) == 0
        assert "run manifests: none found" in capsys.readouterr().out

    def test_sweep_run_without_cache_or_runs_dir_writes_no_manifest(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main
        from repro.telemetry.manifest import RUNS_DIR_ENV

        monkeypatch.delenv(RUNS_DIR_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", "run", "fig01", "--no-cache"]) == 0
        assert not list(tmp_path.rglob("run-*.json"))


class TestJournal:
    def test_journal_round_trip(self, tmp_path):
        from repro.telemetry.manifest import journal_path, load_journal

        path = journal_path(tmp_path, "run1")
        assert path.name == "run-run1.journal.jsonl"
        lines = [
            {"hash": "a" * 64, "status": "ok", "value": {"x": 1}},
            {"hash": "b" * 64, "status": "journaled", "value": 2.5},
            {"hash": "c" * 64, "status": "failed"},  # no value: must re-run
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        completed = load_journal(path)
        assert completed == {"a" * 64: {"x": 1}, "b" * 64: 2.5}

    def test_torn_final_line_is_skipped(self, tmp_path):
        from repro.telemetry.manifest import journal_path, load_journal

        path = journal_path(tmp_path, "run2")
        good = json.dumps({"hash": "a" * 64, "status": "ok", "value": 1})
        path.write_text(good + "\n" + '{"hash": "bbbb", "stat')  # torn append
        assert load_journal(path) == {"a" * 64: 1}

    def test_missing_journal_is_empty(self, tmp_path):
        from repro.telemetry.manifest import journal_path, load_journal

        assert load_journal(journal_path(tmp_path, "nope")) == {}


class TestRecorderRobustness:
    def _run(self, tmp_path, **runner_kwargs):
        from repro.engine.runner import SweepRunner
        from repro.engine.spec import ScenarioSpec, expand

        points = expand(
            [
                ScenarioSpec.grid(
                    "repro.testing.targets:echo_point",
                    seed=0,
                    seed_strategy="derived",
                    x=[1, 2, 3],
                )
            ]
        )
        recorder = RunRecorder(
            "echo", seed=0, command=["test"], runs_root=tmp_path
        )
        runner = SweepRunner(progress=recorder.observe, **runner_kwargs)
        outcomes = runner.run(points)
        return recorder, runner, outcomes

    def test_initial_manifest_written_before_points(self, tmp_path):
        recorder = RunRecorder("echo", seed=0, command=["test"], runs_root=tmp_path)
        manifests = list(tmp_path.glob("run-*.json"))
        assert len(manifests) == 1
        initial = load_manifest(manifests[0])
        assert initial.sweep_id == "echo"
        assert initial.points == []
        assert initial.journal.endswith(".journal.jsonl")
        recorder.finalize(runs_root=tmp_path)

    def test_journal_written_per_point(self, tmp_path):
        from repro.telemetry.manifest import load_journal

        recorder, runner, outcomes = self._run(tmp_path)
        journal = load_journal(tmp_path / f"run-{recorder.record.run_id}.journal.jsonl")
        assert len(journal) == 3
        for outcome in outcomes:
            assert journal[outcome.point.scenario_hash] == outcome.value
        recorder.finalize(runs_root=tmp_path)

    def test_finalize_stamps_faults_and_interrupted(self, tmp_path):
        recorder, runner, _ = self._run(tmp_path)
        path = recorder.finalize(
            runs_root=tmp_path,
            faults=runner.fault_stats.as_dict(),
            interrupted=True,
        )
        loaded = load_manifest(path)
        assert loaded.interrupted is True
        assert loaded.failures["quarantined"] == 0
        assert loaded.failures["retries"] == 0

    def test_failed_outcomes_recorded_with_failure_payload(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            json.dumps({"seed": 0, "faults": [{"kind": "error", "indices": [1]}]}),
        )
        recorder, runner, outcomes = self._run(
            tmp_path,
            max_attempts=2,
            raise_on_failure=False,
            backoff_base_s=0.01,
        )
        path = recorder.finalize(
            runs_root=tmp_path, faults=runner.fault_stats.as_dict()
        )
        loaded = load_manifest(path)
        failed = [p for p in loaded.points if p.status == "failed"]
        assert len(failed) == 1
        assert failed[0].attempts == 2
        assert failed[0].failure["kind"] == "error"
        assert failed[0].failure["history"] == ["error", "error"]
        assert loaded.failures == {
            "retries": 1,
            "timeouts": 0,
            "crashes": 0,
            "ooms": 0,
            "signals": 0,
            "errors": 2,
            "degraded": 0,
            "quarantined": 1,
            "journal_skips": 0,
        }
        assert loaded.failed_count() == 1
        assert loaded.retry_count() == 1


class TestFaultReporting:
    def test_fault_summary_aggregates_and_renders(self):
        from repro.telemetry.report import fault_summary, render_fault_summary

        healthy = RunRecord(run_id="1-a-a", sweep_id="fig01")
        faulty = RunRecord(
            run_id="2-b-b",
            sweep_id="fig02a",
            failures={"retries": 2, "timeouts": 1, "quarantined": 1, "errors": 2},
            cache={"corruptions": 3},
            interrupted=True,
        )
        totals = fault_summary([healthy, faulty])
        assert totals["retries"] == 2
        assert totals["timeouts"] == 1
        assert totals["quarantined"] == 1
        assert totals["cache_corruptions"] == 3
        assert totals["interrupted_runs"] == 1
        text = render_fault_summary(totals)
        assert "2 retries" in text and "3 cache corruptions" in text
        assert "1 interrupted runs" in text

    def test_render_stats_includes_fault_summary_only_when_faulty(self):
        healthy = RunRecord(run_id="1-a-a", sweep_id="fig01")
        healthy.points = [PointRecord("a" * 64, "t", cached=False, duration_s=0.1)]
        assert "faults:" not in render_stats([healthy])

        faulty = RunRecord(
            run_id="2-b-b", sweep_id="fig01", failures={"retries": 4}
        )
        faulty.points = [
            PointRecord(
                "b" * 64,
                "t",
                cached=False,
                duration_s=0.0,
                status="failed",
                attempts=3,
                failure={"kind": "timeout", "message": "m"},
            )
        ]
        text = render_stats([healthy, faulty])
        assert "faults: 4 retries" in text
        assert "fail" in text and "retry" in text  # table columns

    def test_experiment_rows_count_failures(self):
        from repro.telemetry.report import experiment_rows

        record = RunRecord(
            run_id="1-a-a", sweep_id="fig01", failures={"retries": 2}
        )
        record.points = [
            PointRecord("a" * 64, "t", cached=False, duration_s=0.1),
            PointRecord(
                "b" * 64, "t", cached=False, duration_s=0.0, status="failed"
            ),
        ]
        (row,) = experiment_rows([record])
        assert row["failed"] == 1
        assert row["retries"] == 2
