"""Memory-bounded kernel contracts (streaming BFS, index promotion, LRU memos).

The hyperscale mode's correctness rests on three invariants this suite pins:

* **Streaming parity** — chunking the multi-source BFS under an arbitrarily
  tiny scratch budget changes memory behaviour only: distance matrices are
  bit-identical to the unconstrained kernel, block boundaries and all.
* **No silent index overflow** — ``index_dtype`` promotes to int64 past the
  int32 range, and ``CSRGraph.from_arrays`` rejects arrays whose ``indptr``
  betrays a wrapped 32-bit cumulative sum.
* **Bounded caches** — the global distance-row memo and the shared path-set
  cache evict LRU entries past their budgets and surface the evictions in
  their stats counters (and through ``repro stats`` telemetry).
"""

import numpy as np
import pytest

from repro.graphs.csr import (
    DEFAULT_BFS_SCRATCH_BYTES,
    CSRGraph,
    bfs_source_chunk,
    clear_csr_cache,
    csr_graph,
    default_bfs_scratch_bytes,
    dist_row_memo_get,
    dist_row_memo_store,
    distance_memo_stats,
    index_dtype,
)
from repro.routing.paths import (
    clear_shared_path_sets,
    shared_path_set,
    shared_path_set_stats,
)
from repro.topologies.ensemble import single_rrg_core
from repro.topologies.jellyfish import JellyfishTopology


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_csr_cache()
    clear_shared_path_sets()
    yield
    clear_csr_cache()
    clear_shared_path_sets()


# --------------------------------------------------------------------------- #
# Streaming BFS under a scratch budget
# --------------------------------------------------------------------------- #
def test_tiny_scratch_budget_is_bit_identical():
    csr = single_rrg_core(150, 12, 9, seed=11).csr()
    reference = csr.hop_distance_matrix()
    streamed = csr.hop_distance_matrix(scratch_bytes=1)
    np.testing.assert_array_equal(reference, streamed)


def test_streamed_blocks_reassemble_the_matrix():
    csr = single_rrg_core(100, 12, 9, seed=3).csr()
    sources = [0, 5, 17, 40, 99]
    reference = csr.hop_distance_matrix(sources)
    rows = {}
    for chunk, block in csr.iter_hop_distance_blocks(sources, scratch_bytes=1):
        assert len(chunk) <= bfs_source_chunk(
            csr.num_nodes, len(csr.indices), scratch_bytes=1
        )
        for offset, source in enumerate(chunk.tolist()):
            rows[source] = block[offset]
    assert sorted(rows) == sources
    for position, source in enumerate(sources):
        np.testing.assert_array_equal(reference[position], rows[source])


def test_bfs_source_chunk_respects_budget_and_floors():
    # A byte budget always yields at least one 64-source word.
    assert bfs_source_chunk(10_000, 360_000, scratch_bytes=1) == 64
    # A generous budget caps at the historical 4096-source chunk.
    assert bfs_source_chunk(100, 900, scratch_bytes=2**40) == 4096
    # In between, the chunk is a multiple of 64 that fits the budget.
    chunk = bfs_source_chunk(100_000, 3_600_000, scratch_bytes=256 * 2**20)
    assert chunk % 64 == 0
    per_word = 8 * (3_600_000 + 1) + 16 * 100_000 + 256 * 100_000
    assert (chunk // 64) * per_word <= 256 * 2**20


def test_default_scratch_budget_env_override(monkeypatch):
    assert default_bfs_scratch_bytes() == DEFAULT_BFS_SCRATCH_BYTES
    monkeypatch.setenv("REPRO_BFS_SCRATCH_MB", "7")
    assert default_bfs_scratch_bytes() == 7 * 2**20


# --------------------------------------------------------------------------- #
# Index dtype promotion / overflow guards
# --------------------------------------------------------------------------- #
def test_index_dtype_promotes_past_int32():
    assert index_dtype(1000, 36_000) == np.dtype(np.int32)
    assert index_dtype(2**31, 10) == np.dtype(np.int64)
    assert index_dtype(10, 2**31) == np.dtype(np.int64)
    # Exactly the limit still fits.
    assert index_dtype(np.iinfo(np.int32).max, 10) == np.dtype(np.int32)


def test_from_arrays_rejects_wrapped_indptr():
    # Simulate the signature of an int32-overflowed cumsum: final offset
    # disagrees with the adjacency length.
    nodes = [0, 1, 2]
    index_of = {node: node for node in nodes}
    indices = np.array([1, 0, 2, 1], dtype=np.int32)
    bad_indptr = np.array([0, 2, 3, 2], dtype=np.int32)
    with pytest.raises(ValueError, match="int32 overflow"):
        CSRGraph.from_arrays(nodes, index_of, bad_indptr, indices)
    with pytest.raises(ValueError, match="does not match"):
        CSRGraph.from_arrays(nodes, index_of, np.array([0, 2, 4], dtype=np.int32), indices)


def test_from_arrays_promotes_dtype_consistently():
    csr = single_rrg_core(50, 8, 5, seed=0).csr()
    assert csr.indptr.dtype == csr.indices.dtype == index_dtype(50, len(csr.indices))


# --------------------------------------------------------------------------- #
# Distance-row memo: bounded, content-addressed, observable
# --------------------------------------------------------------------------- #
def test_distance_memo_reports_hits_misses():
    csr = single_rrg_core(60, 8, 5, seed=1).csr()
    baseline = distance_memo_stats()
    assert baseline["rows"] == 0
    csr.distance_row(0)
    csr.distance_row(0)
    stats = distance_memo_stats()
    assert stats["rows"] == 1
    assert stats["hits"] >= 1
    assert stats["misses"] >= 1
    assert stats["evictions"] == 0


def test_distance_memo_evicts_lru_past_budget(monkeypatch):
    import repro.graphs.csr as csr_module

    memo = csr_module._DistanceRowMemo(budget_bytes=1000)
    monkeypatch.setattr(csr_module, "_DIST_ROW_MEMO", memo)
    row = np.zeros(100, dtype=np.int32)  # 400 bytes
    dist_row_memo_store("hash-a", 0, row)
    dist_row_memo_store("hash-a", 1, row.copy())
    assert distance_memo_stats()["rows"] == 2
    dist_row_memo_store("hash-a", 2, row.copy())  # 1200 bytes > budget
    stats = distance_memo_stats()
    assert stats["rows"] == 2
    assert stats["evictions"] == 1
    assert stats["bytes"] <= 1000
    # LRU order: source 0 was oldest, so it went first.
    assert dist_row_memo_get("hash-a", 0) is None
    assert dist_row_memo_get("hash-a", 1) is not None
    assert dist_row_memo_get("hash-a", 2) is not None


def test_distance_memo_skips_oversized_rows(monkeypatch):
    import repro.graphs.csr as csr_module

    memo = csr_module._DistanceRowMemo(budget_bytes=100)
    monkeypatch.setattr(csr_module, "_DIST_ROW_MEMO", memo)
    dist_row_memo_store("hash-b", 0, np.zeros(1000, dtype=np.int32))
    assert distance_memo_stats()["rows"] == 0


def test_structurally_equal_graphs_share_memo_rows():
    topo_a = JellyfishTopology.build(30, 8, 5, rng=7)
    topo_b = JellyfishTopology.build(30, 8, 5, rng=7)
    csr_a = csr_graph(topo_a.graph)
    csr_b = csr_graph(topo_b.graph)
    assert csr_a.content_hash == csr_b.content_hash
    csr_a.distance_row(3)
    before = distance_memo_stats()["misses"]
    csr_b.distance_row(3)
    stats = distance_memo_stats()
    assert stats["misses"] == before
    assert stats["hits"] >= 1


# --------------------------------------------------------------------------- #
# Shared path-set cache: entry cap + total-path budget
# --------------------------------------------------------------------------- #
def test_pathset_budget_evicts_lru_tables(monkeypatch):
    import repro.routing.paths as paths_module

    monkeypatch.setattr(paths_module, "_SHARED_PATH_SET_PATH_BUDGET", 40)
    topologies = [JellyfishTopology.build(12, 6, 3, rng=seed) for seed in range(4)]
    pairs = [(i, j) for i in range(4) for j in range(4) if i != j]
    for topology in topologies:
        shared_path_set(topology.graph, pairs, scheme="ksp", k=2)
    stats = shared_path_set_stats()
    assert stats["evictions"] >= 1
    assert stats["tables"] < 4
    assert stats["paths"] <= 40 or stats["tables"] == 1


def test_pathset_never_evicts_current_table(monkeypatch):
    import repro.routing.paths as paths_module

    monkeypatch.setattr(paths_module, "_SHARED_PATH_SET_PATH_BUDGET", 1)
    topology = JellyfishTopology.build(12, 6, 3, rng=0)
    pairs = [(i, j) for i in range(4) for j in range(4) if i != j]
    table = shared_path_set(topology.graph, pairs, scheme="ksp", k=2)
    assert len(table) == len(pairs)
    stats = shared_path_set_stats()
    assert stats["tables"] == 1  # one oversized table survives alone
