"""Instrumentation layer: structured tracing, run telemetry, stats reporting.

Zero-dependency observability for the simulator, in four pieces:

- :mod:`repro.telemetry.tracer` -- :func:`trace` spans with domain counters,
  an in-process ring buffer, and an optional JSONL event log.  Compiles to
  no-ops when disabled (the default), so instrumented kernels keep their
  benchmarked speed and bit-identical parity with the ``_reference``
  implementations.
- :mod:`repro.telemetry.manifest` -- :class:`RunRecord` manifests persisted
  beside the result cache: git rev, seed, spec hashes, per-point
  duration / cache status / peak RSS / worker id.
- :mod:`repro.telemetry.log` -- ``logging``-based diagnostics (quiet by
  default; the CLI's ``-v`` raises verbosity).
- :mod:`repro.telemetry.report` -- the ``repro stats`` rendering: latency
  percentiles, cache hit rates, slowest phases, text flame views.

See ``docs/observability.md`` for span naming conventions and the manifest
schema.
"""

from repro.telemetry.log import configure as configure_logging
from repro.telemetry.log import get_logger
from repro.telemetry.manifest import (
    PointRecord,
    RunRecord,
    RunRecorder,
    default_runs_root,
    journal_path,
    load_journal,
    load_manifest,
    load_manifests,
    manifest_path,
    write_manifest,
)
from repro.telemetry.timing import best_of, stopwatch, time_call, timed_best_of
from repro.telemetry.tracer import (
    NULL_SPAN,
    Span,
    TRACE_ENV,
    Tracer,
    clock,
    count,
    disable,
    enable,
    enable_in_subprocesses,
    get_tracer,
    is_enabled,
    summarize_events,
    trace,
)

__all__ = [
    "NULL_SPAN",
    "PointRecord",
    "RunRecord",
    "RunRecorder",
    "Span",
    "TRACE_ENV",
    "Tracer",
    "best_of",
    "clock",
    "configure_logging",
    "count",
    "default_runs_root",
    "disable",
    "enable",
    "enable_in_subprocesses",
    "get_logger",
    "get_tracer",
    "is_enabled",
    "journal_path",
    "load_journal",
    "load_manifest",
    "load_manifests",
    "manifest_path",
    "stopwatch",
    "summarize_events",
    "time_call",
    "timed_best_of",
    "trace",
    "write_manifest",
]
