"""Run manifests: one JSON record per sweep invocation, stored beside the cache.

A :class:`RunRecord` captures everything needed to audit or re-create a
sweep run after the fact: the git revision and command line, the sweep id /
scale / seed, every spec's content hash, and a per-point list of
``(scenario_hash, target, cached, duration_s, worker pid, peak RSS)``.
``repro stats`` reads these to report point-latency percentiles and cache
hit rates per experiment.

Manifests are plain JSON files named ``run-<run_id>.json`` under a *runs
root* -- by default ``<result-cache-root>/runs`` so the operational record
sits beside the results it describes (override with ``$REPRO_RUNS_DIR``).
Writes are atomic (temp file + ``os.replace``), mirroring the cache's
discipline: a killed run never leaves a truncated manifest.  When the runs
root is known up front, :class:`RunRecorder` also writes an *initial*
manifest before the sweep starts -- so a run that dies mid-sweep still
left its identity on disk -- and streams an append-only *journal*
(``run-<run_id>.journal.jsonl``, one line per completed point, fsync-free
but flushed) that ``repro sweep run --resume <run-id>`` replays to skip
already-finished points without re-executing or even re-fetching them.

:class:`RunRecorder` is the collection half: its :meth:`~RunRecorder.observe`
method is a :data:`~repro.engine.runner.ProgressCallback`, so wiring a
recorder into a :class:`~repro.engine.runner.SweepRunner` is one extra
callback -- the runner itself stays manifest-agnostic.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

MANIFEST_VERSION = 1

#: Environment variable overriding where run manifests (and default event
#: logs) are written.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"


def default_runs_root() -> Path:
    """Manifest directory: ``$REPRO_RUNS_DIR`` or ``<cache root>/runs``."""
    override = os.environ.get(RUNS_DIR_ENV)
    if override:
        return Path(override).expanduser()
    from repro.engine.cache import default_cache_root  # lazy: avoid cycles

    return default_cache_root() / "runs"


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit hash, or ``None`` outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 where unavailable).

    ``ru_maxrss`` is a monotonic high-water mark, so per-point values in a
    manifest record "the largest the worker had grown by the time this
    point finished", not the point's own footprint.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes there
        peak //= 1024
    return int(peak)


@dataclass
class PointRecord:
    """Per-point telemetry row inside a :class:`RunRecord`.

    ``status`` is ``"ok"``, ``"journaled"`` (skipped on resume) or
    ``"failed"`` (quarantined); ``attempts`` counts execution attempts
    including retries; ``failure`` is the quarantined point's structured
    failure (:meth:`~repro.engine.runner.PointFailure.as_dict`).

    ``degradation_level`` / ``profile`` record the ladder rung the final
    attempt ran at (0 / ``None`` = full fidelity) and ``history`` the
    failure kinds of earlier attempts -- so a degraded-but-successful point
    is auditable from the manifest alone.
    """

    scenario_hash: str
    target: str
    cached: bool
    duration_s: float
    worker: int = 0
    peak_rss_kb: int = 0
    status: str = "ok"
    attempts: int = 0
    failure: Optional[dict] = None
    degradation_level: int = 0
    profile: Optional[dict] = None
    history: Optional[List[str]] = None


@dataclass
class RunRecord:
    """One sweep invocation's manifest (JSON round-trippable)."""

    run_id: str
    sweep_id: str
    scale: str = "small"
    seed: Optional[int] = None
    created_unix: int = 0
    git_rev: Optional[str] = None
    command: List[str] = field(default_factory=list)
    workers: int = 0
    spec_hashes: List[str] = field(default_factory=list)
    duration_s: float = 0.0
    cache: Optional[Dict[str, int]] = None
    trace_events: Optional[str] = None
    failures: Optional[Dict[str, int]] = None
    resumed_from: Optional[str] = None
    interrupted: bool = False
    journal: Optional[str] = None
    points: List[PointRecord] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["version"] = MANIFEST_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {payload.get('version')!r}"
            )
        points = [PointRecord(**point) for point in payload.get("points", [])]
        fields = {
            key: payload[key]
            for key in (
                "run_id",
                "sweep_id",
                "scale",
                "seed",
                "created_unix",
                "git_rev",
                "command",
                "workers",
                "spec_hashes",
                "duration_s",
                "cache",
                "trace_events",
                "failures",
                "resumed_from",
                "interrupted",
                "journal",
            )
            if key in payload
        }
        return cls(points=points, **fields)

    # -- derived metrics used by `repro stats` --------------------------
    def executed_durations(self) -> List[float]:
        return [p.duration_s for p in self.points if not p.cached]

    def cached_count(self) -> int:
        return sum(1 for p in self.points if p.cached)

    def max_peak_rss_kb(self) -> int:
        return max((p.peak_rss_kb for p in self.points), default=0)

    def failed_count(self) -> int:
        return sum(1 for p in self.points if p.status == "failed")

    def degraded_count(self) -> int:
        return sum(1 for p in self.points if p.degradation_level > 0)

    def retry_count(self) -> int:
        return int((self.failures or {}).get("retries", 0))


def new_run_id(sweep_id: str) -> str:
    """Unique, sortable run id: ``<unix-time>-<sweep>-<random>``."""
    return f"{int(time.time())}-{sweep_id}-{uuid.uuid4().hex[:8]}"


def manifest_path(runs_root: Path, run_id: str) -> Path:
    return Path(runs_root) / f"run-{run_id}.json"


def journal_path(runs_root: Path, run_id: str) -> Path:
    """The run's append-only completion journal, beside its manifest."""
    return Path(runs_root) / f"run-{run_id}.journal.jsonl"


def load_journal(path: Path) -> Dict[str, Any]:
    """Replay a completion journal into ``{scenario_hash: value}``.

    Only successful entries (status ``"ok"`` or ``"journaled"``) carrying a
    value are kept -- failed points must re-execute on resume.  A torn
    final line (the writer died mid-append) or any other unparseable line
    is skipped, not fatal: the journal is an optimization, so the worst a
    broken line costs is re-running one point.
    """
    completed: Dict[str, Any] = {}
    try:
        with open(path, "r", encoding="ascii") as handle:
            lines = handle.readlines()
    except OSError:
        return completed
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(entry, dict) or "hash" not in entry:
            continue
        if entry.get("status") in ("ok", "journaled") and "value" in entry:
            completed[entry["hash"]] = entry["value"]
    return completed


def write_manifest(record: RunRecord, runs_root: Optional[Path] = None) -> Path:
    """Atomically persist ``record``; returns the manifest path."""
    root = Path(runs_root) if runs_root is not None else default_runs_root()
    root.mkdir(parents=True, exist_ok=True)
    path = manifest_path(root, record.run_id)
    payload = json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
    descriptor, temp_name = tempfile.mkstemp(
        dir=root, prefix=".tmp-run-", suffix=".json"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="ascii") as handle:
            handle.write(payload)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def load_manifest(path: Path) -> RunRecord:
    with open(path, "r", encoding="ascii") as handle:
        return RunRecord.from_dict(json.load(handle))


def load_manifests(runs_root: Optional[Path] = None) -> List[RunRecord]:
    """Every readable manifest under ``runs_root``, oldest first."""
    root = Path(runs_root) if runs_root is not None else default_runs_root()
    records: List[RunRecord] = []
    if not root.is_dir():
        return records
    for path in sorted(root.glob("run-*.json")):
        try:
            records.append(load_manifest(path))
        except (OSError, ValueError, TypeError, KeyError, json.JSONDecodeError):
            continue  # unreadable or foreign file: skip, like cache misses
    records.sort(key=lambda r: (r.created_unix, r.run_id))
    return records


class RunRecorder:
    """Collects per-point telemetry for one sweep invocation.

    Use :meth:`observe` as (or inside) the runner's progress callback, then
    :meth:`finalize` to stamp totals and write the manifest::

        recorder = RunRecorder("fig02c", scale=scale, seed=seed)
        runner = SweepRunner(cache=cache, progress=recorder.observe)
        runner.run(points)
        recorder.finalize(cache=cache, runs_root=runs_root)
    """

    def __init__(
        self,
        sweep_id: str,
        scale: str = "small",
        seed: Optional[int] = None,
        command: Optional[Sequence[str]] = None,
        workers: int = 0,
        spec_hashes: Optional[Sequence[str]] = None,
        runs_root: Optional[Path] = None,
        resumed_from: Optional[str] = None,
    ) -> None:
        self.record = RunRecord(
            run_id=new_run_id(sweep_id),
            sweep_id=sweep_id,
            scale=scale,
            seed=seed,
            created_unix=int(time.time()),
            git_rev=git_revision(),
            command=list(command) if command is not None else list(sys.argv),
            workers=workers,
            spec_hashes=list(spec_hashes) if spec_hashes is not None else [],
            resumed_from=resumed_from,
        )
        self._start = time.perf_counter()
        self._runs_root: Optional[Path] = None
        self._journal = None
        if runs_root is not None:
            # The runs root is known up front: leave an initial manifest on
            # disk (a run killed mid-sweep is still discoverable, and
            # --resume reads sweep/scale/seed from it) and open the
            # completion journal for appending.
            self._runs_root = Path(runs_root)
            self._runs_root.mkdir(parents=True, exist_ok=True)
            path = journal_path(self._runs_root, self.record.run_id)
            self.record.journal = os.fspath(path)
            write_manifest(self.record, runs_root=self._runs_root)
            try:
                self._journal = open(path, "a", encoding="ascii")
            except OSError:
                self._journal = None

    def observe(self, done: int, total: int, outcome: Any) -> None:
        """Progress-callback shaped collector (`done`/`total` unused)."""
        point = outcome.point
        status = str(getattr(outcome, "status", "ok"))
        failure = getattr(outcome, "failure", None)
        degradation_level = int(getattr(outcome, "degradation_level", 0) or 0)
        profile = getattr(outcome, "profile", None)
        history = list(getattr(outcome, "history", None) or [])
        self.record.points.append(
            PointRecord(
                scenario_hash=point.scenario_hash,
                target=point.target,
                cached=bool(outcome.cached),
                duration_s=float(outcome.duration_s),
                worker=int(getattr(outcome, "worker", 0) or 0),
                peak_rss_kb=int(getattr(outcome, "peak_rss_kb", 0) or 0),
                status=status,
                attempts=int(getattr(outcome, "attempts", 0) or 0),
                failure=failure.as_dict() if failure is not None else None,
                degradation_level=degradation_level,
                profile=dict(profile) if profile else None,
                history=history or None,
            )
        )
        if self._journal is not None:
            entry: Dict[str, Any] = {"hash": point.scenario_hash, "status": status}
            if degradation_level > 0:
                entry["degradation_level"] = degradation_level
                if profile:
                    entry["profile"] = dict(profile)
            if history:
                entry["history"] = history
            if status != "failed":
                # The value rides in the journal so resume never depends on
                # the cache being intact (a torn cache write cannot force a
                # journaled point to re-execute).
                entry["value"] = outcome.value
            try:
                self._journal.write(json.dumps(entry, sort_keys=True) + "\n")
                self._journal.flush()
            except (OSError, TypeError, ValueError):
                # A journal that cannot be written stops being one; the run
                # itself must not care.
                try:
                    self._journal.close()
                except OSError:
                    pass
                self._journal = None

    def finalize(
        self,
        cache: Any = None,
        runs_root: Optional[Path] = None,
        trace_events: Optional[str] = None,
        faults: Optional[Dict[str, int]] = None,
        interrupted: bool = False,
    ) -> Path:
        """Stamp duration / cache / fault stats and write the manifest."""
        if self._journal is not None:
            try:
                self._journal.close()
            except OSError:
                pass
            self._journal = None
        self.record.duration_s = time.perf_counter() - self._start
        if cache is not None and getattr(cache, "stats", None) is not None:
            self.record.cache = cache.stats.as_dict()
        if trace_events is not None:
            self.record.trace_events = os.fspath(trace_events)
        if faults is not None:
            self.record.failures = dict(faults)
        self.record.interrupted = bool(interrupted)
        root = runs_root if runs_root is not None else self._runs_root
        return write_manifest(self.record, runs_root=root)
