"""Structured tracing: nestable spans, an in-process ring buffer, JSONL sink.

The tracer is the repo's single instrumentation primitive.  Kernels wrap
their phases in spans::

    from repro.telemetry import trace

    with trace("maxmin.fill", subflows=n) as span:
        ...
        span.add(rounds=rounds)

and attach **domain counters** (BFS frontier sweeps, Yen spur candidates,
max-min saturation rounds, LP assembly nnz, IPM iterations, AIMD rounds,
RRG splice repairs) either at span creation, via :meth:`Span.add`, or --
from code that has no span handle in scope -- via :func:`count`, which
credits the innermost active span.

Design constraints, in priority order:

1. **Zero overhead when disabled** (the default).  :func:`trace` returns a
   shared no-op span and :func:`count` returns immediately; no object is
   allocated, no clock is read.  Hot kernels therefore keep their hooks at
   function granularity (one span per kernel invocation, never one per
   inner-loop iteration) so the disabled-mode cost is a few hundred
   nanoseconds against kernels that run for at least tens of microseconds.
2. **No dependencies**: stdlib only.
3. **Crash-safe, multiprocess-safe event logs**: when a JSONL path is
   configured, each completed span is appended as one line and flushed, so
   concurrent worker processes interleave whole lines (each carries its
   ``pid``) and a killed run keeps everything already flushed.

Enabling
--------
Programmatic: :func:`enable` / :func:`disable`.  Environmental:
``REPRO_TRACE=1`` enables the ring buffer only; ``REPRO_TRACE=<path>``
additionally appends events to ``<path>`` as JSONL.  The environment is
checked at import time, so ``multiprocessing`` pool workers (fork or spawn)
inherit tracing from the parent's environment without any plumbing.

Span records are plain dicts (JSON-ready)::

    {"i": 3, "name": "maxmin.fill", "t": 0.0123, "dur_s": 0.0041,
     "depth": 1, "parent": 2, "self_s": 0.0039,
     "counters": {"rounds": 17, "subflows": 240}, "pid": 12345}

``t`` is seconds since the tracer was created (one ``perf_counter`` clock
path shared with :mod:`repro.telemetry.timing`); ``parent`` is the ``i`` of
the enclosing span in the same process or ``None`` for roots; ``self_s``
is ``dur_s`` minus the cumulative duration of direct children, which is
what ``repro stats`` aggregates as per-phase self time.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from collections import deque
from typing import Any, Dict, IO, List, Optional

#: The single clock path for every measurement in the repo: tracer spans,
#: sweep point durations, and the ``record_*.py`` benchmark scripts all
#: read this callable, so perf numbers are comparable across surfaces.
clock = time.perf_counter

#: Environment variable enabling tracing (``1`` = ring buffer only,
#: anything else = also append JSONL events to that path).
TRACE_ENV = "REPRO_TRACE"

#: Completed spans retained in process (oldest evicted first).
DEFAULT_RING_SIZE = 65536


class NullSpan:
    """Shared no-op span returned by :func:`trace` while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def add(self, **counters: Any) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class Span:
    """One live span; becomes a record in the ring buffer when it exits."""

    __slots__ = ("_tracer", "name", "counters", "_start", "_index", "_parent", "_depth", "_child_s")

    def __init__(self, tracer: "Tracer", name: str, counters: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.counters = counters
        self._start = 0.0
        self._index = -1
        self._parent: Optional[int] = None
        self._depth = 0
        self._child_s = 0.0

    def add(self, **counters: Any) -> "Span":
        """Merge counters into the span (numeric values accumulate)."""
        own = self.counters
        for key, value in counters.items():
            if key in own and isinstance(value, (int, float)) and not isinstance(value, bool):
                own[key] = own[key] + value
            else:
                own[key] = value
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = clock()
        return self

    def __exit__(self, *exc: Any) -> bool:
        duration = clock() - self._start
        self._tracer._pop(self, duration)
        return False


class Tracer:
    """Collects span records into a ring buffer and an optional JSONL sink."""

    def __init__(
        self,
        ring_size: int = DEFAULT_RING_SIZE,
        jsonl_path: Optional[str] = None,
    ) -> None:
        self.events: "deque[dict]" = deque(maxlen=ring_size)
        self.jsonl_path = os.fspath(jsonl_path) if jsonl_path is not None else None
        self.root_counters: Dict[str, Any] = {}
        self.epoch = clock()
        self._stack: List[Span] = []
        self._next_index = 0
        self._sink: Optional[IO[str]] = None
        self._pid = os.getpid()

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, counters: Dict[str, Any]) -> Span:
        return Span(self, name, counters)

    def _push(self, span: Span) -> None:
        stack = self._stack
        if stack:
            parent = stack[-1]
            span._parent = parent._index
            span._depth = parent._depth + 1
        span._index = self._next_index
        self._next_index += 1
        stack.append(span)

    def _pop(self, span: Span, duration: float) -> None:
        stack = self._stack
        # Tolerate exits out of order (a span used without ``with`` never
        # enters the stack): unwind to this span if present, else drop.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            while stack and stack.pop() is not span:
                pass
        if stack:
            stack[-1]._child_s += duration
        record = {
            "i": span._index,
            "name": span.name,
            "t": round(span._start - self.epoch, 9),
            "dur_s": duration,
            "depth": span._depth,
            "parent": span._parent,
            "self_s": max(duration - span._child_s, 0.0),
            "counters": span.counters,
            "pid": self._pid,
        }
        self.events.append(record)
        if self.jsonl_path is not None:
            self._write(record)

    def count(self, name: str, value: Any = 1) -> None:
        """Credit a counter to the innermost active span (or the root)."""
        if self._stack:
            target = self._stack[-1].counters
        else:
            target = self.root_counters
        if name in target and isinstance(value, (int, float)) and not isinstance(value, bool):
            target[name] = target[name] + value
        else:
            target[name] = value

    # -- sink -----------------------------------------------------------
    def _write(self, record: dict) -> None:
        sink = self._sink
        if sink is None:
            try:
                sink = self._sink = open(self.jsonl_path, "a", encoding="ascii")
            except OSError:
                self.jsonl_path = None  # never retry a broken sink
                return
        try:
            # One write + flush per record: whole lines hit the file even if
            # several worker processes append concurrently or the run dies.
            sink.write(json.dumps(record, default=_json_default) + "\n")
            sink.flush()
        except (OSError, TypeError, ValueError):  # pragma: no cover
            self.jsonl_path = None

    def close(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:  # pragma: no cover
                pass
            self._sink = None

    # -- aggregation ----------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate over the ring buffer: calls, cum/self seconds."""
        return summarize_events(self.events)


def _json_default(value: Any) -> Any:
    """Fallback serializer: numpy scalars and other reprs become floats/strings."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


def summarize_events(events) -> Dict[str, Dict[str, float]]:
    """Aggregate span records by name: call count, cumulative and self time."""
    totals: Dict[str, Dict[str, float]] = {}
    for record in events:
        entry = totals.setdefault(
            record["name"], {"calls": 0, "cum_s": 0.0, "self_s": 0.0}
        )
        entry["calls"] += 1
        entry["cum_s"] += record["dur_s"]
        entry["self_s"] += record.get("self_s", record["dur_s"])
    return totals


# --------------------------------------------------------------------------- #
# Module-level switchboard
# --------------------------------------------------------------------------- #
_TRACER: Optional[Tracer] = None


def trace(name: str, **counters: Any):
    """Start a span (use as a context manager); no-op while tracing is off."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, counters)


def count(name: str, value: Any = 1) -> None:
    """Credit a domain counter to the innermost active span; no-op when off."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.count(name, value)


def is_enabled() -> bool:
    return _TRACER is not None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def enable(
    jsonl_path: Optional[str] = None, ring_size: int = DEFAULT_RING_SIZE
) -> Tracer:
    """Install (and return) a fresh process-global tracer."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(ring_size=ring_size, jsonl_path=jsonl_path)
    return _TRACER


def disable() -> None:
    """Tear the global tracer down; :func:`trace` reverts to no-ops."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None


def enable_in_subprocesses(jsonl_path: Optional[str] = None) -> None:
    """Arrange for worker processes to trace too (they read ``REPRO_TRACE``).

    Sets the environment variable the module checks at import, which both
    ``fork`` children (inherit the env directly) and ``spawn`` children
    (re-import this module) observe.
    """
    os.environ[TRACE_ENV] = jsonl_path if jsonl_path else "1"


@atexit.register
def _close_at_exit() -> None:  # pragma: no cover - exercised at interpreter exit
    if _TRACER is not None:
        _TRACER.close()


def _activate_from_env() -> None:
    value = os.environ.get(TRACE_ENV, "").strip()
    if not value or value == "0":
        return
    path = None if value.lower() in ("1", "true", "on") else value
    enable(jsonl_path=path)


_activate_from_env()
