"""Shared timing helpers: one clock path for benchmarks and traces.

The ``benchmarks/record_*.py`` scripts and the tracer historically read
``time.perf_counter`` independently; these helpers route every measurement
through :data:`repro.telemetry.tracer.clock` so the checked-in
``BENCH_*.json`` numbers and the JSONL span logs come from a single clock
path (and a future clock swap -- e.g. ``perf_counter_ns`` -- happens in one
place).

:func:`best_of` additionally emits a ``bench.best_of`` span per measured
callable when tracing is enabled, so a traced benchmark run shows its
repeat structure in ``repro stats`` without the scripts doing anything.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.telemetry.tracer import clock, trace


class Stopwatch:
    """Mutable elapsed-seconds holder filled in by :func:`stopwatch`."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


@contextmanager
def stopwatch() -> Iterator[Stopwatch]:
    """Time a block on the shared clock: ``with stopwatch() as w: ...``."""
    watch = Stopwatch()
    start = clock()
    try:
        yield watch
    finally:
        watch.seconds = clock() - start


def time_call(callable_: Callable, *args, **kwargs):
    """Run ``callable_`` once; returns ``(value, elapsed_seconds)``."""
    start = clock()
    value = callable_(*args, **kwargs)
    return value, clock() - start


def best_of(
    callable_: Callable[[], object],
    repeats: int,
    setup: Optional[Callable[[], object]] = None,
    label: Optional[str] = None,
) -> float:
    """Minimum wall time of ``repeats`` calls (the benchmark scripts' metric).

    ``setup`` runs before each repeat *outside* the timed region (cache
    clearing in the cold-path benchmarks).  When tracing is enabled the
    whole measurement is wrapped in one ``bench.best_of`` span carrying the
    per-repeat timings, so traced benchmark runs are self-describing.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    samples: List[float] = []
    with trace("bench.best_of", label=label or getattr(callable_, "__name__", "?")) as span:
        for _ in range(repeats):
            if setup is not None:
                setup()
            start = clock()
            callable_()
            samples.append(clock() - start)
        span.add(repeats=repeats, best_s=min(samples))
    return min(samples)


def timed_best_of(
    callable_: Callable[[], object],
    repeats: int,
    setup: Optional[Callable[[], object]] = None,
):
    """Like :func:`best_of` but also returns the last call's value.

    Mirrors the ``timed`` helpers some benchmark scripts use to keep the
    measured result for cross-engine equality checks:
    returns ``(best_seconds, last_value)``.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    value = None
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = clock()
        value = callable_()
        best = min(best, clock() - start)
    return best, value
