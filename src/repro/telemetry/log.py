"""``logging``-based diagnostics: per-experiment loggers, quiet by default.

All of the repo's human-facing diagnostics (sweep progress, cache stats,
manifest locations) go through loggers under the ``repro`` hierarchy
instead of bare ``print`` calls:

* :func:`get_logger` returns ``repro.<name>`` loggers -- per-experiment
  loggers are ``repro.sweep.fig02c`` etc., so ``logging`` filtering works
  per experiment;
* :func:`configure` installs one stderr handler on the ``repro`` root and
  maps the CLI's ``-v`` count to levels (0 = warnings only, the quiet
  default; 1 = info, the old progress chatter; 2+ = debug).

Library code never calls :func:`configure`; only the CLI does.  Without it,
loggers propagate into whatever logging setup the embedding application
has, which is the standard library-friendly behavior.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_LOGGER_NAME = "repro"

_LEVELS = {0: logging.WARNING, 1: logging.INFO}
_configured_handler: Optional[logging.Handler] = None


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``get_logger("sweep.fig01")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v`` count to a ``logging`` level (0→WARNING, 1→INFO, 2+→DEBUG)."""
    return _LEVELS.get(max(int(verbosity), 0), logging.DEBUG)


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install (or retune) the CLI's stderr handler; returns the root logger.

    Idempotent: repeated calls adjust the level of the one installed
    handler instead of stacking new ones, so tests and nested CLI entry
    points can call it freely.
    """
    global _configured_handler
    root = get_logger()
    level = verbosity_to_level(verbosity)
    if _configured_handler is None or _configured_handler not in root.handlers:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        root.addHandler(handler)
        _configured_handler = handler
    elif stream is not None:  # retarget (tests pass explicit streams)
        _configured_handler.setStream(stream)
    _configured_handler.setLevel(logging.NOTSET)
    root.setLevel(level)
    root.propagate = False
    return root
