"""The ``repro stats`` reporting surface.

Reads run manifests (:mod:`repro.telemetry.manifest`) and JSONL span event
logs (:mod:`repro.telemetry.tracer`) and renders:

* a **per-experiment table** -- runs, points, cache hit rate, failed and
  retried points, p50/p95 executed point latency, peak worker RSS;
* a **fault summary line** -- aggregate retries / timeouts / crashes /
  quarantines and cache corruptions across the manifests (only rendered
  when any are nonzero, so healthy runs stay clean);
* a **phase table** -- per span name: calls, cumulative and self time,
  sorted by cumulative self time (the "slowest phases" view);
* a **domain counters table** -- every ``count()`` counter summed across
  the event log (cache hits, memo evictions, sampled pairs, ...), only
  rendered when any counters were recorded;
* a **coverage line** -- how much of the executed wall time the root spans
  account for (instrumentation that loses time shows up here first);
* an optional **text flame view** (``--flame``) of one point's span tree:
  the slowest root span, each child drawn as an indented bar scaled to the
  root's duration, with domain counters inline.

Everything is plain text and computes from on-disk artifacts only, so the
command works on artifacts downloaded from CI just as well as on a local
``~/.cache/jellyfish-repro/runs``.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.manifest import RunRecord
from repro.telemetry.tracer import summarize_events

#: Width of the bar column in the flame rendering.
FLAME_BAR_WIDTH = 30


def load_events(path: Path) -> List[dict]:
    """Parse a JSONL span log, skipping unparseable lines (partial writes)."""
    events: List[dict] = []
    try:
        with open(path, "r", encoding="ascii", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "name" in record and "dur_s" in record:
                    events.append(record)
    except OSError:
        return []
    return events


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]); NaN when empty."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


# --------------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------------- #
def experiment_rows(records: Sequence[RunRecord]) -> List[dict]:
    """Aggregate manifests per sweep id (one output row per experiment)."""
    grouped: Dict[str, List[RunRecord]] = defaultdict(list)
    for record in records:
        grouped[record.sweep_id].append(record)
    rows = []
    for sweep_id in sorted(grouped):
        runs = grouped[sweep_id]
        executed: List[float] = []
        cached = 0
        total_points = 0
        peak_rss = 0
        failed = 0
        retries = 0
        degraded = 0
        for run in runs:
            executed.extend(run.executed_durations())
            cached += run.cached_count()
            total_points += len(run.points)
            peak_rss = max(peak_rss, run.max_peak_rss_kb())
            failed += run.failed_count()
            retries += run.retry_count()
            degraded += run.degraded_count()
        rows.append(
            {
                "experiment": sweep_id,
                "runs": len(runs),
                "points": total_points,
                "cached": cached,
                "hit_rate": (cached / total_points) if total_points else float("nan"),
                "failed": failed,
                "retries": retries,
                "degraded": degraded,
                "p50_s": percentile(executed, 50.0),
                "p95_s": percentile(executed, 95.0),
                "peak_rss_kb": peak_rss,
            }
        )
    return rows


def fault_summary(records: Sequence[RunRecord]) -> Dict[str, int]:
    """Aggregate fault counters across manifests (all zero when healthy).

    Sums each run's ``failures`` dict (retries, timeouts, crashes, ooms,
    signals, errors, degraded, quarantined, journal_skips), adds cache
    ``corruptions`` from the cache stats snapshots, and counts interrupted
    runs.
    """
    totals: Dict[str, int] = {
        "retries": 0,
        "timeouts": 0,
        "crashes": 0,
        "ooms": 0,
        "signals": 0,
        "errors": 0,
        "degraded": 0,
        "quarantined": 0,
        "journal_skips": 0,
        "cache_corruptions": 0,
        "interrupted_runs": 0,
    }
    for record in records:
        for key, value in (record.failures or {}).items():
            if key in totals:
                totals[key] += int(value)
        totals["cache_corruptions"] += int((record.cache or {}).get("corruptions", 0))
        if record.interrupted:
            totals["interrupted_runs"] += 1
    return totals


def render_fault_summary(totals: Dict[str, int]) -> str:
    parts = [
        f"{totals['retries']} retries",
        f"{totals['timeouts']} timeouts",
        f"{totals['crashes']} crashes",
        f"{totals['ooms']} ooms",
        f"{totals['signals']} signals",
        f"{totals['errors']} errors",
        f"{totals['degraded']} degraded",
        f"{totals['quarantined']} quarantined",
        f"{totals['journal_skips']} journal skips",
        f"{totals['cache_corruptions']} cache corruptions",
    ]
    if totals.get("interrupted_runs"):
        parts.append(f"{totals['interrupted_runs']} interrupted runs")
    return "faults: " + ", ".join(parts)


def phase_rows(events: Sequence[dict], limit: int = 0) -> List[dict]:
    """Per-phase aggregate rows sorted by cumulative self time, descending."""
    totals = summarize_events(events)
    rows = [
        {
            "phase": name,
            "calls": int(entry["calls"]),
            "cum_s": entry["cum_s"],
            "self_s": entry["self_s"],
        }
        for name, entry in totals.items()
    ]
    rows.sort(key=lambda row: (-row["self_s"], row["phase"]))
    return rows[:limit] if limit else rows


def counter_rows(events: Sequence[dict]) -> List[dict]:
    """Aggregate domain counters across all spans, sorted by name.

    Spans accumulate counters via :func:`repro.telemetry.count` (cache
    hits, memo evictions, sampled pairs, ...); this sums each counter over
    the whole event log so ``repro stats`` surfaces e.g. how many distance
    rows or path tables a sweep evicted without reading flame views.
    """
    totals: Dict[str, float] = defaultdict(float)
    calls: Dict[str, int] = defaultdict(int)
    for event in events:
        for key, value in (event.get("counters") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                totals[key] += value
                calls[key] += 1
    return [
        {"counter": name, "total": totals[name], "spans": calls[name]}
        for name in sorted(totals)
    ]


def render_counter_table(rows: List[dict]) -> str:
    lines = [f"{'counter':<28} {'total':>14} {'spans':>8}"]
    for row in rows:
        total = row["total"]
        rendered = f"{total:.4g}" if total != int(total) else f"{int(total)}"
        lines.append(f"{row['counter']:<28} {rendered:>14} {row['spans']:>8}")
    return "\n".join(lines)


def span_coverage(
    records: Sequence[RunRecord], events: Sequence[dict]
) -> Optional[Tuple[float, float, float]]:
    """``(root_span_seconds, executed_seconds, fraction)`` or ``None``.

    Root spans (depth 0) are the outermost instrumented units -- the
    engine wraps every executed point in one -- so their cumulative time
    over the executed wall time from the manifests measures how much of
    the run the instrumentation actually saw.
    """
    executed = sum(d for record in records for d in record.executed_durations())
    if executed <= 0.0 or not events:
        return None
    root_seconds = sum(e["dur_s"] for e in events if e.get("depth", 0) == 0)
    return root_seconds, executed, root_seconds / executed


def _format_seconds(seconds: float) -> str:
    if seconds != seconds:  # NaN
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_experiment_table(rows: List[dict]) -> str:
    lines = [
        f"{'experiment':<16} {'runs':>5} {'points':>7} {'cached':>7} "
        f"{'hit rate':>9} {'fail':>5} {'retry':>6} {'deg':>5} {'p50':>9} "
        f"{'p95':>9} {'peak rss':>10}"
    ]
    for row in rows:
        hit = "-" if row["hit_rate"] != row["hit_rate"] else f"{row['hit_rate']:.0%}"
        rss = f"{row['peak_rss_kb'] / 1024:.0f} MB" if row["peak_rss_kb"] else "-"
        lines.append(
            f"{row['experiment']:<16} {row['runs']:>5} {row['points']:>7} "
            f"{row['cached']:>7} {hit:>9} {row.get('failed', 0):>5} "
            f"{row.get('retries', 0):>6} {row.get('degraded', 0):>5} "
            f"{_format_seconds(row['p50_s']):>9} "
            f"{_format_seconds(row['p95_s']):>9} {rss:>10}"
        )
    return "\n".join(lines)


def render_phase_table(rows: List[dict]) -> str:
    lines = [f"{'phase':<28} {'calls':>8} {'cum':>10} {'self':>10}"]
    for row in rows:
        lines.append(
            f"{row['phase']:<28} {row['calls']:>8} "
            f"{_format_seconds(row['cum_s']):>10} "
            f"{_format_seconds(row['self_s']):>10}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Flame view
# --------------------------------------------------------------------------- #
def _children_index(events: Sequence[dict]) -> Dict[Tuple[int, int], List[dict]]:
    """Map ``(pid, parent span index)`` to children in start order."""
    children: Dict[Tuple[int, int], List[dict]] = defaultdict(list)
    for event in events:
        parent = event.get("parent")
        if parent is not None:
            children[(event.get("pid", 0), parent)].append(event)
    for bucket in children.values():
        bucket.sort(key=lambda e: e.get("t", 0.0))
    return children


def select_flame_root(events: Sequence[dict], name: str = "") -> Optional[dict]:
    """Slowest root span, optionally restricted to spans named ``name``."""
    roots = [
        e
        for e in events
        if e.get("depth", 0) == 0 and (not name or e["name"] == name)
    ]
    if not roots and name:  # fall back to any span with that name
        roots = [e for e in events if e["name"] == name]
    if not roots:
        return None
    return max(roots, key=lambda e: e["dur_s"])


def _counters_inline(event: dict) -> str:
    counters = event.get("counters") or {}
    if not counters:
        return ""
    parts = []
    for key in sorted(counters):
        value = counters[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def render_flame(events: Sequence[dict], name: str = "") -> str:
    """Text flame view of one span tree (the slowest matching root)."""
    root = select_flame_root(events, name)
    if root is None:
        target = f" named {name!r}" if name else ""
        return f"no spans{target} in the event log"
    children = _children_index(events)
    total = root["dur_s"] or 1e-12
    lines = [
        f"flame: {root['name']} ({_format_seconds(root['dur_s'])}, "
        f"pid {root.get('pid', '?')})"
    ]

    def emit(event: dict, indent: int) -> None:
        share = max(min(event["dur_s"] / total, 1.0), 0.0)
        bar = "#" * max(int(round(share * FLAME_BAR_WIDTH)), 1)
        lines.append(
            f"{'  ' * indent}{bar:<{FLAME_BAR_WIDTH}} "
            f"{_format_seconds(event['dur_s']):>9}  {event['name']}"
            f"{_counters_inline(event)}"
        )
        for child in children.get((event.get("pid", 0), event["i"]), []):
            emit(child, indent + 1)

    emit(root, 0)
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Top-level rendering
# --------------------------------------------------------------------------- #
def render_stats(
    records: Sequence[RunRecord],
    events: Sequence[dict] = (),
    flame: Optional[str] = None,
    limit: int = 15,
) -> str:
    """The full ``repro stats`` output for the given artifacts."""
    sections: List[str] = []
    if records:
        sections.append(
            f"run manifests: {len(records)}\n" + render_experiment_table(
                experiment_rows(records)
            )
        )
        faults = fault_summary(records)
        if any(faults.values()):
            sections.append(render_fault_summary(faults))
    else:
        sections.append("run manifests: none found")
    if events:
        sections.append(
            f"span events: {len(events)}\n" + render_phase_table(
                phase_rows(events, limit=limit)
            )
        )
        counters = counter_rows(events)
        if counters:
            sections.append(
                "domain counters:\n" + render_counter_table(counters)
            )
        coverage = span_coverage(records, events)
        if coverage is not None:
            root_s, executed_s, fraction = coverage
            sections.append(
                f"span coverage: {_format_seconds(root_s)} of "
                f"{_format_seconds(executed_s)} executed wall time "
                f"({fraction:.0%})"
            )
    if flame is not None:
        sections.append(render_flame(events, flame))
    return "\n\n".join(sections)
