"""Traffic matrices.

The paper's standard workload is *random permutation traffic*: every server
sends at its full line rate to exactly one other server and receives from
exactly one other server, with the permutation drawn uniformly at random
(Section 4, "Evaluation methodology").  All-to-all, stride and hotspot
patterns are provided for additional experiments and tests.

A :class:`TrafficMatrix` holds server-level demands; because the flow and
simulation machinery routes between switches, it also exposes the demands
aggregated to (source switch, destination switch) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.topologies.base import Topology
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive

Server = Tuple[Hashable, int]


@dataclass
class Demand:
    """A single server-to-server demand."""

    source: Server
    destination: Server
    rate: float

    @property
    def source_switch(self) -> Hashable:
        return self.source[0]

    @property
    def destination_switch(self) -> Hashable:
        return self.destination[0]


@dataclass
class TrafficMatrix:
    """Collection of server-level demands over a topology."""

    demands: List[Demand] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.demands)

    def __iter__(self):
        return iter(self.demands)

    def total_demand(self) -> float:
        return sum(d.rate for d in self.demands)

    def switch_pairs(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """Aggregate demands by (source switch, destination switch).

        Demands whose endpoints share a switch never touch the network and
        are excluded.
        """
        aggregated: Dict[Tuple[Hashable, Hashable], float] = {}
        for demand in self.demands:
            src, dst = demand.source_switch, demand.destination_switch
            if src == dst:
                continue
            key = (src, dst)
            aggregated[key] = aggregated.get(key, 0.0) + demand.rate
        return aggregated

    def scaled(self, factor: float) -> "TrafficMatrix":
        """Return a copy with every demand multiplied by ``factor``."""
        require_positive(factor, "factor")
        return TrafficMatrix(
            [Demand(d.source, d.destination, d.rate * factor) for d in self.demands]
        )


def random_permutation_traffic(
    topology: Topology, rate: float = 1.0, rng: RngLike = None
) -> TrafficMatrix:
    """Random permutation traffic at the server level.

    Each server sends ``rate`` to a single uniformly chosen other server and
    receives from a single other server.  Fixed points (a server sending to
    itself) are avoided by re-drawing, except in the degenerate one-server
    case where an empty matrix is returned.
    """
    require_positive(rate, "rate")
    rand = ensure_rng(rng)
    servers = [tuple(item) for item in topology.server_list()]
    if len(servers) < 2:
        return TrafficMatrix([])

    destinations = _random_derangement(servers, rand)
    demands = [
        Demand(source=src, destination=dst, rate=rate)
        for src, dst in zip(servers, destinations)
    ]
    return TrafficMatrix(demands)


def _random_derangement(items: List[Server], rand) -> List[Server]:
    """Uniform-ish random derangement (permutation without fixed points)."""
    while True:
        shuffled = items[:]
        rand.shuffle(shuffled)
        if all(a != b for a, b in zip(items, shuffled)):
            return shuffled


def all_to_all_traffic(topology: Topology, rate: float = 1.0) -> TrafficMatrix:
    """Every server sends ``rate`` split evenly to every other server."""
    require_positive(rate, "rate")
    servers = [tuple(item) for item in topology.server_list()]
    if len(servers) < 2:
        return TrafficMatrix([])
    per_pair = rate / (len(servers) - 1)
    demands = [
        Demand(source=src, destination=dst, rate=per_pair)
        for src in servers
        for dst in servers
        if src != dst
    ]
    return TrafficMatrix(demands)


def stride_traffic(topology: Topology, stride: int, rate: float = 1.0) -> TrafficMatrix:
    """Server ``i`` sends to server ``(i + stride) mod num_servers``."""
    require_positive(rate, "rate")
    servers = [tuple(item) for item in topology.server_list()]
    count = len(servers)
    if count < 2:
        return TrafficMatrix([])
    stride = stride % count
    if stride == 0:
        raise ValueError("stride must not be a multiple of the server count")
    demands = [
        Demand(source=servers[i], destination=servers[(i + stride) % count], rate=rate)
        for i in range(count)
    ]
    return TrafficMatrix(demands)


def hotspot_traffic(
    topology: Topology,
    num_hotspots: int = 1,
    rate: float = 1.0,
    rng: RngLike = None,
) -> TrafficMatrix:
    """All servers send to a small set of hotspot servers (skewed workload)."""
    require_positive(rate, "rate")
    rand = ensure_rng(rng)
    servers = [tuple(item) for item in topology.server_list()]
    if len(servers) < 2:
        return TrafficMatrix([])
    if not 1 <= num_hotspots < len(servers):
        raise ValueError("num_hotspots must be in [1, num_servers)")
    hotspots = rand.sample(servers, num_hotspots)
    hotspot_set = set(hotspots)
    demands = []
    for index, src in enumerate(servers):
        if src in hotspot_set:
            continue
        dst = hotspots[index % num_hotspots]
        demands.append(Demand(source=src, destination=dst, rate=rate))
    return TrafficMatrix(demands)
