"""Traffic matrices.

The paper's standard workload is *random permutation traffic*: every server
sends at its full line rate to exactly one other server and receives from
exactly one other server, with the permutation drawn uniformly at random
(Section 4, "Evaluation methodology").  All-to-all, stride and hotspot
patterns are provided for additional experiments and tests.

A :class:`TrafficMatrix` holds server-level demands; because the flow and
simulation machinery routes between switches, it also exposes the demands
aggregated to (source switch, destination switch) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive

Server = Tuple[Hashable, int]


@dataclass(frozen=True)
class SwitchDemandArrays:
    """Aggregated switch-pair demands in array form.

    ``pairs[i]`` is the i-th demanded (source switch, destination switch)
    pair in first-occurrence order (the same order ``switch_pairs`` keys
    iterate); ``src``/``dst`` are the pairs as ``int32`` indices into the
    topology's sorted-switch index (the CSR node order) and ``rates`` the
    aggregated demand per pair.  Flow assembly consumes these instead of
    re-walking the server-level demand list dict-by-dict.
    """

    pairs: List[Tuple[Hashable, Hashable]]
    src: np.ndarray
    dst: np.ndarray
    rates: np.ndarray


@dataclass(frozen=True)
class Demand:
    """A single server-to-server demand.

    Frozen: the aggregation caches on :class:`TrafficMatrix` fingerprint the
    demand *list*, so the demands themselves must be immutable (derive a
    scaled copy with :meth:`TrafficMatrix.scaled` instead of editing rates).
    """

    source: Server
    destination: Server
    rate: float

    @property
    def source_switch(self) -> Hashable:
        return self.source[0]

    @property
    def destination_switch(self) -> Hashable:
        return self.destination[0]


@dataclass
class TrafficMatrix:
    """Collection of server-level demands over a topology."""

    demands: List[Demand] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.demands)

    def __iter__(self):
        return iter(self.demands)

    def total_demand(self) -> float:
        return sum(d.rate for d in self.demands)

    def _fingerprint(self) -> Tuple[Demand, ...]:
        """Snapshot of the demand list for the aggregation caches.

        A tuple of the demand objects themselves: caches compare it slot
        identity for slot identity (``is``, not ``==``), and the strong
        references keep object ids from being recycled, so a matching
        snapshot plus :class:`Demand` being frozen guarantees identical
        demands.  The identity sweep is C-level and far cheaper than
        re-aggregating.
        """
        return tuple(self.demands)

    @staticmethod
    def _fingerprint_matches(snapshot, demands) -> bool:
        return len(snapshot) == len(demands) and all(
            cached is current for cached, current in zip(snapshot, demands)
        )

    def switch_pairs(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """Aggregate demands by (source switch, destination switch).

        Demands whose endpoints share a switch never touch the network and
        are excluded.  The aggregation is memoized per demand-list state;
        treat the returned dict as read-only.
        """
        cached = getattr(self, "_pairs_cache", None)
        if cached is not None and self._fingerprint_matches(cached[0], self.demands):
            return cached[1]
        aggregated: Dict[Tuple[Hashable, Hashable], float] = {}
        for demand in self.demands:
            src, dst = demand.source_switch, demand.destination_switch
            if src == dst:
                continue
            key = (src, dst)
            aggregated[key] = aggregated.get(key, 0.0) + demand.rate
        self._pairs_cache = (self._fingerprint(), aggregated)
        return aggregated

    def as_switch_array(self, index_of: Dict[Hashable, int]) -> SwitchDemandArrays:
        """Aggregated demand triplets as numpy arrays (cached).

        ``index_of`` maps switches to the topology's sorted-switch index
        (``csr.index_of``); pass the same mapping object to hit the cache.
        Pair order is the ``switch_pairs`` first-occurrence order, and the
        per-pair rates are the exact same floats, so LP rows assembled from
        these arrays are bit-identical to the dict walk they replace.
        """
        cached = getattr(self, "_array_cache", None)
        if (
            cached is not None
            and cached[0] is index_of
            and self._fingerprint_matches(cached[1], self.demands)
        ):
            return cached[2]
        pairs_dict = self.switch_pairs()
        pairs = list(pairs_dict)
        arrays = SwitchDemandArrays(
            pairs=pairs,
            src=np.asarray([index_of[src] for src, _ in pairs], dtype=np.int32),
            dst=np.asarray([index_of[dst] for _, dst in pairs], dtype=np.int32),
            rates=np.asarray(list(pairs_dict.values()), dtype=np.float64),
        )
        self._array_cache = (index_of, self._fingerprint(), arrays)
        return arrays

    def scaled(self, factor: float) -> "TrafficMatrix":
        """Return a copy with every demand multiplied by ``factor``."""
        require_positive(factor, "factor")
        return TrafficMatrix(
            [Demand(d.source, d.destination, d.rate * factor) for d in self.demands]
        )


def random_permutation_traffic(
    topology: Topology, rate: float = 1.0, rng: RngLike = None
) -> TrafficMatrix:
    """Random permutation traffic at the server level.

    Each server sends ``rate`` to a single uniformly chosen other server and
    receives from a single other server.  Fixed points (a server sending to
    itself) are avoided by re-drawing, except in the degenerate one-server
    case where an empty matrix is returned.
    """
    require_positive(rate, "rate")
    rand = ensure_rng(rng)
    servers = [tuple(item) for item in topology.server_list()]
    if len(servers) < 2:
        return TrafficMatrix([])

    destinations = _random_derangement(servers, rand)
    demands = [
        Demand(source=src, destination=dst, rate=rate)
        for src, dst in zip(servers, destinations)
    ]
    return TrafficMatrix(demands)


def _random_derangement(items: List[Server], rand) -> List[Server]:
    """Uniform-ish random derangement (permutation without fixed points)."""
    while True:
        shuffled = items[:]
        rand.shuffle(shuffled)
        if all(a != b for a, b in zip(items, shuffled)):
            return shuffled


def all_to_all_traffic(topology: Topology, rate: float = 1.0) -> TrafficMatrix:
    """Every server sends ``rate`` split evenly to every other server."""
    require_positive(rate, "rate")
    servers = [tuple(item) for item in topology.server_list()]
    if len(servers) < 2:
        return TrafficMatrix([])
    per_pair = rate / (len(servers) - 1)
    demands = [
        Demand(source=src, destination=dst, rate=per_pair)
        for src in servers
        for dst in servers
        if src != dst
    ]
    return TrafficMatrix(demands)


def stride_traffic(topology: Topology, stride: int, rate: float = 1.0) -> TrafficMatrix:
    """Server ``i`` sends to server ``(i + stride) mod num_servers``."""
    require_positive(rate, "rate")
    servers = [tuple(item) for item in topology.server_list()]
    count = len(servers)
    if count < 2:
        return TrafficMatrix([])
    stride = stride % count
    if stride == 0:
        raise ValueError("stride must not be a multiple of the server count")
    demands = [
        Demand(source=servers[i], destination=servers[(i + stride) % count], rate=rate)
        for i in range(count)
    ]
    return TrafficMatrix(demands)


def hotspot_traffic(
    topology: Topology,
    num_hotspots: int = 1,
    rate: float = 1.0,
    rng: RngLike = None,
) -> TrafficMatrix:
    """All servers send to a small set of hotspot servers (skewed workload)."""
    require_positive(rate, "rate")
    rand = ensure_rng(rng)
    servers = [tuple(item) for item in topology.server_list()]
    if len(servers) < 2:
        return TrafficMatrix([])
    if not 1 <= num_hotspots < len(servers):
        raise ValueError("num_hotspots must be in [1, num_servers)")
    hotspots = rand.sample(servers, num_hotspots)
    hotspot_set = set(hotspots)
    demands = []
    for index, src in enumerate(servers):
        if src in hotspot_set:
            continue
        dst = hotspots[index % num_hotspots]
        demands.append(Demand(source=src, destination=dst, rate=rate))
    return TrafficMatrix(demands)
