"""Traffic matrices used by the evaluation."""

from repro.traffic.matrices import (
    TrafficMatrix,
    all_to_all_traffic,
    hotspot_traffic,
    random_permutation_traffic,
    stride_traffic,
)

__all__ = [
    "TrafficMatrix",
    "all_to_all_traffic",
    "hotspot_traffic",
    "random_permutation_traffic",
    "stride_traffic",
]
