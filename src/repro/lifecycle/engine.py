"""The lifecycle engine: drive a topology through months of simulated time.

:func:`run_lifecycle` walks a deterministic event stream
(:mod:`repro.lifecycle.events`) over a :class:`~repro.lifecycle.state.LifecycleState`,
asking a metric backend for a degradation snapshot after every event and a
full traffic evaluation at every epoch.  Two backends exist:

* :class:`~repro.lifecycle.metrics.IncrementalMetrics` (default) maintains
  components by scoped re-sweeps and routes epochs through the shared
  content-hash caches;
* :class:`~repro.lifecycle._reference.ColdMetrics` rebuilds everything per
  event -- the parity pin and the benchmark baseline.

Epoch evaluations are the expensive, externally-visible unit, so they get
the sweep engine's operational treatment: each epoch has a stable scenario
hash (a pure function of config hash, family label, seed, and epoch
index), runs under the chaos harness's ``on_execute`` hook with bounded
retries, and is reported through an observer callback shaped exactly like
a :class:`~repro.engine.runner.PointOutcome` -- which is what lets
:class:`~repro.telemetry.manifest.RunRecorder` journal per-epoch records
and ``repro lifecycle run --resume`` skip already-journaled epochs without
re-evaluating them (safe because every epoch draws from its own derived
generator).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lifecycle.events import (
    EPOCH,
    LifecycleConfig,
    LifecycleEvent,
    generate_events,
)
from repro.lifecycle.state import LifecycleState
from repro.testing.chaos import ChaosError, active_plan
from repro.topologies.base import Topology

#: Target name epochs execute under (chaos rules and manifests match on it).
EPOCH_TARGET = "repro.lifecycle.engine:evaluate_epoch"


def epoch_hash(config: LifecycleConfig, family: str, seed, epoch_index: int) -> str:
    """Stable identity of one epoch evaluation (journal / chaos key)."""
    payload = f"{config.config_hash()}:{family}:{seed}:epoch:{epoch_index}"
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class _EpochPoint:
    """Duck-typed ``ScenarioPoint`` for observer/manifest plumbing."""

    scenario_hash: str
    target: str = EPOCH_TARGET


@dataclass(frozen=True)
class _EpochFailure:
    kind: str
    message: str
    exitcode: Optional[int] = None

    def as_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message, "exitcode": self.exitcode}


@dataclass(frozen=True)
class EpochOutcome:
    """Observer-visible result of one epoch (``PointOutcome``-shaped)."""

    point: _EpochPoint
    value: Optional[dict]
    cached: bool
    duration_s: float
    status: str = "ok"
    attempts: int = 1
    failure: Optional[_EpochFailure] = None
    worker: int = 0
    peak_rss_kb: int = 0


Observer = Callable[[int, int, EpochOutcome], None]


@dataclass
class LifecycleResult:
    """Everything a lifecycle run produced."""

    family: str
    backend: str
    seed: Optional[int]
    config_hash: str
    events_applied: int = 0
    #: One row per applied event: kind, time, and the degradation snapshot.
    event_log: List[dict] = field(default_factory=list)
    #: One row per epoch: timestamp, throughput metrics, snapshot fields.
    epochs: List[dict] = field(default_factory=list)
    failed_epochs: int = 0
    duration_s: float = 0.0

    def epoch_column(self, name: str) -> List:
        return [record[name] for record in self.epochs]

    def time_average(self, name: str) -> float:
        """Epoch-weighted mean of one epoch metric (0.0 when empty)."""
        values = [
            record[name] for record in self.epochs if record.get(name) is not None
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)


def run_lifecycle(
    plant: Topology,
    config: LifecycleConfig,
    seed: Optional[int] = 0,
    backend: str = "incremental",
    family: Optional[str] = None,
    completed: Optional[Dict[str, dict]] = None,
    observer: Optional[Observer] = None,
    max_attempts: int = 3,
    events: Optional[List[LifecycleEvent]] = None,
) -> LifecycleResult:
    """Run one lifecycle; returns the full metric trajectory.

    ``plant`` is mutated in place by expansion events -- pass a dedicated
    instance.  ``completed`` maps epoch scenario hashes to previously
    journaled epoch records (see
    :func:`repro.telemetry.manifest.load_journal`); matching epochs are
    **not** re-evaluated, which is safe because epoch traffic and metrics
    derive from ``(seed, epoch_index)`` alone.  ``observer`` receives one
    :class:`EpochOutcome` per epoch, shaped for
    :meth:`repro.telemetry.manifest.RunRecorder.observe`.
    """
    if backend == "incremental":
        from repro.lifecycle.metrics import IncrementalMetrics as backend_cls
    elif backend == "reference":
        from repro.lifecycle._reference import ColdMetrics as backend_cls
    else:
        raise ValueError(f"unknown backend {backend!r}")
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")

    family = family if family is not None else plant.name
    started = time.perf_counter()
    state = LifecycleState(plant, config, seed)
    metrics = backend_cls(state)
    stream = events if events is not None else generate_events(config, seed)
    total_epochs = sum(1 for event in stream if event.kind == EPOCH)

    result = LifecycleResult(
        family=family,
        backend=backend,
        seed=seed,
        config_hash=config.config_hash(),
    )
    epochs_done = 0
    for event in stream:
        delta = state.apply(event)
        metrics.on_event(delta)
        snapshot = metrics.snapshot()
        result.events_applied += 1
        result.event_log.append(
            {"kind": event.kind, "time_h": event.time_h, "key": event.key, **snapshot}
        )
        if event.kind != EPOCH:
            continue

        scenario = epoch_hash(config, family, seed, event.key)
        record: Optional[dict] = None
        cached = False
        status = "ok"
        attempts = 0
        failure: Optional[_EpochFailure] = None
        epoch_started = time.perf_counter()
        if completed is not None and scenario in completed:
            record = dict(completed[scenario])
            cached = True
            status = "journaled"
        else:
            plan = active_plan()
            while attempts < max_attempts:
                attempts += 1
                try:
                    if plan is not None:
                        plan.on_execute(
                            index=event.key,
                            scenario_hash=scenario,
                            target=EPOCH_TARGET,
                            attempt=attempts,
                        )
                    record = {
                        "epoch": event.key,
                        "time_h": event.time_h,
                        **metrics.epoch(event.key),
                        **snapshot,
                        "failed_links": len(state.failed_link_pairs),
                        "failed_switches": len(state.failed_switch_set),
                    }
                    break
                except ChaosError as error:
                    failure = _EpochFailure("error", str(error))
            if record is None:
                status = "failed"
                result.failed_epochs += 1

        duration = time.perf_counter() - epoch_started
        if record is not None:
            result.epochs.append(record)
        epochs_done += 1
        if observer is not None:
            observer(
                epochs_done,
                total_epochs,
                EpochOutcome(
                    point=_EpochPoint(scenario_hash=scenario),
                    value=record,
                    cached=cached,
                    duration_s=duration,
                    status=status,
                    attempts=attempts,
                    failure=failure if status == "failed" else None,
                ),
            )

    result.duration_s = time.perf_counter() - started
    return result


# --------------------------------------------------------------------------- #
# Scenario target: one lifecycle as one sweep point (fig08-lifecycle)
# --------------------------------------------------------------------------- #


def _build_plant(family: str, params: dict) -> Topology:
    if family == "fattree":
        from repro.topologies.fattree import FatTreeTopology

        return FatTreeTopology.build(params["ports"])
    if family == "jellyfish":
        from repro.topologies.jellyfish import JellyfishTopology

        return JellyfishTopology.from_equipment(
            num_switches=params["num_switches"],
            ports_per_switch=params["ports"],
            num_servers=params["num_servers"],
            rng=params.get("build_seed", 0),
        )
    raise ValueError(f"unknown topology family {family!r}")


def lifecycle_point(
    family: str,
    ports: int,
    num_switches: int = 0,
    num_servers: int = 0,
    build_seed: int = 0,
    seed: Optional[int] = 0,
    backend: str = "incremental",
    **config_kwargs,
) -> dict:
    """Scenario target: run one family's lifecycle, return a JSON-able dict.

    The event stream depends only on ``(config, seed)``, so two points that
    share those (the ``fig08-lifecycle`` Jellyfish and fat-tree rows) live
    through identical schedules of adversity.
    """
    config = LifecycleConfig(**config_kwargs)
    plant = _build_plant(
        family,
        {
            "ports": ports,
            "num_switches": num_switches,
            "num_servers": num_servers,
            "build_seed": build_seed,
        },
    )
    result = run_lifecycle(plant, config, seed=seed, backend=backend, family=family)
    return {
        "family": family,
        "backend": result.backend,
        "config_hash": result.config_hash,
        "events_applied": result.events_applied,
        "failed_epochs": result.failed_epochs,
        "plant_servers": sum(plant.servers.values()),
        "plant_switches": plant.num_switches,
        "epochs": result.epochs,
    }
