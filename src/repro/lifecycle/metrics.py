"""Incremental metric maintenance between lifecycle events.

A lifecycle applies hundreds to thousands of small topology mutations, and
after every one the engine records a degradation snapshot (components,
stranded servers, server-pair availability).  Recomputing that from scratch
means rebuilding the current topology and relabeling every component per
event -- the cold-rebuild reference in :mod:`repro.lifecycle._reference`
does exactly that and exists to be compared against.  This module maintains
the component structure **incrementally**:

* a link failure triggers one *scoped* BFS inside the touched component,
  with early exit as soon as the far endpoint is reached (the common case:
  most single-link failures do not split a random graph);
* a link repair merges at most two components by relabeling the smaller;
* a switch failure re-sweeps only the members of the component it left;
* a switch repair merges the touched components around the returning node;
* expansion rewires randomly across the whole interconnect, so its dirty
  region *is* the graph: the backend relabels once per batch (rare) rather
  than once per event (every event, like the reference).

Epoch evaluations route through the content-hash-keyed shared path/capacity
caches, so a lifecycle that revisits a state (fail + repair is a round
trip) prices the revisit at a cache hit instead of a Yen recomputation.
Both backends call the same snapshot arithmetic
(:func:`component_summary` / :func:`availability`) and the same epoch
kernel (:func:`evaluate_epoch`), which is what the parity suite pins:
identical trajectories, float for float.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.lifecycle.events import LifecycleConfig
from repro.lifecycle.state import (
    LINK_DOWN,
    LINK_UP,
    NOOP,
    REBUILD,
    SWITCH_DOWN,
    SWITCH_UP,
    LifecycleState,
    _node_key,
)
from repro.topologies.base import Topology
from repro.traffic.matrices import random_permutation_traffic

# --------------------------------------------------------------------------- #
# Shared snapshot arithmetic (both backends call these; parity depends on it)
# --------------------------------------------------------------------------- #


def availability(component_servers: Iterable[int], baseline_servers: int) -> float:
    """Fraction of baseline server pairs that can still exchange traffic.

    ``sum(C(s_c, 2)) / C(baseline, 2)`` over the current components; the
    baseline is the *plant's* server count, so servers on failed switches
    depress availability exactly like stranded ones.  Fewer than two
    baseline servers means no pairs were ever promised: availability 1.0.
    """
    if baseline_servers < 2:
        return 1.0
    pairs = sum(count * (count - 1) // 2 for count in component_servers)
    return pairs / (baseline_servers * (baseline_servers - 1) // 2)


def component_summary(
    components: List[Tuple[int, int, str]], plant_servers: int
) -> Dict[str, object]:
    """Snapshot fields from per-component ``(servers, switches, key)`` rows.

    The principal component is the one hosting the most servers (ties: most
    switches, then smallest member ``repr``) -- the same ordering
    :mod:`repro.failures.degradation` uses, computable identically from a
    CSR labeling or an incremental membership table.
    """
    current_servers = sum(servers for servers, _, _ in components)
    current_switches = sum(switches for _, switches, _ in components)
    if components:
        principal = min(components, key=lambda c: (-c[0], -c[1], c[2]))
        principal_servers, principal_switches = principal[0], principal[1]
    else:
        principal_servers = principal_switches = 0
    return {
        "num_components": len(components),
        "switches": current_switches,
        "servers": current_servers,
        "principal_servers": principal_servers,
        "principal_switches": principal_switches,
        "stranded_servers": plant_servers - principal_servers,
        "availability": availability(
            (servers for servers, _, _ in components), plant_servers
        ),
    }


def evaluate_epoch(
    topology: Topology,
    config: LifecycleConfig,
    seed: Optional[int],
    epoch_index: int,
    plant_servers: int,
    path_set=None,
) -> Dict[str, float]:
    """Throughput metrics for one epoch on the current topology.

    Traffic depends on ``config.traffic``:

    * ``"per-epoch"`` (default): an independent random permutation per
      epoch, drawn from a generator derived from ``(seed, epoch_index)``
      alone -- never from a shared stream -- so epochs can be skipped
      (resume) or recomputed in any order without perturbing each other;
    * ``"fixed"``: one tracked workload, drawn from a generator derived
      from ``seed`` alone.  The whole evaluation is then a pure function
      of the topology *state* (the generator's remaining stream after the
      draw depends only on the server list), which is what lets the
      incremental backend memoize epochs by content hash -- a lifecycle
      that revisits a state (fail + repair is a round trip) prices the
      revisit at a dictionary lookup.

    Unreachable pairs ride the degradation contract: they are routed
    around (skip-mode path sets) and scored at exactly 0.0; if failures
    leave fewer than two servers while the plant promised more, the epoch
    scores 0.0 outright.
    """
    if config.traffic == "fixed":
        rand = random.Random(f"lifecycle:{seed}:traffic")
    else:
        rand = random.Random(f"lifecycle:{seed}:epoch:{epoch_index}")
    traffic = random_permutation_traffic(topology, rng=rand)
    if not traffic and plant_servers >= 2:
        # Fewer than two servers survive: every promised pair is lost.
        if config.epoch_engine == "path":
            return {"throughput": 0.0, "num_flows": 0.0}
        return {"throughput": 0.0, "fairness": 1.0, "num_flows": 0.0}
    if config.epoch_engine == "path":
        from repro.flow.throughput import degraded_throughput

        outcome = degraded_throughput(
            topology,
            traffic=traffic,
            engine="path",
            k=config.k,
            baseline_servers=plant_servers,
        )
        return {
            "throughput": outcome.normalized,
            "num_flows": float(outcome.num_flows),
        }

    from repro.simulation.fluid import SimulationConfig, simulate_fluid

    sim_config = SimulationConfig(
        routing=config.routing,
        k=config.k,
        congestion_control=config.congestion_control,
    )
    result = simulate_fluid(
        topology, traffic, sim_config, rng=rand, path_set=path_set
    )
    return {
        "throughput": result.average_throughput,
        "fairness": result.fairness,
        "num_flows": float(len(result.flow_throughputs)),
    }


# --------------------------------------------------------------------------- #
# The incremental backend
# --------------------------------------------------------------------------- #


class IncrementalMetrics:
    """Component structure maintained by scoped re-sweeps.

    Invariants: ``comp_of`` maps every alive node to a component id,
    ``members`` maps every live component id to its node set, and
    ``adjacency`` mirrors the state's current (alive-only) adjacency.
    Component ids are arbitrary ints -- snapshots never expose them.
    """

    name = "incremental"

    def __init__(self, state: LifecycleState):
        self.state = state
        self.adjacency: Dict[Hashable, Set[Hashable]] = {}
        self.comp_of: Dict[Hashable, int] = {}
        self.members: Dict[int, Set[Hashable]] = {}
        self._next_comp = 0
        #: Cached per-component snapshot rows; components touched since the
        #: last snapshot are in ``_dirty`` and recomputed lazily, so a
        #: snapshot prices at the *changed region*, not the whole graph.
        self._rows: Dict[int, Tuple[int, int, str]] = {}
        self._dirty: Set[int] = set()
        #: Epoch metrics memoized by topology content hash -- sound only
        #: under ``traffic="fixed"``, where an epoch is a pure function of
        #: the state (cleared on expansion, which changes the plant).
        self._epoch_memo: Dict[str, Dict[str, float]] = {}
        self._rebuild()

    # -- full relabel (construction and expansion only) -----------------
    def _rebuild(self) -> None:
        self.adjacency = self.state.current_adjacency()
        self.comp_of = {}
        self.members = {}
        self._rows = {}
        self._dirty = set()
        self._epoch_memo = {}
        self._next_comp = 0
        for node in self.adjacency:
            if node in self.comp_of:
                continue
            comp = self._new_comp()
            self._claim(comp, self._reach(node, self.adjacency))
        # NB: sweep order does not matter -- ids never leave the backend.

    def _new_comp(self) -> int:
        comp = self._next_comp
        self._next_comp += 1
        self.members[comp] = set()
        self._dirty.add(comp)
        return comp

    def _claim(self, comp: int, nodes: Set[Hashable]) -> None:
        self.members[comp] |= nodes
        self._dirty.add(comp)
        for node in nodes:
            self.comp_of[node] = comp

    def _drop_comp(self, comp: int) -> Set[Hashable]:
        self._dirty.discard(comp)
        self._rows.pop(comp, None)
        return self.members.pop(comp)

    def _reach(
        self,
        start: Hashable,
        adjacency: Dict[Hashable, Set[Hashable]],
        stop_at: Optional[Hashable] = None,
    ) -> Set[Hashable]:
        """BFS closure of ``start``; early-exits if ``stop_at`` is met.

        On early exit the returned set is partial -- callers only use it to
        answer "is ``stop_at`` reachable", never as a component.
        """
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor in seen:
                        continue
                    if neighbor == stop_at:
                        seen.add(neighbor)
                        return seen
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return seen

    # -- delta application ----------------------------------------------
    def on_event(self, delta: Tuple) -> None:
        kind = delta[0]
        if kind == NOOP:
            return
        if kind == REBUILD:
            self._rebuild()
            return
        if kind == LINK_DOWN:
            _, u, v = delta
            self.adjacency[u].discard(v)
            self.adjacency[v].discard(u)
            side = self._reach(u, self.adjacency, stop_at=v)
            if v in side:
                return  # still one component: the common, cheap case
            old = self.comp_of[u]
            self.members[old] -= side
            self._dirty.add(old)
            self._claim(self._new_comp(), side)
            return
        if kind == LINK_UP:
            _, u, v = delta
            self.adjacency[u].add(v)
            self.adjacency[v].add(u)
            self._merge_into(self.comp_of[u], [self.comp_of[v]])
            return
        if kind == SWITCH_DOWN:
            _, node, neighbors = delta
            comp = self.comp_of.pop(node)
            remnant = self._drop_comp(comp) - {node}
            del self.adjacency[node]
            for neighbor in neighbors:
                self.adjacency[neighbor].discard(node)
            # Re-sweep only the remnant of the component the switch left.
            unvisited = set(remnant)
            while unvisited:
                start = next(iter(unvisited))
                piece = self._reach(start, self.adjacency)
                self._claim(self._new_comp(), piece)
                unvisited -= piece
            return
        if kind == SWITCH_UP:
            _, node, neighbors = delta
            self.adjacency[node] = set(neighbors)
            for neighbor in neighbors:
                self.adjacency[neighbor].add(node)
            comp = self._new_comp()
            self._claim(comp, {node})
            self._merge_into(
                comp, [self.comp_of[neighbor] for neighbor in neighbors]
            )
            return
        raise ValueError(f"unknown delta {kind!r}")

    def _merge_into(self, comp: int, others: List[int]) -> None:
        """Union components, always relabeling the smaller member sets."""
        distinct = {comp}
        distinct.update(others)
        if len(distinct) == 1:
            return
        largest = max(distinct, key=lambda c: len(self.members[c]))
        for other in distinct - {largest}:
            self._claim(largest, self._drop_comp(other))

    # -- outputs ---------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        for comp in self._dirty:
            nodes = self.members.get(comp)
            if not nodes:
                self._rows.pop(comp, None)
                continue
            self._rows[comp] = (
                sum(self.state.servers_of(node) for node in nodes),
                len(nodes),
                min(_node_key(node) for node in nodes),
            )
        self._dirty.clear()
        return component_summary(
            list(self._rows.values()), self.state.plant_servers()
        )

    def epoch(self, epoch_index: int) -> Dict[str, float]:
        topology = self.state.materialize()
        config = self.state.config
        if config.traffic != "fixed":
            return evaluate_epoch(
                topology, config, self.state.seed, epoch_index,
                self.state.plant_servers(),
            )
        if topology.graph.number_of_nodes():
            key = topology.csr().content_hash
        else:
            key = "empty"
        hit = self._epoch_memo.get(key)
        if hit is not None:
            return dict(hit)
        record = evaluate_epoch(
            topology, config, self.state.seed, epoch_index,
            self.state.plant_servers(),
        )
        self._epoch_memo[key] = dict(record)
        return record
