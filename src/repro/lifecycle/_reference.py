"""Cold-rebuild reference backend for the lifecycle engine.

The semantic pin for :class:`~repro.lifecycle.metrics.IncrementalMetrics`,
in the same spirit as :mod:`repro.flow._reference` and
:mod:`repro.simulation._reference`: after **every** event it materializes
the current topology from scratch and runs a full CSR component labeling,
and before **every** epoch it clears the shared path / capacity / CSR
caches so routing is recomputed cold.  Nothing is carried between events,
which makes it trivially correct -- and makes the incremental backend's
speedup measurable honestly (``benchmarks/record_lifecycle.py``).

Snapshots and epoch evaluations go through the *same* arithmetic as the
incremental backend (:func:`~repro.lifecycle.metrics.component_summary`,
:func:`~repro.lifecycle.metrics.evaluate_epoch`), so the parity suite can
require identical metric trajectories, float for float, not merely close
ones.  Production code never imports this module.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.csr import clear_csr_cache
from repro.graphs.properties import csr_component_labels
from repro.lifecycle.metrics import component_summary, evaluate_epoch
from repro.lifecycle.state import LifecycleState, _node_key
from repro.routing.paths import clear_shared_path_sets
from repro.simulation.capacity import clear_capacity_cache


class ColdMetrics:
    """Rebuild-everything backend: correct by construction, slow on purpose."""

    name = "reference"

    def __init__(self, state: LifecycleState):
        self.state = state
        self._components: List[Tuple[int, int, str]] = []
        self._relabel()

    def _relabel(self) -> None:
        """Full rebuild: fresh topology, fresh CSR, fresh labeling."""
        topology = self.state.materialize()
        if topology.graph.number_of_nodes() == 0:
            self._components = []
            return
        csr = topology.csr()
        labels = csr_component_labels(csr)
        rows: Dict[int, List] = {}
        for index, node in enumerate(csr.nodes):
            row = rows.setdefault(int(labels[index]), [0, 0, None])
            row[0] += topology.servers.get(node, 0)
            row[1] += 1
            key = _node_key(node)
            if row[2] is None or key < row[2]:
                row[2] = key
        self._components = [
            (servers, switches, key) for servers, switches, key in rows.values()
        ]

    def on_event(self, delta: Tuple) -> None:
        del delta  # the reference recomputes everything regardless
        self._relabel()

    def snapshot(self) -> Dict[str, object]:
        return component_summary(self._components, self.state.plant_servers())

    def epoch(self, epoch_index: int) -> Dict[str, float]:
        # Cold semantics: no warm routing state survives into an epoch.
        clear_shared_path_sets()
        clear_capacity_cache()
        clear_csr_cache()
        topology = self.state.materialize()
        return evaluate_epoch(
            topology,
            self.state.config,
            self.state.seed,
            epoch_index,
            self.state.plant_servers(),
        )
