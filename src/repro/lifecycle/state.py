"""Lifecycle state: the plant topology, the failed sets, and event application.

The *plant* is the as-built deployment -- every switch and cable that
exists, healthy or not.  It only changes on expansion.  The *current*
topology is the plant minus the failed sets: switches that are down take
their servers and cables with them; links that are down disappear while
both endpoints stay.

Event application is **backend-independent**: victims are drawn here, from
the surviving equipment, with a per-event string-seeded generator
(``lifecycle:<seed>:victim:<kind>:<key>``), so the metric backends
(:class:`~repro.lifecycle.metrics.IncrementalMetrics` and the cold-rebuild
reference) observe exactly the same state trajectory and can be compared
float-for-float.  Each applied event yields a small *delta* tuple -- the
touched endpoints -- which is all the incremental backend needs to scope
its re-sweeps; the reference backend ignores it and rebuilds.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.lifecycle.events import (
    EPOCH,
    EXPAND,
    LINK_FAIL,
    LINK_REPAIR,
    SWITCH_FAIL,
    SWITCH_REPAIR,
    LifecycleConfig,
    LifecycleEvent,
)
from repro.topologies.base import Topology

#: Delta kinds handed to metric backends.
LINK_DOWN = "link_down"
LINK_UP = "link_up"
SWITCH_DOWN = "switch_down"
SWITCH_UP = "switch_up"
REBUILD = "rebuild"
NOOP = "noop"


def _node_key(node: Hashable) -> str:
    """Total order over mixed label types (ints, strings, tuples)."""
    return repr(node)


class LifecycleState:
    """Plant + failed sets; applies events and yields deltas.

    The plant's adjacency is mirrored into an engine-owned dict so event
    application never touches ``Topology.core()`` caches; it is rebuilt
    from ``plant.graph`` only on expansion (the one event that mutates the
    plant in place).
    """

    def __init__(self, plant: Topology, config: LifecycleConfig, seed: Optional[int]):
        self.plant = plant
        self.config = config
        self.seed = seed
        self.plant_adjacency: Dict[Hashable, Set[Hashable]] = {}
        self._mirror_plant()
        #: fail-sequence key -> victim pair / switch (None for no-op fails).
        self.failed_links: Dict[int, Optional[Tuple[Hashable, Hashable]]] = {}
        self.failed_switches: Dict[int, Optional[Hashable]] = {}
        self.failed_link_pairs: Set[FrozenSet[Hashable]] = set()
        self.failed_switch_set: Set[Hashable] = set()

    # -- plant mirror ----------------------------------------------------
    def _mirror_plant(self) -> None:
        self.plant_adjacency = {
            node: set(self.plant.graph[node]) for node in self.plant.graph.nodes
        }
        # Canonical plant link list, sorted once per plant revision: victim
        # selection filters this instead of re-sorting ``repr`` keys on
        # every failure event.
        links = []
        for u in self.plant_adjacency:
            key_u = _node_key(u)
            for v in self.plant_adjacency[u]:
                key_v = _node_key(v)
                if key_u < key_v:
                    links.append((key_u, key_v, u, v))
        links.sort()
        self._plant_links = [(u, v) for _, _, u, v in links]
        self._plant_nodes = sorted(self.plant_adjacency, key=_node_key)
        self._plant_server_total = sum(self.plant.servers.values())

    # -- current-state views --------------------------------------------
    def is_alive(self, node: Hashable) -> bool:
        return node not in self.failed_switch_set

    def alive_nodes(self) -> List[Hashable]:
        return [
            node for node in self.plant_adjacency if node not in self.failed_switch_set
        ]

    def link_is_up(self, u: Hashable, v: Hashable) -> bool:
        return (
            u not in self.failed_switch_set
            and v not in self.failed_switch_set
            and frozenset((u, v)) not in self.failed_link_pairs
        )

    def alive_links(self) -> List[Tuple[Hashable, Hashable]]:
        """Surviving inter-switch links, in a deterministic order."""
        failed_switches = self.failed_switch_set
        failed_pairs = self.failed_link_pairs
        if not failed_switches and not failed_pairs:
            return list(self._plant_links)
        return [
            (u, v)
            for u, v in self._plant_links
            if u not in failed_switches
            and v not in failed_switches
            and frozenset((u, v)) not in failed_pairs
        ]

    def current_adjacency(self) -> Dict[Hashable, Set[Hashable]]:
        """Fresh alive-only adjacency (used to seed the metric backends)."""
        return {
            node: {
                neighbor
                for neighbor in self.plant_adjacency[node]
                if self.link_is_up(node, neighbor)
            }
            for node in self.alive_nodes()
        }

    def servers_of(self, node: Hashable) -> int:
        return self.plant.servers.get(node, 0)

    def plant_servers(self) -> int:
        return self._plant_server_total

    def materialize(self, name: Optional[str] = None) -> Topology:
        """The current topology as a fresh :class:`Topology`.

        Nodes and edges are inserted in ``repr`` order, so one *state*
        always materializes to one adjacency layout regardless of the event
        history that led there -- which is what lets the content-hash-keyed
        path/capacity caches recognize a revisited state.
        """
        nodes = sorted(self.alive_nodes(), key=_node_key)
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        for u in nodes:
            for v in sorted(self.plant_adjacency[u], key=_node_key):
                if _node_key(u) < _node_key(v) and self.link_is_up(u, v):
                    graph.add_edge(u, v)
        ports = {node: self.plant.ports.get(node, 0) for node in nodes}
        servers = {node: self.plant.servers.get(node, 0) for node in nodes}
        return Topology(
            graph, ports, servers, name=name or f"{self.plant.name}@lifecycle"
        )

    # -- event application ----------------------------------------------
    def _victim_rng(self, kind: str, key: int) -> random.Random:
        return random.Random(f"lifecycle:{self.seed}:victim:{kind}:{key}")

    def apply(self, event: LifecycleEvent) -> Tuple:
        """Apply one event; returns the delta for the metric backends."""
        kind = event.kind
        if kind == EPOCH:
            return (NOOP,)
        if kind == LINK_FAIL:
            links = self.alive_links()
            if not links:
                self.failed_links[event.key] = None
                return (NOOP,)
            u, v = links[self._victim_rng(kind, event.key).randrange(len(links))]
            self.failed_links[event.key] = (u, v)
            self.failed_link_pairs.add(frozenset((u, v)))
            return (LINK_DOWN, u, v)
        if kind == LINK_REPAIR:
            pair = self.failed_links.pop(event.key, None)
            if pair is None:
                return (NOOP,)
            u, v = pair
            self.failed_link_pairs.discard(frozenset((u, v)))
            if u in self.failed_switch_set or v in self.failed_switch_set:
                # The cable is fixed but an endpoint is down; the edge
                # returns with the switch repair.
                return (NOOP,)
            return (LINK_UP, u, v)
        if kind == SWITCH_FAIL:
            nodes = [
                node
                for node in self._plant_nodes
                if node not in self.failed_switch_set
            ]
            if not nodes:
                self.failed_switches[event.key] = None
                return (NOOP,)
            victim = nodes[self._victim_rng(kind, event.key).randrange(len(nodes))]
            up_neighbors = [
                neighbor
                for neighbor in self.plant_adjacency[victim]
                if self.link_is_up(victim, neighbor)
            ]
            self.failed_switch_set.add(victim)
            self.failed_switches[event.key] = victim
            return (SWITCH_DOWN, victim, up_neighbors)
        if kind == SWITCH_REPAIR:
            victim = self.failed_switches.pop(event.key, None)
            if victim is None:
                return (NOOP,)
            self.failed_switch_set.discard(victim)
            up_neighbors = [
                neighbor
                for neighbor in self.plant_adjacency[victim]
                if self.link_is_up(victim, neighbor)
            ]
            return (SWITCH_UP, victim, up_neighbors)
        if kind == EXPAND:
            return self._apply_expansion(event)
        raise ValueError(f"unknown event kind {kind!r}")

    def _apply_expansion(self, event: LifecycleEvent) -> Tuple:
        """Grow the plant by one batch through the incremental procedure.

        Expansion splices random existing cables (Section 6.2), so its
        dirty region is the whole interconnect: the plant mirror is rebuilt
        and the backends receive a ``rebuild`` delta.  A failed link whose
        cable was spliced away no longer exists -- its pending repair
        becomes a no-op.
        """
        expand = getattr(self.plant, "expand", None)
        if expand is None or self.config.expansion_batch <= 0:
            return (NOOP,)
        expand(
            self.config.expansion_batch,
            self.config.expansion_ports,
            self.config.expansion_servers,
            rng=self._victim_rng(EXPAND, event.key),
            prefix="grown",
        )
        self._mirror_plant()
        for key, pair in list(self.failed_links.items()):
            if pair is None:
                continue
            u, v = pair
            if v not in self.plant_adjacency.get(u, ()):  # spliced away
                del self.failed_links[key]
                self.failed_link_pairs.discard(frozenset((u, v)))
        return (REBUILD,)
