"""Deterministic lifecycle event streams: failures, repairs, expansion, epochs.

A lifecycle is months of simulated time over one deployment: links and
switches fail as Poisson arrivals, repairs complete after exponential
delays around a configurable MTTR, the operator grows the network in
periodic expansion batches (Section 6.2 of the paper), and a *traffic
epoch* -- a full routing + throughput evaluation -- runs on a fixed cadence.

The stream is generated **up front** from ``(config, seed)`` and is a pure
function of both: arrival gaps and repair delays come from one string-seeded
``random.Random``, epochs and expansions sit at fixed multiples of their
intervals, and same-time collisions order by a fixed kind priority (repairs
before failures before expansion before the epoch, so an epoch always sees
the settled state of its instant).  Crucially the stream names *no victims*
-- a failure event carries only a sequence key; the victim is drawn at apply
time from the surviving equipment (:mod:`repro.lifecycle.state`).  That
keeps one stream applicable to any topology family, which is what lets the
``fig08-lifecycle`` experiment subject Jellyfish and the fat-tree to an
*identical* schedule of adversity.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass
from typing import List, Optional

#: Event kinds, in same-time priority order (lower fires first).
LINK_REPAIR = "link_repair"
SWITCH_REPAIR = "switch_repair"
LINK_FAIL = "link_fail"
SWITCH_FAIL = "switch_fail"
EXPAND = "expand"
EPOCH = "epoch"

EVENT_KINDS = (LINK_REPAIR, SWITCH_REPAIR, LINK_FAIL, SWITCH_FAIL, EXPAND, EPOCH)

_PRIORITY = {kind: index for index, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs for one lifecycle run; times are simulated hours.

    ``link_failure_rate`` / ``switch_failure_rate`` are *aggregate* arrival
    rates (failures per hour over the whole plant), deliberately independent
    of the topology's size so the same config produces the same event stream
    for every family under comparison.  ``expansion_interval_hours = 0``
    disables growth (required for families that cannot expand, and for
    like-for-like Jellyfish vs fat-tree timelines).
    """

    duration_hours: float = 720.0
    link_failure_rate: float = 0.1
    switch_failure_rate: float = 0.01
    link_mttr_hours: float = 12.0
    switch_mttr_hours: float = 24.0
    epoch_interval_hours: float = 24.0
    expansion_interval_hours: float = 0.0
    expansion_batch: int = 0
    expansion_ports: int = 0
    expansion_servers: int = 0
    max_events: int = 0
    epoch_engine: str = "fluid"
    routing: str = "ksp"
    k: int = 8
    congestion_control: str = "mptcp"
    traffic: str = "per-epoch"

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        for field_name in ("link_failure_rate", "switch_failure_rate"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        for field_name in ("link_mttr_hours", "switch_mttr_hours", "epoch_interval_hours"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.expansion_interval_hours < 0:
            raise ValueError("expansion_interval_hours must be non-negative")
        if self.expansion_interval_hours > 0:
            if self.expansion_batch <= 0:
                raise ValueError("expansion_batch must be positive when expanding")
            if self.expansion_ports <= 0:
                raise ValueError("expansion_ports must be positive when expanding")
            if not 0 <= self.expansion_servers <= self.expansion_ports:
                raise ValueError(
                    "expansion_servers must be between 0 and expansion_ports"
                )
        if self.max_events < 0:
            raise ValueError("max_events must be non-negative")
        if self.epoch_engine not in ("fluid", "path"):
            raise ValueError(f"unknown epoch_engine {self.epoch_engine!r}")
        if self.routing not in ("ksp", "ecmp"):
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.congestion_control not in ("tcp1", "tcp8", "mptcp"):
            raise ValueError(
                f"unknown congestion_control {self.congestion_control!r}"
            )
        if self.traffic not in ("per-epoch", "fixed"):
            raise ValueError(f"unknown traffic mode {self.traffic!r}")

    def config_hash(self) -> str:
        """Content hash of the config (stamps manifests; guards resume)."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class LifecycleEvent:
    """One scheduled event.

    ``key`` pairs a failure with its repair (both carry the same sequence
    number), numbers epochs, and counts expansion batches.  Orphans are
    legal: a repair whose failure was a no-op (nothing left to fail), or a
    failure whose repair fell past ``duration_hours`` / the ``max_events``
    truncation point, both resolve as no-ops at apply time.
    """

    time_h: float
    kind: str
    key: int

    def sort_key(self):
        return (self.time_h, _PRIORITY[self.kind], self.key)


def _poisson_stream(
    rng: random.Random,
    rate: float,
    mttr: float,
    duration: float,
    fail_kind: str,
    repair_kind: str,
) -> List[LifecycleEvent]:
    """Failure arrivals with exponential repair completions."""
    events: List[LifecycleEvent] = []
    if rate <= 0:
        return events
    t = 0.0
    key = 0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            break
        events.append(LifecycleEvent(t, fail_kind, key))
        repair_at = t + rng.expovariate(1.0 / mttr)
        if repair_at < duration:
            events.append(LifecycleEvent(repair_at, repair_kind, key))
        key += 1
    return events


def generate_events(config: LifecycleConfig, seed: Optional[int]) -> List[LifecycleEvent]:
    """The full sorted event stream for ``(config, seed)``.

    Deterministic: the two Poisson processes draw from independent
    string-seeded generators (so changing the switch rate never perturbs
    the link schedule), epochs sit at ``0, interval, 2*interval, ...`` and
    expansions at ``interval, 2*interval, ...`` (never at t=0 -- the run
    starts on the as-built plant).  ``max_events`` keeps the sorted prefix;
    a truncated repair simply leaves its link down for the remainder.
    """
    events = _poisson_stream(
        random.Random(f"lifecycle-events:{seed}:links"),
        config.link_failure_rate,
        config.link_mttr_hours,
        config.duration_hours,
        LINK_FAIL,
        LINK_REPAIR,
    )
    events += _poisson_stream(
        random.Random(f"lifecycle-events:{seed}:switches"),
        config.switch_failure_rate,
        config.switch_mttr_hours,
        config.duration_hours,
        SWITCH_FAIL,
        SWITCH_REPAIR,
    )

    index = 0
    t = 0.0
    while t < config.duration_hours:
        events.append(LifecycleEvent(t, EPOCH, index))
        index += 1
        t = index * config.epoch_interval_hours

    if config.expansion_interval_hours > 0:
        index = 1
        while index * config.expansion_interval_hours < config.duration_hours:
            events.append(
                LifecycleEvent(index * config.expansion_interval_hours, EXPAND, index)
            )
            index += 1

    events.sort(key=LifecycleEvent.sort_key)
    if config.max_events and len(events) > config.max_events:
        events = events[: config.max_events]
    return events
