"""Failure/repair lifecycle engine: months of simulated time over one plant.

Public surface:

* :class:`~repro.lifecycle.events.LifecycleConfig` /
  :func:`~repro.lifecycle.events.generate_events` -- deterministic seeded
  event streams (Poisson failures, exponential repairs, periodic expansion
  batches and traffic epochs);
* :class:`~repro.lifecycle.state.LifecycleState` -- the plant + failed-set
  state machine shared by every backend;
* :func:`~repro.lifecycle.engine.run_lifecycle` /
  :func:`~repro.lifecycle.engine.lifecycle_point` -- the engine and its
  sweep-target wrapper;
* :class:`~repro.lifecycle.metrics.IncrementalMetrics` -- scoped-BFS
  component maintenance and cache-backed epoch evaluation (the default
  backend; the cold-rebuild reference lives in
  :mod:`repro.lifecycle._reference`).
"""

from repro.lifecycle.engine import (
    EPOCH_TARGET,
    EpochOutcome,
    LifecycleResult,
    epoch_hash,
    lifecycle_point,
    run_lifecycle,
)
from repro.lifecycle.events import (
    EPOCH,
    EXPAND,
    LINK_FAIL,
    LINK_REPAIR,
    SWITCH_FAIL,
    SWITCH_REPAIR,
    LifecycleConfig,
    LifecycleEvent,
    generate_events,
)
from repro.lifecycle.metrics import IncrementalMetrics
from repro.lifecycle.state import LifecycleState

__all__ = [
    "EPOCH",
    "EPOCH_TARGET",
    "EXPAND",
    "EpochOutcome",
    "IncrementalMetrics",
    "LINK_FAIL",
    "LINK_REPAIR",
    "LifecycleConfig",
    "LifecycleEvent",
    "LifecycleResult",
    "LifecycleState",
    "SWITCH_FAIL",
    "SWITCH_REPAIR",
    "epoch_hash",
    "generate_events",
    "lifecycle_point",
    "run_lifecycle",
]
