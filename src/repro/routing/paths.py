"""Per-pair path tables.

A :class:`PathSet` is the routing state a deployment would install (via
OpenFlow rules, SPAIN VLANs or MPLS tunnels, Section 5.3): for each
(source switch, destination switch) pair, an ordered list of usable paths.
Both the LP-based throughput harness and the fluid simulator consume it.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.graphs.csr import csr_graph
from repro.routing.ecmp import ecmp_paths
from repro.routing.ksp import Path, all_pairs_k_shortest_paths
from repro.telemetry import count

Pair = Tuple[Hashable, Hashable]

#: Content-hash-keyed LRU of shared path tables (see :func:`shared_path_set`).
_SHARED_PATH_SETS: "OrderedDict[Tuple[str, str, int], PathSet]" = OrderedDict()
_SHARED_PATH_SET_MAX = 16

#: Total stored paths allowed across every shared table before LRU tables
#: are evicted (env ``REPRO_PATHSET_PATH_BUDGET``).  A k=8 KSP table over a
#: 180-switch all-pairs sweep holds ~258k paths; the default admits a couple
#: of those plus change, so week-long sweeps over many topologies recycle
#: table slots instead of accreting every table they ever built.
_SHARED_PATH_SET_PATH_BUDGET = int(
    os.environ.get("REPRO_PATHSET_PATH_BUDGET", 600_000)
)

#: Stored-path count per cached table (maintained by :func:`shared_path_set`).
_shared_path_counts: Dict[Tuple[str, str, int], int] = {}
_shared_pathset_evictions = 0


def _evict_shared_tables(current_key: Tuple[str, str, int]) -> None:
    """Evict LRU tables past the entry cap or the total-path budget.

    The table just used (``current_key``) is never evicted — a single
    oversized table is allowed to exist, it just forces everything else
    out — so callers always get back the table they extended.
    """
    global _shared_pathset_evictions
    del current_key  # always newest (moved to end), so never the LRU victim
    evicted = 0
    while len(_SHARED_PATH_SETS) > 1 and (
        len(_SHARED_PATH_SETS) > _SHARED_PATH_SET_MAX
        or sum(_shared_path_counts.values()) > _SHARED_PATH_SET_PATH_BUDGET
    ):
        key, _ = _SHARED_PATH_SETS.popitem(last=False)
        _shared_path_counts.pop(key, None)
        evicted += 1
    if evicted:
        _shared_pathset_evictions += evicted
        count("pathset.evictions", evicted)


def shared_path_set_stats() -> Dict[str, int]:
    """Occupancy and eviction counters of the shared path-table cache."""
    return {
        "tables": len(_SHARED_PATH_SETS),
        "paths": sum(_shared_path_counts.values()),
        "path_budget": _SHARED_PATH_SET_PATH_BUDGET,
        "evictions": _shared_pathset_evictions,
    }


@dataclass
class PathSet:
    """Ordered candidate paths for each switch pair."""

    paths: Dict[Pair, List[Path]] = field(default_factory=dict)
    kind: str = "custom"

    def __getitem__(self, pair: Pair) -> List[Path]:
        return self.paths[pair]

    def get(self, pair: Pair, default=None):
        return self.paths.get(pair, default)

    def pairs(self) -> Iterable[Pair]:
        return self.paths.keys()

    def __len__(self) -> int:
        return len(self.paths)

    def add(self, pair: Pair, path: Path) -> None:
        self.paths.setdefault(pair, []).append(tuple(path))

    def max_paths_per_pair(self) -> int:
        if not self.paths:
            return 0
        return max(len(options) for options in self.paths.values())

    def average_path_length(self) -> float:
        """Mean hop count over every stored path (edges, not nodes)."""
        lengths = [len(p) - 1 for options in self.paths.values() for p in options]
        if not lengths:
            raise ValueError("path set is empty")
        return sum(lengths) / len(lengths)

    def validate_against(self, graph: nx.Graph) -> None:
        """Check every stored path is a real, loop-free path of ``graph``."""
        for (source, target), options in self.paths.items():
            for path in options:
                if path[0] != source or path[-1] != target:
                    raise ValueError(
                        f"path {path!r} does not join {source!r} and {target!r}"
                    )
                if len(set(path)) != len(path):
                    raise ValueError(f"path {path!r} revisits a node")
                for u, v in zip(path, path[1:]):
                    if not graph.has_edge(u, v):
                        raise ValueError(f"path {path!r} uses missing edge {(u, v)!r}")


def build_path_set(
    graph: nx.Graph,
    pairs: Sequence[Pair],
    scheme: str = "ksp",
    k: int = 8,
    on_unreachable: str = "raise",
) -> PathSet:
    """Build a :class:`PathSet` for the given pairs.

    ``scheme`` is ``"ksp"`` for Yen's k-shortest paths or ``"ecmp"`` for
    w-way equal-cost shortest paths (``k`` doubles as the ECMP width).
    KSP queries go through :func:`~repro.routing.ksp.all_pairs_k_shortest_paths`,
    which validates the graph's CSR view once for the whole batch and
    shares one BFS tree across the targets of each source.

    ``on_unreachable`` selects the degradation semantics for pairs with no
    path (a partitioned graph): ``"raise"`` (historical default) raises
    ``ValueError``; ``"skip"`` leaves the pair out of the table, which the
    flow and simulation engines report as zero throughput (see
    :mod:`repro.failures.degradation`).
    """
    if scheme not in ("ksp", "ecmp"):
        raise ValueError(f"unknown routing scheme {scheme!r}")
    distinct = [(source, target) for source, target in pairs if source != target]
    table: Dict[Pair, List[Path]] = {}
    _extend_table(graph, table, distinct, scheme, k, on_unreachable)
    return PathSet(paths=table, kind=f"{scheme}-{k}")


def _extend_table(
    graph: nx.Graph,
    table: Dict[Pair, List[Path]],
    pending: Sequence[Pair],
    scheme: str,
    k: int,
    on_unreachable: str = "raise",
) -> None:
    """Compute and store paths for ``pending`` pairs.

    Pairs with no path either raise (``on_unreachable="raise"``) or are
    skipped -- never stored -- so a skip-mode table holds routes exactly
    for the reachable pairs.
    """
    if on_unreachable not in ("raise", "skip"):
        raise ValueError(
            f"on_unreachable must be 'raise' or 'skip', got {on_unreachable!r}"
        )
    if scheme == "ksp":
        computed = all_pairs_k_shortest_paths(graph, pending, k)
        for pair in pending:
            options = computed[pair]
            if not options:
                if on_unreachable == "skip":
                    continue
                raise ValueError(f"no path between {pair[0]!r} and {pair[1]!r}")
            table[pair] = options
    else:
        csr = csr_graph(graph) if pending else None
        for source, target in pending:
            options = ecmp_paths(graph, source, target, width=k, csr=csr)
            if not options:
                if on_unreachable == "skip":
                    continue
                raise ValueError(f"no path between {source!r} and {target!r}")
            table[(source, target)] = options


def shared_path_set(
    graph: nx.Graph,
    pairs: Sequence[Pair],
    scheme: str = "ksp",
    k: int = 8,
    on_unreachable: str = "raise",
) -> PathSet:
    """A :class:`PathSet` shared across calls for structurally equal graphs.

    Tables are cached in a small LRU keyed by the graph's CSR
    ``content_hash`` plus ``(scheme, k)`` — the same content-addressing
    discipline as the engine's result cache — and extended lazily: only
    pairs not yet present are routed.  Because paths are a pure function of
    the graph structure, a throughput sweep that evaluates several traffic
    matrices (or re-solves an identical topology) pays for each pair's
    route enumeration once instead of once per matrix.

    The returned table is shared state: callers must treat it as read-only.
    In-place graph mutations change the content hash (via the CSR
    fingerprint revalidation), so a stale table is never returned.

    ``on_unreachable="skip"`` applies the degradation semantics of
    :func:`build_path_set`: unreachable pairs are left out of the table
    (and re-probed on later calls, since absence is how "unreachable" is
    represented).
    """
    if scheme not in ("ksp", "ecmp"):
        raise ValueError(f"unknown routing scheme {scheme!r}")
    key = (csr_graph(graph).content_hash, scheme, k)
    table = _SHARED_PATH_SETS.get(key)
    if table is None:
        table = PathSet(paths={}, kind=f"{scheme}-{k}")
        _SHARED_PATH_SETS[key] = table
        _shared_path_counts[key] = 0
    else:
        _SHARED_PATH_SETS.move_to_end(key)
    pending = [
        (source, target)
        for source, target in pairs
        if source != target and (source, target) not in table.paths
    ]
    if pending:
        _extend_table(graph, table.paths, pending, scheme, k, on_unreachable)
        _shared_path_counts[key] = sum(
            len(options) for options in table.paths.values()
        )
    _evict_shared_tables(key)
    return table


def clear_shared_path_sets() -> None:
    """Drop every cached shared path table (and reset the stats counters)."""
    global _shared_pathset_evictions
    _SHARED_PATH_SETS.clear()
    _shared_path_counts.clear()
    _shared_pathset_evictions = 0
