"""Per-pair path tables.

A :class:`PathSet` is the routing state a deployment would install (via
OpenFlow rules, SPAIN VLANs or MPLS tunnels, Section 5.3): for each
(source switch, destination switch) pair, an ordered list of usable paths.
Both the LP-based throughput harness and the fluid simulator consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.routing.ecmp import ecmp_paths
from repro.routing.ksp import Path, all_pairs_k_shortest_paths

Pair = Tuple[Hashable, Hashable]


@dataclass
class PathSet:
    """Ordered candidate paths for each switch pair."""

    paths: Dict[Pair, List[Path]] = field(default_factory=dict)
    kind: str = "custom"

    def __getitem__(self, pair: Pair) -> List[Path]:
        return self.paths[pair]

    def get(self, pair: Pair, default=None):
        return self.paths.get(pair, default)

    def pairs(self) -> Iterable[Pair]:
        return self.paths.keys()

    def __len__(self) -> int:
        return len(self.paths)

    def add(self, pair: Pair, path: Path) -> None:
        self.paths.setdefault(pair, []).append(tuple(path))

    def max_paths_per_pair(self) -> int:
        if not self.paths:
            return 0
        return max(len(options) for options in self.paths.values())

    def average_path_length(self) -> float:
        """Mean hop count over every stored path (edges, not nodes)."""
        lengths = [len(p) - 1 for options in self.paths.values() for p in options]
        if not lengths:
            raise ValueError("path set is empty")
        return sum(lengths) / len(lengths)

    def validate_against(self, graph: nx.Graph) -> None:
        """Check every stored path is a real, loop-free path of ``graph``."""
        for (source, target), options in self.paths.items():
            for path in options:
                if path[0] != source or path[-1] != target:
                    raise ValueError(
                        f"path {path!r} does not join {source!r} and {target!r}"
                    )
                if len(set(path)) != len(path):
                    raise ValueError(f"path {path!r} revisits a node")
                for u, v in zip(path, path[1:]):
                    if not graph.has_edge(u, v):
                        raise ValueError(f"path {path!r} uses missing edge {(u, v)!r}")


def build_path_set(
    graph: nx.Graph,
    pairs: Sequence[Pair],
    scheme: str = "ksp",
    k: int = 8,
) -> PathSet:
    """Build a :class:`PathSet` for the given pairs.

    ``scheme`` is ``"ksp"`` for Yen's k-shortest paths or ``"ecmp"`` for
    w-way equal-cost shortest paths (``k`` doubles as the ECMP width).
    KSP queries go through :func:`~repro.routing.ksp.all_pairs_k_shortest_paths`,
    which validates the graph's CSR view once for the whole batch and
    shares one BFS tree across the targets of each source.
    """
    if scheme not in ("ksp", "ecmp"):
        raise ValueError(f"unknown routing scheme {scheme!r}")
    distinct = [(source, target) for source, target in pairs if source != target]
    table: Dict[Pair, List[Path]] = {}
    if scheme == "ksp":
        computed = all_pairs_k_shortest_paths(graph, distinct, k)
        for pair in distinct:
            options = computed[pair]
            if not options:
                raise ValueError(f"no path between {pair[0]!r} and {pair[1]!r}")
            table[pair] = options
    else:
        for source, target in distinct:
            options = ecmp_paths(graph, source, target, width=k)
            if not options:
                raise ValueError(f"no path between {source!r} and {target!r}")
            table[(source, target)] = options
    return PathSet(paths=table, kind=f"{scheme}-{k}")
