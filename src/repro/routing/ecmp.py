"""ECMP (equal-cost multi-path) routing.

ECMP hashes each flow onto one of the equal-cost *shortest* paths between
its endpoints.  Commodity implementations bound the number of next-hop
entries, so we model w-way ECMP (the paper evaluates 8-way and 64-way) by
keeping at most ``width`` shortest paths per switch pair, selected
deterministically, and hashing flows over that set.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import networkx as nx

from repro.graphs.csr import all_shortest_path_indices, csr_graph
from repro.routing.ksp import Path
from repro.utils.rng import RngLike, ensure_rng


def all_shortest_paths(
    graph: nx.Graph, source: Hashable, target: Hashable, csr=None
) -> List[Path]:
    """All shortest paths between two nodes, deterministically ordered.

    Enumerated over the CSR kernel: two BFS distance rows (from source and
    target) classify which edges lie on a shortest path, and a DFS walks
    exactly those.  Paths are ordered by native node sequence.

    ``csr`` lets batch callers pass the validated CSR view once instead of
    paying the fingerprint revalidation per pair.
    """
    if csr is None:
        csr = csr_graph(graph)
    key = ("ecmp", source, target)
    cached = csr.result_cache.get(key)
    if cached is not None:
        return list(cached)
    try:
        source_index = csr.index_of[source]
        target_index = csr.index_of[target]
    except KeyError:
        raise nx.NodeNotFound(
            f"source {source!r} or target {target!r} not in graph"
        ) from None
    index_paths = all_shortest_path_indices(csr, source_index, target_index)
    nodes = csr.nodes
    result = [tuple(nodes[i] for i in path) for path in index_paths]
    csr.store_result(key, result)
    return list(result)


def ecmp_paths(
    graph: nx.Graph, source: Hashable, target: Hashable, width: int = 8, csr=None
) -> List[Path]:
    """The path set w-way ECMP can use: up to ``width`` shortest paths."""
    if width <= 0:
        raise ValueError("width must be positive")
    return all_shortest_paths(graph, source, target, csr=csr)[:width]


def ecmp_route_flows(
    paths_by_pair: Dict[Tuple[Hashable, Hashable], List[Path]],
    flows: Sequence[Tuple[Hashable, Hashable]],
    rng: RngLike = None,
) -> List[Path]:
    """Assign each flow to one path from its pair's ECMP set (random hash).

    ``flows`` lists (source switch, destination switch) per flow; the result
    gives each flow's chosen path in the same order.
    """
    rand = ensure_rng(rng)
    chosen: List[Path] = []
    for source, target in flows:
        options = paths_by_pair.get((source, target), [])
        if not options:
            raise ValueError(f"no path available for flow {source!r} -> {target!r}")
        chosen.append(options[rand.randrange(len(options))])
    return chosen
