"""Yen's k-shortest loopless paths algorithm (Yen, 1971).

The paper routes Jellyfish with k-shortest-path routing (k = 8) because
plain ECMP does not expose enough path diversity on a random graph.  This is
a from-scratch implementation of Yen's algorithm over unweighted (hop-count)
graphs, with a small priority-queue candidate set.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

Path = Tuple[Hashable, ...]


def _bfs_shortest_path(
    graph: nx.Graph,
    source: Hashable,
    target: Hashable,
    removed_edges: Set[Tuple[Hashable, Hashable]],
    removed_nodes: Set[Hashable],
) -> Optional[Path]:
    """Shortest path by BFS avoiding the removed edges/nodes; None if absent."""
    if source == target:
        return (source,)
    if source in removed_nodes or target in removed_nodes:
        return None
    parents: Dict[Hashable, Hashable] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in parents or neighbor in removed_nodes:
                continue
            if (node, neighbor) in removed_edges or (neighbor, node) in removed_edges:
                continue
            parents[neighbor] = node
            if neighbor == target:
                path = [neighbor]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return tuple(reversed(path))
            queue.append(neighbor)
    return None


def k_shortest_paths(
    graph: nx.Graph, source: Hashable, target: Hashable, k: int
) -> List[Path]:
    """Return up to ``k`` loopless shortest paths from ``source`` to ``target``.

    Paths are returned in non-decreasing length order; ties are broken
    deterministically by node sequence so results are reproducible.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if source not in graph or target not in graph:
        raise nx.NodeNotFound(f"source {source!r} or target {target!r} not in graph")
    first = _bfs_shortest_path(graph, source, target, set(), set())
    if first is None:
        return []
    paths: List[Path] = [first]
    # Candidate heap entries: (length, path) with path as a tuple for ordering.
    candidates: List[Tuple[int, Path]] = []
    seen_candidates: Set[Path] = set()

    while len(paths) < k:
        previous = paths[-1]
        for i in range(len(previous) - 1):
            spur_node = previous[i]
            root = previous[: i + 1]

            removed_edges: Set[Tuple[Hashable, Hashable]] = set()
            for path in paths:
                if len(path) > i and path[: i + 1] == root:
                    removed_edges.add((path[i], path[i + 1]))
            removed_nodes = set(root[:-1])

            spur = _bfs_shortest_path(
                graph, spur_node, target, removed_edges, removed_nodes
            )
            if spur is None:
                continue
            candidate = root[:-1] + spur
            if candidate in seen_candidates:
                continue
            seen_candidates.add(candidate)
            heapq.heappush(candidates, (len(candidate), _sort_key(candidate), candidate))

        if not candidates:
            break
        _, _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def _sort_key(path: Path) -> Tuple[str, ...]:
    """Deterministic tiebreak key: stringified node sequence."""
    return tuple(str(node) for node in path)


def all_pairs_k_shortest_paths(
    graph: nx.Graph, pairs: Sequence[Tuple[Hashable, Hashable]], k: int
) -> Dict[Tuple[Hashable, Hashable], List[Path]]:
    """Compute k-shortest paths for a collection of (source, target) pairs."""
    return {
        (source, target): k_shortest_paths(graph, source, target, k)
        for source, target in pairs
    }
