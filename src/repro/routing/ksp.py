"""Yen's k-shortest loopless paths algorithm (Yen, 1971).

The paper routes Jellyfish with k-shortest-path routing (k = 8) because
plain ECMP does not expose enough path diversity on a random graph.  The
enumeration runs on the CSR kernel (:func:`repro.graphs.csr.k_shortest_path_indices`):
integer node ids, reusable stamped visited/parent arrays per spur BFS, and
integer edge keys instead of rebuilt tuple sets.  Spur BFS expands
neighbors in the same adjacency order as the historical pure-Python
implementation (kept in :mod:`repro.routing._reference`), so results match
it path-for-path.

Ties between equal-length candidates are broken by the native node sequence
(all topologies use int or tuple node ids), which is stable under graph
relabeling — unlike the stringified ordering used previously, which sorted
node 10 before node 2.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import networkx as nx

from repro.graphs.csr import (
    csr_graph,
    k_shortest_path_indices,
    path_from_parent_tree,
)

Path = Tuple[Hashable, ...]


def k_shortest_paths(
    graph: nx.Graph, source: Hashable, target: Hashable, k: int
) -> List[Path]:
    """Return up to ``k`` loopless shortest paths from ``source`` to ``target``.

    Paths are returned in non-decreasing length order; ties are broken
    deterministically by node sequence so results are reproducible.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    csr = csr_graph(graph)
    key = ("ksp", source, target, k)
    cached = csr.result_cache.get(key)
    if cached is not None:
        return list(cached)
    try:
        source_index = csr.index_of[source]
        target_index = csr.index_of[target]
    except KeyError:
        raise nx.NodeNotFound(
            f"source {source!r} or target {target!r} not in graph"
        ) from None
    first = path_from_parent_tree(
        csr.bfs_parent_tree(source_index), source_index, target_index
    )
    if first is None:
        csr.store_result(key, [])
        return []
    index_paths = k_shortest_path_indices(
        csr, source_index, target_index, k, first_path=first
    )
    nodes = csr.nodes
    result = [tuple(nodes[i] for i in path) for path in index_paths]
    csr.store_result(key, result)
    return list(result)


def all_pairs_k_shortest_paths(
    graph: nx.Graph, pairs: Sequence[Tuple[Hashable, Hashable]], k: int
) -> Dict[Tuple[Hashable, Hashable], List[Path]]:
    """Compute k-shortest paths for a collection of (source, target) pairs.

    Pairs are grouped by source and each source's BFS shortest-path tree is
    computed once and shared across its targets, so the per-pair Yen run
    skips its initial full BFS.  Results share the same per-graph
    ``("ksp", source, target, k)`` cache as :func:`k_shortest_paths`.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    for source, target in pairs:
        if source not in graph or target not in graph:
            raise nx.NodeNotFound(
                f"source {source!r} or target {target!r} not in graph"
            )
    csr = csr_graph(graph)
    nodes = csr.nodes
    by_source: Dict[int, List[Tuple[Hashable, Hashable]]] = {}
    for source, target in pairs:
        by_source.setdefault(csr.index_of[source], []).append((source, target))

    table: Dict[Tuple[Hashable, Hashable], List[Path]] = {}
    for source_index, group in by_source.items():
        pending = []
        for pair in group:
            cached = csr.result_cache.get(("ksp", pair[0], pair[1], k))
            if cached is not None:
                table[pair] = list(cached)
            else:
                pending.append(pair)
        if not pending:
            continue
        parents = csr.bfs_parent_tree(source_index)
        for pair in pending:
            first = path_from_parent_tree(
                parents, source_index, csr.index_of[pair[1]]
            )
            key = ("ksp", pair[0], pair[1], k)
            if first is None:
                csr.store_result(key, [])
                table[pair] = []
                continue
            index_paths = k_shortest_path_indices(
                csr, source_index, csr.index_of[pair[1]], k, first_path=first
            )
            result = [tuple(nodes[i] for i in path) for path in index_paths]
            csr.store_result(key, result)
            table[pair] = list(result)
    return table
