"""Routing: shortest paths, ECMP, Yen's k-shortest paths, path diversity."""

from repro.routing.ecmp import ecmp_paths, ecmp_route_flows
from repro.routing.ksp import k_shortest_paths
from repro.routing.paths import PathSet, build_path_set, shared_path_set
from repro.routing.diversity import link_path_counts

__all__ = [
    "ecmp_paths",
    "ecmp_route_flows",
    "k_shortest_paths",
    "PathSet",
    "build_path_set",
    "shared_path_set",
    "link_path_counts",
]
