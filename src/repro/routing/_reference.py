"""Pre-CSR pure-Python routing implementations, kept as parity references.

These are the dict/deque implementations that shipped before the CSR kernel
layer (:mod:`repro.graphs.csr`) took over the hot paths.  The parity suite
(``tests/test_csr_kernels.py``) pins the kernels against them path-for-path,
and ``benchmarks/record_kernels.py`` times old versus new to produce
``benchmarks/BENCH_kernels.json``.

The only deliberate delta from the historical code is the candidate
tiebreak: it compares native node tuples instead of stringified nodes (the
old key ordered node ``10`` before node ``2``), matching the fix applied to
the production implementation.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

Path = Tuple[Hashable, ...]


def bfs_shortest_path_reference(
    graph: nx.Graph,
    source: Hashable,
    target: Hashable,
    removed_edges: Set[Tuple[Hashable, Hashable]],
    removed_nodes: Set[Hashable],
) -> Optional[Path]:
    """Shortest path by BFS avoiding the removed edges/nodes; None if absent."""
    if source == target:
        return (source,)
    if source in removed_nodes or target in removed_nodes:
        return None
    parents: Dict[Hashable, Hashable] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in parents or neighbor in removed_nodes:
                continue
            if (node, neighbor) in removed_edges or (neighbor, node) in removed_edges:
                continue
            parents[neighbor] = node
            if neighbor == target:
                path = [neighbor]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return tuple(reversed(path))
            queue.append(neighbor)
    return None


def k_shortest_paths_reference(
    graph: nx.Graph, source: Hashable, target: Hashable, k: int
) -> List[Path]:
    """Yen's algorithm exactly as the pre-CSR implementation ran it."""
    if k <= 0:
        raise ValueError("k must be positive")
    if source not in graph or target not in graph:
        raise nx.NodeNotFound(f"source {source!r} or target {target!r} not in graph")
    first = bfs_shortest_path_reference(graph, source, target, set(), set())
    if first is None:
        return []
    paths: List[Path] = [first]
    candidates: List[Tuple[int, Path]] = []
    seen_candidates: Set[Path] = set()

    while len(paths) < k:
        previous = paths[-1]
        for i in range(len(previous) - 1):
            spur_node = previous[i]
            root = previous[: i + 1]

            removed_edges: Set[Tuple[Hashable, Hashable]] = set()
            for path in paths:
                if len(path) > i and path[: i + 1] == root:
                    removed_edges.add((path[i], path[i + 1]))
            removed_nodes = set(root[:-1])

            spur = bfs_shortest_path_reference(
                graph, spur_node, target, removed_edges, removed_nodes
            )
            if spur is None:
                continue
            candidate = root[:-1] + spur
            if candidate in seen_candidates:
                continue
            seen_candidates.add(candidate)
            heapq.heappush(candidates, (len(candidate), candidate))

        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def all_pairs_hop_distances_reference(graph: nx.Graph, sources=None) -> Dict:
    """Per-source dict BFS sweep exactly as the pre-CSR implementation ran it."""
    from repro.graphs.properties import bfs_distances

    wanted = list(graph.nodes) if sources is None else list(sources)
    return {source: bfs_distances(graph, source) for source in wanted}
