"""Path-diversity accounting (paper Fig 9).

For a given traffic pattern and routing scheme, count for every directed
inter-switch link how many *distinct paths* traverse it.  The paper shows
that under 8-way ECMP about 55% of links are used by no more than 2 paths of
a random-permutation workload, while under 8-shortest-path routing only ~6%
are -- i.e. ECMP fails to spread load on a random graph.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.routing.ksp import Path

DirectedLink = Tuple[Hashable, Hashable]


def link_path_counts(paths: Iterable[Path]) -> Dict[DirectedLink, int]:
    """Count the number of distinct paths that traverse each directed link.

    Each network cable is counted as two directed links, one per direction,
    exactly as in the paper's Fig 9.  Duplicate paths are counted once.
    """
    counts: Counter = Counter()
    seen_paths = set()
    for path in paths:
        key = tuple(path)
        if key in seen_paths:
            continue
        seen_paths.add(key)
        counts.update(zip(key, key[1:]))
    return dict(counts)


def ranked_counts(
    counts: Dict[DirectedLink, int], total_links: int = None
) -> List[int]:
    """Counts sorted ascending, padded with zeros for unused links.

    ``total_links`` is the number of directed links in the network; links on
    no path at all appear as zeros so the distribution covers every link.
    """
    values = sorted(counts.values())
    if total_links is not None:
        if total_links < len(values):
            raise ValueError("total_links is smaller than the number of used links")
        values = [0] * (total_links - len(values)) + values
    return values


def fraction_links_at_or_below(
    counts: Dict[DirectedLink, int], threshold: int, total_links: int
) -> float:
    """Fraction of all directed links carrying at most ``threshold`` paths."""
    if total_links <= 0:
        raise ValueError("total_links must be positive")
    ranked = ranked_counts(counts, total_links)
    at_or_below = sum(1 for value in ranked if value <= threshold)
    return at_or_below / total_links
