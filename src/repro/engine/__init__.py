"""Scenario engine: declarative sweeps, sharded execution, result caching.

The engine is the shared execution layer behind the paper's evaluation grid
(topology family x size x routing x traffic x failures):

- :mod:`repro.engine.spec` -- :class:`ScenarioSpec` describes a sweep
  declaratively and expands it into content-hashed :class:`ScenarioPoint`\\ s.
- :mod:`repro.engine.runner` -- :class:`SweepRunner` shards points across
  supervised worker processes with per-point seeding, wall-clock timeouts,
  per-point memory budgets with ``oom``/``signal`` fault classification and
  an escalating degradation ladder (see :mod:`repro.resources`), bounded
  retry with deterministic backoff, quarantine of poison points, progress
  reporting and deterministic result ordering.
- :mod:`repro.engine.cache` -- :class:`ResultCache` stores each scenario's
  value on disk under its content hash, so re-runs and overlapping sweeps
  hit cache instead of re-solving LPs.
- :mod:`repro.engine.registry` -- every experiment (fig01..fig14, table1)
  registered as a sweep, runnable via :func:`run_sweep` or ``repro sweep``.

See ``docs/engine.md`` for semantics and examples.
"""

from repro.engine.cache import CacheStats, ResultCache, default_cache_root
from repro.engine.runner import (
    FaultStats,
    PointFailure,
    PointOutcome,
    SweepError,
    SweepFailure,
    SweepRunner,
    backoff_delay,
)
from repro.engine.spec import (
    ScenarioPoint,
    ScenarioSpec,
    canonical_json,
    content_hash,
    derive_seed,
    expand,
    normalize,
    resolve_target,
)
from repro.engine.registry import (
    SweepDef,
    get_sweep,
    list_sweeps,
    register_sweep,
    run_specs,
    run_sweep,
    sweep_points,
    sweep_specs,
)
from repro.resources import (
    ExecutionProfile,
    MAX_DEGRADATION_LEVEL,
    PROFILE_LADDER,
    default_memory_mb,
    profile_for_level,
)

__all__ = [
    "CacheStats",
    "ExecutionProfile",
    "FaultStats",
    "MAX_DEGRADATION_LEVEL",
    "PROFILE_LADDER",
    "PointFailure",
    "PointOutcome",
    "ResultCache",
    "ScenarioPoint",
    "ScenarioSpec",
    "SweepDef",
    "SweepError",
    "SweepFailure",
    "SweepRunner",
    "backoff_delay",
    "canonical_json",
    "content_hash",
    "default_cache_root",
    "default_memory_mb",
    "derive_seed",
    "expand",
    "get_sweep",
    "list_sweeps",
    "normalize",
    "profile_for_level",
    "register_sweep",
    "resolve_target",
    "run_specs",
    "run_sweep",
    "sweep_points",
    "sweep_specs",
]
