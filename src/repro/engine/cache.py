"""Content-addressed on-disk result cache.

Results are stored one JSON file per scenario, named by the scenario's
content hash (sha256 of its canonical-JSON key), fanned out over 256
two-hex-digit subdirectories.  Because the key covers the target, all
parameters, the seed and the repetition index, overlapping sweeps share
entries automatically: re-running a sweep, or running a new sweep whose grid
intersects an old one, serves the intersection from disk instead of
re-solving LPs.

Writes are atomic (temp file + ``os.replace``) so a killed run never leaves
a truncated entry, and every envelope carries a checksum of its value
(sha256 over canonical JSON) verified on read.  Entries that fail to parse
or fail the checksum -- torn writes from a power loss, bit rot, manual
edits -- are *quarantined*: moved to a ``corrupt/`` subdirectory rather
than silently treated as misses, counted in :attr:`CacheStats.corruptions`,
and logged, so ``repro stats`` surfaces cache damage instead of hiding it
behind re-execution.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.engine.spec import ScenarioPoint, canonical_json, content_hash
from repro.telemetry import get_logger
from repro.telemetry.tracer import clock
from repro.testing.chaos import active_plan

# Version 2 added the per-entry value checksum; version-1 entries (no
# checksum to verify) read as plain misses, not corruption.
CACHE_FORMAT_VERSION = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory (under the cache root) holding quarantined corrupt entries.
QUARANTINE_DIR = "corrupt"

#: Default cap on quarantined entries kept for inspection; beyond it the
#: oldest are evicted, so a corruption storm cannot grow ``corrupt/`` forever.
DEFAULT_QUARANTINE_BUDGET = 64

log = get_logger("cache")


def default_cache_root() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/jellyfish-repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/jellyfish-repro").expanduser()


@dataclass
class CacheStats:
    """Hit/miss/write/eviction counters for one :class:`ResultCache` instance.

    ``lookup_s`` and ``store_s`` accumulate the wall time spent in cache I/O
    (fetches and stores respectively), so run manifests can report how much
    of a sweep went to the cache itself.  ``corruptions`` counts entries
    quarantined because they failed to parse or failed their checksum;
    ``quarantine_evictions`` counts quarantined entries later dropped to
    keep ``corrupt/`` within its entry budget.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corruptions: int = 0
    quarantine_evictions: int = 0
    lookup_s: float = 0.0
    store_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "quarantine_evictions": self.quarantine_evictions,
            "lookup_s": self.lookup_s,
            "store_s": self.store_s,
        }

    def __str__(self) -> str:
        text = f"{self.hits} hits, {self.misses} misses, {self.writes} writes"
        if self.evictions:
            text += f", {self.evictions} evictions"
        if self.corruptions:
            text += f", {self.corruptions} corrupt"
        if self.quarantine_evictions:
            text += f", {self.quarantine_evictions} quarantine evictions"
        return text


@dataclass
class ResultCache:
    """Content-addressed JSON store for scenario results.

    ``quarantine_budget`` caps how many corrupt entries ``corrupt/`` keeps
    for inspection (oldest evicted beyond it; ``<= 0`` means unbounded).
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)
    quarantine_budget: int = DEFAULT_QUARANTINE_BUDGET

    def __post_init__(self) -> None:
        self.root = Path(self.root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, scenario_hash: str) -> Path:
        """File that does / would hold the entry for ``scenario_hash``."""
        return self.root / scenario_hash[:2] / f"{scenario_hash}.json"

    def quarantine_dir(self) -> Path:
        """Directory corrupt entries are moved to (may not exist yet)."""
        return self.root / QUARANTINE_DIR

    def fetch(self, point: ScenarioPoint) -> Tuple[bool, Any]:
        """Look up ``point``; returns ``(hit, value)`` with ``value=None`` on miss."""
        start = clock()
        hit, value = self._read(point.scenario_hash)
        self.stats.lookup_s += clock() - start
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit, value

    def _read(self, scenario_hash: str) -> Tuple[bool, Any]:
        path = self.path_for(scenario_hash)
        try:
            with open(path, "r", encoding="ascii") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return False, None
        except (json.JSONDecodeError, UnicodeDecodeError):
            # Unparseable bytes under a valid entry name: a torn write or
            # bit rot, not a cold cache.  Quarantine so it's investigable.
            self._quarantine(path, scenario_hash, "unparseable JSON")
            return False, None
        except OSError:
            return False, None
        if not isinstance(envelope, dict):
            self._quarantine(path, scenario_hash, "envelope is not an object")
            return False, None
        if envelope.get("version") != CACHE_FORMAT_VERSION:
            # Entries written by an incompatible engine version are plain
            # misses (they were valid when written); bump
            # CACHE_FORMAT_VERSION whenever result semantics change.
            return False, None
        if "value" not in envelope:
            self._quarantine(path, scenario_hash, "missing value")
            return False, None
        value = envelope["value"]
        if envelope.get("checksum") != content_hash(value):
            self._quarantine(path, scenario_hash, "checksum mismatch")
            return False, None
        return True, value

    def _quarantine(self, path: Path, scenario_hash: str, reason: str) -> None:
        """Move a corrupt entry to ``corrupt/`` and count it."""
        destination = self.quarantine_dir() / path.name
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced or unwritable
                pass
        self.stats.corruptions += 1
        log.warning(
            "quarantined corrupt cache entry %s (%s) -> %s",
            scenario_hash[:12],
            reason,
            destination,
        )
        self._evict_quarantine()

    def _evict_quarantine(self) -> None:
        """Drop the oldest quarantined entries beyond the entry budget."""
        if self.quarantine_budget <= 0:
            return

        def mtime(entry: Path) -> float:
            try:
                return entry.stat().st_mtime
            except OSError:  # pragma: no cover - raced deletion
                return 0.0

        entries = sorted(self.quarantine_dir().glob("*.json"), key=mtime)
        for entry in entries[: max(len(entries) - self.quarantine_budget, 0)]:
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - raced deletion
                continue
            self.stats.quarantine_evictions += 1

    def store(self, point: ScenarioPoint, value: Any) -> None:
        """Atomically persist ``value`` for ``point``."""
        start = clock()
        path = self.path_for(point.scenario_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": CACHE_FORMAT_VERSION,
            "scenario": point.key(),
            "checksum": content_hash(value),
            "value": value,
        }
        payload = canonical_json(envelope)
        plan = active_plan()
        if plan is not None and plan.torn_write(point.scenario_hash, point.target):
            # Injected fault: simulate a non-atomic write dying halfway --
            # truncated bytes at the *final* path, exactly what the
            # checksum pass exists to catch on a later read.
            path.write_text(payload[: len(payload) // 2], encoding="ascii")
            self.stats.writes += 1
            self.stats.store_s += clock() - start
            return
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="ascii") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        self.stats.store_s += clock() - start

    def __contains__(self, point: ScenarioPoint) -> bool:
        return self._read(point.scenario_hash)[0]

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed (counted as evictions)."""
        removed = 0
        for entry in self.root.glob("??/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.evictions += removed
        return removed
