"""Compute-heavy scenario targets used by the engine benchmarks and demos.

These are real workloads (Jellyfish construction, BFS path metrics, LP
throughput) packaged as picklable module-level targets so the benchmark
suite can exercise :class:`~repro.engine.runner.SweepRunner` sharding and the
result cache on representative scenario points rather than synthetic sleeps.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.properties import average_path_length, diameter
from repro.flow.throughput import normalized_throughput
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng


def jellyfish_path_metrics(
    num_switches: int, ports: int, network_degree: int, seed: Optional[int] = None
) -> dict:
    """Mean switch-to-switch path length and diameter of one random Jellyfish."""
    topology = JellyfishTopology.build(num_switches, ports, network_degree, rng=seed)
    return {
        "mean_path_length": average_path_length(topology.graph),
        "diameter": diameter(topology.graph),
    }


def jellyfish_throughput_point(
    num_switches: int,
    ports: int,
    network_degree: int,
    k: int = 8,
    seed: Optional[int] = None,
) -> dict:
    """Normalized random-permutation throughput of one Jellyfish (path-LP)."""
    rng = ensure_rng(seed)
    topology = JellyfishTopology.build(num_switches, ports, network_degree, rng=rng)
    traffic = random_permutation_traffic(topology, rng=rng)
    value = normalized_throughput(topology, traffic, engine="path", k=k).normalized
    return {"normalized_throughput": value}
