"""Compute-heavy scenario targets used by the engine benchmarks and demos.

These are real workloads (Jellyfish construction, BFS path metrics, LP
throughput) packaged as picklable module-level targets so the benchmark
suite can exercise :class:`~repro.engine.runner.SweepRunner` sharding and the
result cache on representative scenario points rather than synthetic sleeps.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.properties import average_path_length, diameter
from repro.flow.throughput import normalized_throughput, supports_full_throughput
from repro.simulation.aimd import AimdConfig, simulate_aimd
from repro.simulation.fluid import SimulationConfig, simulate_fluid
from repro.telemetry import trace
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng


def jellyfish_path_metrics(
    num_switches: int, ports: int, network_degree: int, seed: Optional[int] = None
) -> dict:
    """Mean switch-to-switch path length and diameter of one random Jellyfish."""
    with trace("target.build", switches=num_switches):
        topology = JellyfishTopology.build(
            num_switches, ports, network_degree, rng=seed
        )
    return {
        "mean_path_length": average_path_length(topology.graph),
        "diameter": diameter(topology.graph),
    }


def jellyfish_throughput_point(
    num_switches: int,
    ports: int,
    network_degree: int,
    k: int = 8,
    seed: Optional[int] = None,
) -> dict:
    """Normalized random-permutation throughput of one Jellyfish (path-LP)."""
    rng = ensure_rng(seed)
    with trace("target.build", switches=num_switches):
        topology = JellyfishTopology.build(
            num_switches, ports, network_degree, rng=rng
        )
    traffic = random_permutation_traffic(topology, rng=rng)
    value = normalized_throughput(topology, traffic, engine="path", k=k).normalized
    return {"normalized_throughput": value}


def jellyfish_fluid_point(
    num_switches: int,
    ports: int,
    network_degree: int,
    routing: str = "ksp",
    congestion_control: str = "mptcp",
    k: int = 8,
    seed: Optional[int] = None,
) -> dict:
    """Fluid-simulator throughput/fairness of one Jellyfish (max-min engine).

    Exercises the vectorized progressive-filling kernel plus the shared
    path-table state on a representative routing + congestion-control combo.
    """
    rng = ensure_rng(seed)
    with trace("target.build", switches=num_switches):
        topology = JellyfishTopology.build(
            num_switches, ports, network_degree, rng=rng
        )
    traffic = random_permutation_traffic(topology, rng=rng)
    config = SimulationConfig(
        routing=routing, k=k, congestion_control=congestion_control
    )
    outcome = simulate_fluid(topology, traffic, config, rng=rng)
    return {
        "average_throughput": outcome.average_throughput,
        "fairness": outcome.fairness,
    }


def jellyfish_aimd_point(
    num_switches: int,
    ports: int,
    network_degree: int,
    routing: str = "ksp",
    congestion_control: str = "mptcp",
    k: int = 8,
    rounds: int = 200,
    warmup_rounds: int = 50,
    seed: Optional[int] = None,
) -> dict:
    """Round-based AIMD dynamics of one Jellyfish (vectorized round engine).

    Exercises the subflow compilation plus the array-native round loop --
    and, across repeated points on one topology, the shared path-table and
    capacity caches -- on a representative dynamics workload.
    """
    rng = ensure_rng(seed)
    with trace("target.build", switches=num_switches):
        topology = JellyfishTopology.build(
            num_switches, ports, network_degree, rng=rng
        )
    traffic = random_permutation_traffic(topology, rng=rng)
    config = AimdConfig(
        routing=routing,
        k=k,
        congestion_control=congestion_control,
        rounds=rounds,
        warmup_rounds=warmup_rounds,
    )
    outcome = simulate_aimd(topology, traffic, config, rng=rng)
    return {
        "average_throughput": outcome.average_throughput,
        "fairness": outcome.fairness,
        "convergence_round": outcome.convergence_round,
    }


def jellyfish_full_throughput_point(
    num_switches: int,
    ports: int,
    network_degree: int,
    num_matrices: int = 2,
    k: int = 8,
    seed: Optional[int] = None,
) -> dict:
    """Full-line-rate feasibility of one Jellyfish (decision LP + screens).

    Exercises the throughput harness's shared path-set / LP-structure state
    across ``num_matrices`` permutation matrices on a single topology — the
    warm regime of the fig02c binary search.
    """
    rng = ensure_rng(seed)
    with trace("target.build", switches=num_switches):
        topology = JellyfishTopology.build(
            num_switches, ports, network_degree, rng=rng
        )
    value = supports_full_throughput(
        topology, num_matrices=num_matrices, engine="path", k=k, rng=rng
    )
    return {"supports_full_throughput": bool(value)}
