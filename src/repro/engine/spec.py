"""Declarative scenario specifications for the sweep engine.

The paper's evaluation is a grid: topology family x size x routing scheme x
traffic matrix x failure rate.  A :class:`ScenarioSpec` describes one such
grid declaratively -- a target callable plus fixed parameters and swept axes
-- and expands into concrete :class:`ScenarioPoint` instances.  Every point
has a stable content hash over its canonical-JSON key, which is what the
result cache and the deduplication pass in :mod:`repro.engine.runner` key on.

Targets are referenced by dotted path (``"package.module:callable"``) so
points pickle cheaply across worker processes and hash independently of any
in-memory object identity.  A target must accept its parameters as keyword
arguments, take an optional ``seed`` keyword when the scenario is stochastic,
and return a JSON-serializable value.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.resources import ExecutionProfile, activate_profile

SEED_STRATEGIES = ("auto", "shared", "derived")


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to canonical JSON (sorted keys, no whitespace).

    Raises ``TypeError`` for non-JSON-serializable values and ``ValueError``
    for NaN/Infinity, so everything that gets hashed or cached is guaranteed
    to round-trip exactly.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def normalize(value: Any) -> Any:
    """Round-trip ``value`` through canonical JSON.

    The runner normalizes every target's return value so that a freshly
    computed result and the same result read back from the cache are
    indistinguishable (tuples become lists, dict keys become strings).
    """
    return json.loads(canonical_json(value))


def content_hash(value: Any) -> str:
    """Stable sha256 hex digest of ``value``'s canonical JSON."""
    return hashlib.sha256(canonical_json(value).encode("ascii")).hexdigest()


def derive_seed(base_seed: Optional[int], material: Any, repetition: int = 0) -> Optional[int]:
    """Derive a per-point seed from a base seed and arbitrary JSON material.

    The derivation hashes ``(base_seed, material, repetition)`` so it is
    stable under grid reordering: adding an axis value does not change the
    seeds of existing points.  ``None`` stays ``None`` (unseeded scenario).
    """
    if base_seed is None:
        return None
    digest = hashlib.sha256(
        canonical_json([base_seed, material, repetition]).encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def resolve_target(target: str) -> Callable:
    """Import and return the callable behind a ``"module:callable"`` path."""
    module_path, _, attribute = target.partition(":")
    if not module_path or not attribute:
        raise ValueError(
            f"target must look like 'package.module:callable', got {target!r}"
        )
    module = importlib.import_module(module_path)
    try:
        fn = getattr(module, attribute)
    except AttributeError as error:
        raise ValueError(f"module {module_path!r} has no attribute {attribute!r}") from error
    if not callable(fn):
        raise ValueError(f"target {target!r} is not callable")
    return fn


@dataclass(frozen=True)
class ScenarioPoint:
    """One concrete, executable scenario: a target plus scalar parameters.

    Instances are immutable and picklable; :attr:`scenario_hash` is the
    content address used by the cache and by the runner's deduplication.
    """

    target: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    repetition: int = 0

    def key(self) -> Dict[str, Any]:
        """Everything that identifies this scenario's result."""
        return {
            "target": self.target,
            "params": self.params,
            "seed": self.seed,
            "repetition": self.repetition,
        }

    @cached_property
    def scenario_hash(self) -> str:
        return content_hash(self.key())

    def __hash__(self) -> int:
        # The generated dataclass hash would choke on the params dict; hash
        # the content address instead so points work in sets and dict keys.
        return hash(self.scenario_hash)

    def execute(self, profile: Optional[ExecutionProfile] = None) -> Any:
        """Run the target and return its canonical-JSON-normalized value.

        ``profile`` (a degradation-ladder rung, see :mod:`repro.resources`)
        is activated around the target call so budget-aware kernels pick up
        its scratch/memo scales and sampled-mode switch; ``None`` runs at
        full fidelity.  This is the single seam both the serial and the
        supervised worker paths execute through.
        """
        fn = resolve_target(self.target)
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        with activate_profile(profile):
            return normalize(fn(**kwargs))

    def describe(self) -> str:
        return f"{self.scenario_hash[:12]} {self.target} {canonical_json(self.params)}"


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative sweep: a target, fixed parameters, and swept axes.

    ``base`` holds parameters shared by every point; ``axes`` maps axis names
    to the list of values to sweep (the cartesian product, in axis insertion
    order, defines point order).  ``repetitions`` replicates each grid cell
    with a repetition index; per-point seeds follow ``seed_strategy``:

    - ``"shared"``: every point gets ``seed`` verbatim (the right choice for
      reproducing a legacy experiment whose rng stream spans the whole run).
    - ``"derived"``: each point gets a seed derived from ``(seed, params,
      repetition)`` so repetitions and cells are independent trials.
    - ``"auto"`` (default): ``shared`` when ``repetitions == 1``, else
      ``derived``.
    """

    target: str
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    seed: Optional[int] = None
    repetitions: int = 1
    seed_strategy: str = "auto"
    name: str = ""

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if self.seed_strategy not in SEED_STRATEGIES:
            raise ValueError(
                f"seed_strategy must be one of {SEED_STRATEGIES}, got {self.seed_strategy!r}"
            )
        overlap = set(self.base) & set(self.axes)
        if overlap:
            raise ValueError(f"parameters appear as both base and axis: {sorted(overlap)}")
        if "seed" in self.base or "seed" in self.axes:
            raise ValueError(
                "'seed' cannot be a scenario parameter; set ScenarioSpec.seed instead"
            )
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"axis {axis!r} must be a non-empty list of values")
        # Fail fast on unhashable parameter content.
        canonical_json({"base": self.base, "axes": self.axes})

    @classmethod
    def grid(
        cls,
        target: str,
        *,
        seed: Optional[int] = None,
        repetitions: int = 1,
        seed_strategy: str = "auto",
        name: str = "",
        **params: Any,
    ) -> "ScenarioSpec":
        """Build a spec from keyword parameters.

        List/tuple values become swept axes; scalars become fixed base
        parameters.  To pass a literal list as a fixed parameter, construct
        :class:`ScenarioSpec` directly with it in ``base``.
        """
        base = {k: v for k, v in params.items() if not isinstance(v, (list, tuple))}
        axes = {k: list(v) for k, v in params.items() if isinstance(v, (list, tuple))}
        return cls(
            target=target,
            base=base,
            axes=axes,
            seed=seed,
            repetitions=repetitions,
            seed_strategy=seed_strategy,
            name=name,
        )

    def _point_seed(self, params: Dict[str, Any], repetition: int) -> Optional[int]:
        strategy = self.seed_strategy
        if strategy == "auto":
            strategy = "shared" if self.repetitions == 1 else "derived"
        if strategy == "shared":
            return self.seed
        return derive_seed(self.seed, params, repetition)

    def points(self) -> List[ScenarioPoint]:
        """Expand the grid into concrete points, in deterministic order."""
        return list(self.iter_points())

    def iter_points(self) -> Iterator[ScenarioPoint]:
        axis_names = list(self.axes)
        for combo in itertools.product(*(self.axes[name] for name in axis_names)):
            params = dict(self.base)
            params.update(zip(axis_names, combo))
            for repetition in range(self.repetitions):
                yield ScenarioPoint(
                    target=self.target,
                    params=params if self.repetitions == 1 else dict(params),
                    seed=self._point_seed(params, repetition),
                    repetition=repetition,
                )

    def size(self) -> int:
        total = self.repetitions
        for values in self.axes.values():
            total *= len(values)
        return total

    def __len__(self) -> int:
        return self.size()

    @cached_property
    def spec_hash(self) -> str:
        return content_hash(
            {
                "target": self.target,
                "base": self.base,
                "axes": self.axes,
                "seed": self.seed,
                "repetitions": self.repetitions,
                "seed_strategy": self.seed_strategy,
            }
        )

    def __hash__(self) -> int:
        return hash(self.spec_hash)


def expand(specs: Sequence[ScenarioSpec]) -> List[ScenarioPoint]:
    """Concatenate the points of several specs, preserving spec order."""
    return [point for spec in specs for point in spec.iter_points()]
