"""Supervised sweep execution: caching, dedup, retries, timeouts, quarantine.

:class:`SweepRunner` executes a list of :class:`~repro.engine.spec.ScenarioPoint`
in four passes:

0. **Journal pass** -- when a resume journal is supplied (``completed``),
   points whose scenario hash already has a journaled value are materialized
   immediately with status ``"journaled"`` and never re-execute.
1. **Cache pass** -- every remaining point is looked up in the (optional)
   result cache; hits are materialized immediately.
2. **Deduplication** -- remaining points with identical scenario hashes are
   collapsed so each distinct scenario executes exactly once, however many
   sweeps reference it.
3. **Execution** -- distinct scenarios run serially in-process
   (``workers <= 1`` without a timeout or memory budget) or under a
   *supervised* worker pool: dedicated worker processes fed over pipes, with
   per-point wall-clock deadlines, per-point memory budgets (an ``RLIMIT_AS``
   soft cap applied inside the worker, so an overrun raises a catchable
   ``MemoryError`` classified as ``oom`` instead of drawing the kernel OOM
   killer), detection of worker death (a crashed or OOM-killed worker is
   noticed through its process sentinel, never hung on -- signal deaths are
   classified ``signal``, ``os._exit`` deaths ``crash``), bounded retry with
   exponential backoff and deterministic jitter, and quarantine of poison
   points after ``max_attempts``.

Resource-exhaustion failures (``oom`` / ``signal`` / ``timeout``) do not
retry the identical computation: the runner re-dispatches the point one rung
down the :data:`~repro.resources.PROFILE_LADDER` -- halved kernel scratch
budgets, then sampled estimators, then reduced trial counts -- so sweeps
complete with degraded-but-honest values (the outcome records its
``degradation_level`` and profile; degraded values are never written to the
result cache) instead of quarantining.  Plain errors keep the existing
backoff/quarantine path.

A quarantined point does not abort the sweep: every healthy point still
completes, the outcome carries ``status="failed"`` with a structured
:class:`PointFailure`, and -- unless ``raise_on_failure=False`` -- the run
ends by raising :class:`SweepFailure` so programmatic callers cannot
mistake a partial sweep for a complete one.  Whatever the execution mode,
outcomes are returned in input order, so assembling a figure from sweep
values is a plain ``zip`` with the grid.

Fault injection for tests goes through :mod:`repro.testing.chaos`
(``REPRO_FAULTS``); see ``docs/robustness.md`` for semantics.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.cache import ResultCache
from repro.engine.spec import ScenarioPoint
from repro.resources import (
    MAX_DEGRADATION_LEVEL,
    RESOURCE_FAULT_KINDS,
    ExecutionProfile,
    apply_memory_budget,
    profile_for_level,
)
from repro.telemetry import count, get_logger, trace
from repro.telemetry.manifest import peak_rss_kb
from repro.telemetry.tracer import clock
from repro.testing.chaos import active_plan

#: ``progress(done, total, outcome)`` called after every completed point.
ProgressCallback = Callable[[int, int, "PointOutcome"], None]

#: Outcome statuses.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_JOURNALED = "journaled"

log = get_logger("engine.runner")


class SweepError(RuntimeError):
    """A scenario point failed to execute."""


class SweepFailure(SweepError):
    """Raised after a sweep completes with quarantined points.

    The sweep is *not* aborted on the first failure: every healthy point
    runs to completion first, and :attr:`outcomes` holds the full result
    list (in input order) so callers can salvage partial results.
    """

    def __init__(self, message: str, outcomes: List["PointOutcome"]) -> None:
        super().__init__(message)
        self.outcomes = outcomes

    @property
    def failures(self) -> List["PointOutcome"]:
        return [o for o in self.outcomes if o.status == STATUS_FAILED]


@dataclass
class PointFailure:
    """Structured description of why a point was quarantined.

    ``kind`` is the *final* attempt's failure mode (``"error"`` for a
    raised exception, ``"timeout"`` for a wall-clock deadline kill,
    ``"oom"`` for a ``MemoryError`` under the point's memory budget,
    ``"signal"`` for a worker killed by a signal -- e.g. the real OOM
    killer's SIGKILL -- and ``"crash"`` for any other worker death);
    ``history`` lists every attempt's kind in order.  ``exitcode`` is the
    dead worker's exit code for crashes/signals (negative = signal number).
    """

    kind: str
    message: str
    exitcode: Optional[int] = None
    history: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class PointOutcome:
    """Result of one scenario point.

    ``cached`` is true when the value came from the on-disk cache, from the
    resume journal, or from another identical point executed earlier in the
    same sweep.  For cached points ``duration_s`` is the cache-lookup time,
    not an execution time; ``worker`` is the pid of the process that
    executed the point (0 for cache hits and dedup followers) and
    ``peak_rss_kb`` that process's peak RSS high-water mark after the point
    ran (0 when not measured).  ``status`` is ``"ok"``, ``"journaled"``
    (skipped via a resume journal) or ``"failed"`` (quarantined; ``value``
    is ``None`` and ``failure`` describes why); ``attempts`` counts
    execution attempts including retries (0 for journal/cache hits).

    ``degradation_level`` is the ladder rung the final attempt ran at (0 =
    full fidelity) with ``profile`` the matching
    :meth:`~repro.resources.ExecutionProfile.as_dict` (``None`` at rung 0),
    and ``history`` the failure kinds of every *earlier* attempt -- so a
    point that succeeded after degrading still reports how it got there.
    Dedup followers inherit all three from their primary.
    """

    point: ScenarioPoint
    value: Any
    cached: bool
    duration_s: float
    worker: int = 0
    peak_rss_kb: int = 0
    status: str = STATUS_OK
    attempts: int = 0
    failure: Optional[PointFailure] = None
    degradation_level: int = 0
    profile: Optional[dict] = None
    history: List[str] = field(default_factory=list)


@dataclass
class FaultStats:
    """Per-run fault counters (reset at the start of every :meth:`run`).

    ``ooms`` counts budgeted ``MemoryError`` failures, ``signals`` workers
    killed by a signal (e.g. the kernel OOM killer), and ``degraded``
    ladder escalations (re-dispatches one profile rung down); ``retries``
    includes the degraded re-dispatches.
    """

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    ooms: int = 0
    signals: int = 0
    errors: int = 0
    degraded: int = 0
    quarantined: int = 0
    journal_skips: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    def any_faults(self) -> bool:
        return bool(
            self.retries or self.timeouts or self.crashes or self.ooms
            or self.signals or self.errors or self.quarantined
        )

    def __str__(self) -> str:
        return (
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.crashes} crashes, {self.ooms} ooms, "
            f"{self.signals} signals, {self.errors} errors, "
            f"{self.degraded} degraded, {self.quarantined} quarantined, "
            f"{self.journal_skips} journal skips"
        )


def backoff_delay(
    scenario_hash: str, attempt: int, base_s: float, cap_s: float
) -> float:
    """Exponential backoff with deterministic jitter.

    ``base_s * 2**(attempt-1)``, scaled by a jitter factor in [1.0, 1.5)
    derived from ``sha256(scenario_hash:attempt)`` -- reproducible for a
    given point and attempt, decorrelated across points so retry storms
    spread out -- and capped at ``cap_s``.
    """
    digest = hashlib.sha256(f"{scenario_hash}:{attempt}".encode("ascii")).digest()
    jitter = 1.0 + (int.from_bytes(digest[:8], "big") / 2.0**64) * 0.5
    return min(base_s * (2.0 ** max(attempt - 1, 0)) * jitter, cap_s)


class _Task:
    """One distinct scenario in flight: its grid index, point and attempts."""

    __slots__ = (
        "index", "point", "attempts", "history", "last_message",
        "last_exitcode", "degradation_level",
    )

    def __init__(self, index: int, point: ScenarioPoint) -> None:
        self.index = index
        self.point = point
        self.attempts = 0
        self.history: List[str] = []
        self.last_message = ""
        self.last_exitcode: Optional[int] = None
        self.degradation_level = 0

    def profile(self) -> Optional[ExecutionProfile]:
        """The ladder rung to execute at (``None`` = full fidelity)."""
        if self.degradation_level <= 0:
            return None
        return profile_for_level(self.degradation_level)


def _execute_point(
    index: int,
    point: ScenarioPoint,
    attempt: int,
    profile: Optional[ExecutionProfile] = None,
) -> Tuple[Any, float]:
    """Run one point (with the chaos hook) and return ``(value, duration)``."""
    plan = active_plan()
    if plan is not None:
        plan.on_execute(index, point.scenario_hash, point.target, attempt)
    start = clock()
    with trace(
        "engine.point",
        target=point.target,
        attempt=attempt,
        degradation=profile.level if profile is not None else 0,
    ):
        value = point.execute(profile)
    return value, clock() - start


def _worker_main(conn) -> None:
    """Supervised pool worker: execute tasks from the pipe until told to stop.

    Exceptions raised by a point are *reported*, never allowed to kill the
    worker -- a ``MemoryError`` under the task's memory budget reports as a
    ``"oom"`` failure, anything else as ``"error"``.  Only a real crash
    (``os._exit``, OOM kill, signal) ends the process, which the supervisor
    notices through the process sentinel.  The budget's rlimit is restored
    *before* any pipe send, so reporting (including pickling a large value)
    can never itself die of the point's budget.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        index, point, attempt, profile, memory_mb = task
        restore = apply_memory_budget(memory_mb) if memory_mb else None
        try:
            value, duration = _execute_point(index, point, attempt, profile)
        except KeyboardInterrupt:
            return
        except BaseException as error:
            if restore is not None:
                restore()
            kind = "oom" if isinstance(error, MemoryError) else "error"
            try:
                conn.send(("fail", index, kind, f"{type(error).__name__}: {error}"))
            except (OSError, ValueError):
                return
            continue
        if restore is not None:
            restore()
        try:
            conn.send(("ok", index, value, duration, os.getpid(), peak_rss_kb()))
        except (OSError, ValueError):
            return


class _WorkerHandle:
    """One supervised worker process plus its command/result pipe."""

    __slots__ = ("context", "process", "conn", "task", "deadline")

    def __init__(self, context) -> None:
        self.context = context
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self.context.Pipe()
        self.process = self.context.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def dispatch(
        self,
        task: _Task,
        timeout_s: Optional[float],
        memory_mb: Optional[float] = None,
    ) -> None:
        task.attempts += 1
        self.task = task
        self.deadline = clock() + timeout_s if timeout_s is not None else None
        self.conn.send(
            (task.index, task.point, task.attempts, task.profile(), memory_mb)
        )

    def discard(self) -> None:
        """Kill the process (hung, crashed, or mid-task) and close the pipe."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - stuck in kernel
                self.process.kill()
        self.process.join(timeout=5.0)

    def respawn(self) -> None:
        self.discard()
        self.task = None
        self.deadline = None
        self._spawn()

    def shutdown(self) -> None:
        """Graceful stop for an idle worker at end of sweep."""
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - ignored the stop
            self.process.terminate()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class SweepRunner:
    """Run scenario points, optionally supervised, against a result cache.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs everything serially in-process (no pool
        overhead; the default, and what experiment ``run()`` wrappers use).
        ``n > 1`` shards distinct scenarios across ``n`` supervised worker
        processes.  Setting ``timeout_s`` forces supervised execution even
        for ``workers <= 1`` (a single supervised worker), because a hung
        point cannot be preempted in-process.
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to disable
        caching entirely.
    progress:
        Optional callback invoked after every completed point.
    timeout_s:
        Per-point wall-clock deadline.  A point past its deadline has its
        worker terminated, counts a ``timeout`` fault, and is retried with
        backoff.  ``None`` (default) disables deadlines.
    memory_mb:
        Per-point memory budget.  Each supervised worker caps its address
        space (``RLIMIT_AS`` soft limit, with a safety margin over the
        worker's baseline) before executing a point, so an overrun raises
        a catchable ``MemoryError`` classified as an ``oom`` fault instead
        of drawing the kernel OOM killer.  Like ``timeout_s``, a budget
        forces supervised execution even for ``workers <= 1``.  ``None``
        (default) disables budgets.
    degrade:
        When true (default), a point failing on resource exhaustion
        (``oom`` / ``signal`` / ``timeout``) is re-dispatched one rung down
        the degradation ladder (see :mod:`repro.resources`) instead of
        retrying identically, until the ladder bottoms out at rung
        ``MAX_DEGRADATION_LEVEL``.  Ladder escalations do not consume
        ``max_attempts`` (a point may use one extra attempt per rung);
        plain errors never escalate.
    max_attempts:
        Total execution attempts per distinct scenario before it is
        quarantined (default 3: one initial try plus two retries).
    backoff_base_s / backoff_cap_s:
        Exponential-backoff schedule between retries; see
        :func:`backoff_delay`.  Jitter is deterministic per (point,
        attempt).
    completed:
        Optional mapping ``scenario_hash -> value`` (a loaded resume
        journal); matching points are materialized as ``"journaled"``
        outcomes without executing or touching the cache.
    raise_on_failure:
        When true (default), a sweep that quarantined any point raises
        :class:`SweepFailure` *after* completing every healthy point.
        When false, :meth:`run` returns the mixed outcome list and the
        caller inspects ``status`` itself (what the CLI does to print a
        failure report).

    After each :meth:`run`, :attr:`fault_stats` holds the run's
    retry/timeout/crash/error/quarantine counters.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        *,
        timeout_s: Optional[float] = None,
        memory_mb: Optional[float] = None,
        degrade: bool = True,
        max_attempts: int = 3,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 30.0,
        completed: Optional[Mapping[str, Any]] = None,
        raise_on_failure: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None to disable)")
        if memory_mb is not None and memory_mb <= 0:
            raise ValueError("memory_mb must be positive (or None to disable)")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.timeout_s = timeout_s
        self.memory_mb = memory_mb
        self.degrade = degrade
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.completed = dict(completed) if completed else None
        self.raise_on_failure = raise_on_failure
        self.fault_stats = FaultStats()

    def run(self, points: Sequence[ScenarioPoint]) -> List[PointOutcome]:
        """Execute ``points`` and return outcomes in input order."""
        points = list(points)
        total = len(points)
        outcomes: List[Optional[PointOutcome]] = [None] * total
        completed_count = 0
        self.fault_stats = FaultStats()

        def finish(index: int, outcome: PointOutcome) -> None:
            nonlocal completed_count
            outcomes[index] = outcome
            completed_count += 1
            if self.progress is not None:
                self.progress(completed_count, total, outcome)

        # Pass 0: resume-journal skips (never re-executed, never re-fetched).
        pending: List[Tuple[int, ScenarioPoint]] = []
        for index, point in enumerate(points):
            if self.completed is not None and point.scenario_hash in self.completed:
                self.fault_stats.journal_skips += 1
                finish(
                    index,
                    PointOutcome(
                        point,
                        self.completed[point.scenario_hash],
                        cached=True,
                        duration_s=0.0,
                        status=STATUS_JOURNALED,
                    ),
                )
                continue
            pending.append((index, point))

        # Pass 1: cache lookups (timed, so cached points report their actual
        # lookup cost instead of a flat 0.0).
        uncached: List[Tuple[int, ScenarioPoint]] = []
        for index, point in pending:
            if self.cache is not None:
                start = clock()
                hit, value = self.cache.fetch(point)
                lookup_s = clock() - start
                if hit:
                    finish(
                        index,
                        PointOutcome(point, value, cached=True, duration_s=lookup_s),
                    )
                    continue
            uncached.append((index, point))

        # Pass 2: collapse identical scenarios so each executes once.
        primaries: Dict[str, _Task] = {}
        followers: Dict[str, List[int]] = {}
        for index, point in uncached:
            scenario_hash = point.scenario_hash
            if scenario_hash in primaries:
                followers.setdefault(scenario_hash, []).append(index)
            else:
                primaries[scenario_hash] = _Task(index, point)
        work = list(primaries.values())

        # Pass 3: execute distinct scenarios, serially or supervised.
        def on_success(
            task: _Task, value: Any, duration: float, worker: int, rss_kb: int
        ) -> None:
            point = points[task.index]
            profile = task.profile()
            profile_dict = profile.as_dict() if profile is not None else None
            if self.cache is not None and task.degradation_level == 0:
                # Degraded values are honest but not canonical: caching one
                # under the scenario hash would serve it to later runs as if
                # it were the full-fidelity result.
                self.cache.store(point, value)
            finish(
                task.index,
                PointOutcome(
                    point,
                    value,
                    cached=False,
                    duration_s=duration,
                    worker=worker,
                    peak_rss_kb=rss_kb,
                    attempts=task.attempts,
                    degradation_level=task.degradation_level,
                    profile=profile_dict,
                    history=list(task.history),
                ),
            )
            for follower_index in followers.get(point.scenario_hash, ()):
                finish(
                    follower_index,
                    PointOutcome(
                        points[follower_index],
                        value,
                        cached=True,
                        duration_s=0.0,
                        degradation_level=task.degradation_level,
                        profile=profile_dict,
                        history=list(task.history),
                    ),
                )

        def on_failure(task: _Task) -> None:
            point = points[task.index]
            profile = task.profile()
            failure = PointFailure(
                kind=task.history[-1] if task.history else "error",
                message=task.last_message,
                exitcode=task.last_exitcode,
                history=list(task.history),
            )
            log.warning(
                "quarantined %s (%s) after %d attempt(s): %s: %s",
                point.scenario_hash[:12],
                point.target,
                task.attempts,
                failure.kind,
                failure.message,
            )
            for outcome_index in (task.index, *followers.get(point.scenario_hash, ())):
                finish(
                    outcome_index,
                    PointOutcome(
                        points[outcome_index],
                        None,
                        cached=False,
                        duration_s=0.0,
                        status=STATUS_FAILED,
                        attempts=task.attempts,
                        failure=failure,
                        degradation_level=task.degradation_level,
                        profile=profile.as_dict() if profile is not None else None,
                        history=list(task.history),
                    ),
                )

        if work:
            pool_workers = self.workers
            needs_supervisor = self.timeout_s is not None or self.memory_mb is not None
            if pool_workers == 0 and needs_supervisor:
                pool_workers = 1
            if pool_workers > 1 or (pool_workers == 1 and needs_supervisor):
                self._run_supervised(
                    work, min(pool_workers, len(work)), on_success, on_failure
                )
            else:
                self._run_serial(work, on_success, on_failure)

        assert all(outcome is not None for outcome in outcomes)
        results: List[PointOutcome] = outcomes  # type: ignore[assignment]
        failures = [o for o in results if o.status == STATUS_FAILED]
        if failures and self.raise_on_failure:
            detail = "; ".join(
                f"{o.point.scenario_hash[:12]} ({o.point.target}) "
                f"{o.failure.kind} after {o.attempts} attempt(s): {o.failure.message}"
                for o in failures[:5]
            )
            raise SweepFailure(
                f"{len(failures)} of {total} scenario point(s) failed: {detail}",
                results,
            )
        return results

    def run_values(self, points: Sequence[ScenarioPoint]) -> List[Any]:
        """Like :meth:`run` but returning only the values, in input order."""
        return [outcome.value for outcome in self.run(points)]

    # ------------------------------------------------------------------ #
    # Failure accounting shared by both execution modes
    # ------------------------------------------------------------------ #
    def _note_failure(
        self, task: _Task, kind: str, message: str, exitcode: Optional[int] = None
    ) -> None:
        task.history.append(kind)
        task.last_message = message
        task.last_exitcode = exitcode
        stats = self.fault_stats
        if kind == "timeout":
            stats.timeouts += 1
        elif kind == "crash":
            stats.crashes += 1
        elif kind == "oom":
            stats.ooms += 1
        elif kind == "signal":
            stats.signals += 1
        else:
            stats.errors += 1
        count(f"engine.{kind}s")
        log.warning(
            "point %s (%s) attempt %d/%d failed: %s: %s",
            task.point.scenario_hash[:12],
            task.point.target,
            task.attempts,
            self.max_attempts,
            kind,
            message,
        )

    def _after_failure(
        self,
        task: _Task,
        delayed: List[Tuple[float, _Task]],
        on_failure: Callable[[_Task], None],
    ) -> int:
        """Requeue with backoff or quarantine; returns 1 when terminal.

        Resource-exhaustion failures (``oom``/``signal``/``timeout``)
        escalate the degradation ladder one rung before requeueing --
        retrying the identical computation would just exhaust the same
        resource -- and each escalation grants one attempt beyond
        ``max_attempts`` (bounded by the ladder depth), so a point is never
        quarantined without having tried its cheapest honest mode.  Plain
        errors keep the unmodified backoff/quarantine path.
        """
        kind = task.history[-1] if task.history else "error"
        escalate = (
            self.degrade
            and kind in RESOURCE_FAULT_KINDS
            and task.degradation_level < MAX_DEGRADATION_LEVEL
        )
        if task.attempts < self.max_attempts or escalate:
            if escalate:
                task.degradation_level += 1
                self.fault_stats.degraded += 1
                count("engine.degraded")
                log.warning(
                    "degrading %s to ladder rung %d after %s",
                    task.point.scenario_hash[:12],
                    task.degradation_level,
                    kind,
                )
            self.fault_stats.retries += 1
            count("engine.retries")
            delay = backoff_delay(
                task.point.scenario_hash,
                task.attempts,
                self.backoff_base_s,
                self.backoff_cap_s,
            )
            log.warning(
                "retrying %s in %.2fs (attempt %d/%d, rung %d)",
                task.point.scenario_hash[:12],
                delay,
                task.attempts + 1,
                self.max_attempts,
                task.degradation_level,
            )
            delayed.append((clock() + delay, task))
            return 0
        self.fault_stats.quarantined += 1
        count("engine.quarantined")
        on_failure(task)
        return 1

    # ------------------------------------------------------------------ #
    # Serial in-process execution (retries, no preemptive timeouts)
    # ------------------------------------------------------------------ #
    def _run_serial(self, work, on_success, on_failure) -> None:
        delayed: List[Tuple[float, _Task]] = []
        for task in work:
            while True:
                task.attempts += 1
                try:
                    value, duration = _execute_point(
                        task.index, task.point, task.attempts, task.profile()
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    kind = "oom" if isinstance(error, MemoryError) else "error"
                    self._note_failure(
                        task, kind, f"{type(error).__name__}: {error}"
                    )
                    if self._after_failure(task, delayed, on_failure):
                        break
                    eligible_at, _ = delayed.pop()
                    time.sleep(max(eligible_at - clock(), 0.0))
                    continue
                on_success(task, value, duration, os.getpid(), peak_rss_kb())
                break

    # ------------------------------------------------------------------ #
    # Supervised pool execution
    # ------------------------------------------------------------------ #
    def _run_supervised(self, work, num_workers, on_success, on_failure) -> None:
        context = multiprocessing.get_context()
        ready: "deque[_Task]" = deque(work)
        delayed: List[Tuple[float, _Task]] = []
        outstanding = len(work)
        workers = [_WorkerHandle(context) for _ in range(max(num_workers, 1))]
        try:
            while outstanding > 0:
                now = clock()
                if delayed:
                    due = [task for at, task in delayed if at <= now]
                    if due:
                        delayed = [(at, task) for at, task in delayed if at > now]
                        ready.extend(due)
                for worker in workers:
                    if worker.task is None and ready:
                        if not worker.process.is_alive():
                            worker.respawn()
                        worker.dispatch(
                            ready.popleft(), self.timeout_s, self.memory_mb
                        )
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    # Nothing in flight: everything outstanding is backing off.
                    next_at = min(at for at, _ in delayed)
                    time.sleep(max(next_at - clock(), 0.0))
                    continue
                waits = [w.deadline - now for w in busy if w.deadline is not None]
                waits.extend(at - now for at, _ in delayed)
                timeout = max(min(waits), 0.0) if waits else None
                conns = {w.conn: w for w in busy}
                sentinels = {w.process.sentinel: w for w in busy}
                ready_objects = _connection_wait(
                    list(conns) + list(sentinels), timeout
                )
                # Results first: a worker that reported and then exited must
                # not have its completed task miscounted as a crash.
                for obj in ready_objects:
                    worker = conns.get(obj)
                    if worker is not None and worker.task is not None:
                        outstanding -= self._handle_message(
                            worker, delayed, on_success, on_failure
                        )
                for obj in ready_objects:
                    worker = sentinels.get(obj)
                    if worker is None or worker.task is None:
                        continue
                    if worker.process.is_alive():  # pragma: no cover - spurious
                        continue
                    task = worker.task
                    exitcode = worker.process.exitcode
                    worker.respawn()
                    self._note_worker_death(task, exitcode)
                    outstanding -= self._after_failure(task, delayed, on_failure)
                # Deadlines last, after any just-delivered results.
                now = clock()
                for worker in workers:
                    if (
                        worker.task is not None
                        and worker.deadline is not None
                        and now >= worker.deadline
                    ):
                        task = worker.task
                        worker.respawn()
                        self._note_failure(
                            task,
                            "timeout",
                            f"exceeded {self.timeout_s:g}s wall-clock timeout",
                        )
                        outstanding -= self._after_failure(task, delayed, on_failure)
        finally:
            for worker in workers:
                if worker.task is not None:
                    worker.discard()
                else:
                    worker.shutdown()

    def _note_worker_death(self, task: _Task, exitcode: Optional[int]) -> None:
        """Classify a dead worker: signal kill (``signal``) vs ``crash``.

        A negative exitcode is a signal death (``-9`` = SIGKILL, what the
        kernel OOM killer sends); anything else -- ``os._exit``, a hard
        interpreter abort with a positive code -- is a ``crash``.
        """
        if exitcode is not None and exitcode < 0:
            self._note_failure(
                task,
                "signal",
                f"worker killed by signal {-exitcode}",
                exitcode=exitcode,
            )
        else:
            self._note_failure(
                task,
                "crash",
                f"worker died with exit code {exitcode}",
                exitcode=exitcode,
            )

    def _handle_message(self, worker, delayed, on_success, on_failure) -> int:
        """Receive one worker report; returns 1 when its task is terminal."""
        task = worker.task
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # Died between becoming readable and the recv: classify the death.
            exitcode = worker.process.exitcode
            worker.respawn()
            self._note_worker_death(task, exitcode)
            return self._after_failure(task, delayed, on_failure)
        worker.task = None
        worker.deadline = None
        if message[0] == "ok":
            _, _, value, duration, pid, rss_kb = message
            on_success(task, value, duration, pid, rss_kb)
            return 1
        _, _, kind, detail = message
        self._note_failure(task, kind, detail)
        return self._after_failure(task, delayed, on_failure)
