"""Sharded sweep execution with caching and deterministic ordering.

:class:`SweepRunner` executes a list of :class:`~repro.engine.spec.ScenarioPoint`
in three passes:

1. **Cache pass** -- every point is looked up in the (optional) result cache;
   hits are materialized immediately.
2. **Deduplication** -- remaining points with identical scenario hashes are
   collapsed so each distinct scenario executes exactly once, however many
   sweeps reference it.
3. **Execution** -- distinct scenarios run serially in-process
   (``workers <= 1``) or sharded across a ``multiprocessing`` pool
   (``workers > 1``).  Each point carries its own seed, so execution order
   never affects results.

Whatever the execution mode, the returned outcomes are in the input order,
so assembling a figure from sweep values is a plain ``zip`` with the grid.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import ResultCache
from repro.engine.spec import ScenarioPoint
from repro.telemetry import trace
from repro.telemetry.manifest import peak_rss_kb
from repro.telemetry.tracer import clock

#: ``progress(done, total, outcome)`` called after every completed point.
ProgressCallback = Callable[[int, int, "PointOutcome"], None]


class SweepError(RuntimeError):
    """A scenario point failed to execute."""


@dataclass
class PointOutcome:
    """Result of one scenario point.

    ``cached`` is true when the value came from the on-disk cache or from
    another identical point executed earlier in the same sweep.  For cached
    points ``duration_s`` is the cache-lookup time, not an execution time;
    ``worker`` is the pid of the process that executed the point (0 for
    cache hits and dedup followers) and ``peak_rss_kb`` that process's
    peak RSS high-water mark after the point ran (0 when not measured).
    """

    point: ScenarioPoint
    value: Any
    cached: bool
    duration_s: float
    worker: int = 0
    peak_rss_kb: int = 0


def _execute_indexed(
    item: Tuple[int, ScenarioPoint]
) -> Tuple[int, Any, float, int, int]:
    """Pool worker: run one point, reporting index, duration, pid and RSS."""
    index, point = item
    start = clock()
    try:
        with trace("engine.point", target=point.target):
            value = point.execute()
    except Exception as error:
        raise SweepError(
            f"scenario {point.scenario_hash[:12]} ({point.target}) failed: {error}"
        ) from error
    return index, value, clock() - start, os.getpid(), peak_rss_kb()


class SweepRunner:
    """Run scenario points, optionally in parallel and against a result cache.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs everything serially in-process (no pool overhead;
        the default, and what experiment ``run()`` wrappers use).  ``n > 1``
        shards distinct scenarios across ``n`` worker processes.
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to disable
        caching entirely.
    progress:
        Optional callback invoked after every completed point.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers
        self.cache = cache
        self.progress = progress

    def run(self, points: Sequence[ScenarioPoint]) -> List[PointOutcome]:
        """Execute ``points`` and return outcomes in input order."""
        points = list(points)
        total = len(points)
        outcomes: List[Optional[PointOutcome]] = [None] * total
        completed = 0

        def finish(index: int, outcome: PointOutcome) -> None:
            nonlocal completed
            outcomes[index] = outcome
            completed += 1
            if self.progress is not None:
                self.progress(completed, total, outcome)

        # Pass 1: cache lookups (timed, so cached points report their actual
        # lookup cost instead of a flat 0.0).
        pending: List[Tuple[int, ScenarioPoint]] = []
        for index, point in enumerate(points):
            if self.cache is not None:
                start = clock()
                hit, value = self.cache.fetch(point)
                lookup_s = clock() - start
                if hit:
                    finish(
                        index,
                        PointOutcome(point, value, cached=True, duration_s=lookup_s),
                    )
                    continue
            pending.append((index, point))

        # Pass 2: collapse identical scenarios so each executes once.
        primaries: Dict[str, Tuple[int, ScenarioPoint]] = {}
        followers: Dict[str, List[int]] = {}
        for index, point in pending:
            scenario_hash = point.scenario_hash
            if scenario_hash in primaries:
                followers.setdefault(scenario_hash, []).append(index)
            else:
                primaries[scenario_hash] = (index, point)
        work = list(primaries.values())

        # Pass 3: execute distinct scenarios, serially or in a pool.
        def record(
            index: int, value: Any, duration: float, worker: int, rss_kb: int
        ) -> None:
            point = points[index]
            if self.cache is not None:
                self.cache.store(point, value)
            finish(
                index,
                PointOutcome(
                    point,
                    value,
                    cached=False,
                    duration_s=duration,
                    worker=worker,
                    peak_rss_kb=rss_kb,
                ),
            )
            for follower_index in followers.get(point.scenario_hash, ()):
                finish(
                    follower_index,
                    PointOutcome(points[follower_index], value, cached=True, duration_s=0.0),
                )

        if self.workers > 1 and len(work) > 1:
            context = multiprocessing.get_context()
            with context.Pool(processes=self.workers) as pool:
                for result in pool.imap_unordered(_execute_indexed, work):
                    record(*result)
        else:
            for item in work:
                record(*_execute_indexed(item))

        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def run_values(self, points: Sequence[ScenarioPoint]) -> List[Any]:
        """Like :meth:`run` but returning only the values, in input order."""
        return [outcome.value for outcome in self.run(points)]
