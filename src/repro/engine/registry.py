"""Registry of the paper's experiments as scenario sweeps.

Every table and figure (fig01..fig14, table1) is registered as a
:class:`SweepDef`: a builder that turns ``(scale, seed)`` into a list of
:class:`~repro.engine.spec.ScenarioSpec` and an assembler that turns the
sweep's values back into the experiment's
:class:`~repro.experiments.common.ExperimentResult`.

Experiments whose data points are independent (``fig01``, ``fig02a``,
``fig02b``, ``fig05``) define their own grids and assemblers in their
modules ("engine-native"); the rest are wrapped as single-point scenarios
that run the legacy ``run(scale, seed)`` whole, which keeps their internal
rng streams -- and therefore their outputs -- bit-identical to running them
directly, while still gaining content-addressed caching and a uniform CLI.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioPoint, ScenarioSpec, expand
from repro.experiments.common import EXPERIMENTS, ExperimentResult

#: Experiments that define their grids natively through the engine.  The
#: ``*-ens`` entries are the ensemble variants: grids sweeping an instance
#: axis whose points build independent seeded topologies, so instance counts
#: shard across workers and cache per instance.
ENGINE_NATIVE = {
    "fig01": "repro.experiments.fig01_path_length",
    "fig02a": "repro.experiments.fig02a_bisection",
    "fig02a-ens": "repro.experiments.fig02a_ensemble",
    "fig02a-scale": "repro.experiments.fig02a_scale",
    "fig02b": "repro.experiments.fig02b_equipment_cost",
    "fig05": "repro.experiments.fig05_path_length_scaling",
    "fig05-ens": "repro.experiments.fig05_ensemble",
    "fig05-scale": "repro.experiments.fig05_scale",
    "fig08-ens": "repro.experiments.fig08_ensemble",
    "fig08-lifecycle": "repro.experiments.fig08_lifecycle",
    "fig12-dynamics": "repro.experiments.fig12_dynamics",
    "fig13-dynamics": "repro.experiments.fig13_dynamics",
}

SpecBuilder = Callable[[str, int], List[ScenarioSpec]]
Assembler = Callable[[List[Any], str, int], ExperimentResult]

#: Default per-point wall-clock timeouts (seconds) used by supervised runs.
#: Legacy experiments run *whole* as a single point (topology build + every
#: LP solve), so their ceiling is generous; engine-native points are one
#: scenario each and should never take anywhere near fifteen minutes.
#: ``repro sweep run --timeout`` overrides both.
LEGACY_POINT_TIMEOUT_S = 3600.0
NATIVE_POINT_TIMEOUT_S = 900.0

#: Native sweeps whose single points are legitimately long: the hyperscale
#: ``*-scale`` grids build and sample 100k-switch RRGs per point, so they
#: get the legacy-sized ceiling rather than the native default.
NATIVE_TIMEOUT_OVERRIDES: Dict[str, float] = {
    "fig05-scale": 3600.0,
    "fig02a-scale": 3600.0,
}


@dataclass(frozen=True)
class SweepDef:
    """One registered sweep: how to build its grid and assemble its result.

    ``timeout_s`` is the sweep's default per-point wall-clock budget for
    supervised execution (``None`` disables deadlines entirely), and
    ``memory_mb`` the sweep's default per-point memory budget (an
    ``RLIMIT_AS`` soft cap inside each worker; ``None`` disables budgets).
    Both are overridable from the CLI (``--timeout`` / ``--memory-mb``).
    """

    sweep_id: str
    description: str
    build: SpecBuilder
    assemble: Assembler
    timeout_s: Optional[float] = None
    memory_mb: Optional[float] = None


_SWEEPS: Dict[str, SweepDef] = {}


def register_sweep(sweep: SweepDef) -> SweepDef:
    """Register (or replace) a sweep definition under its id."""
    _SWEEPS[sweep.sweep_id] = sweep
    return sweep


def list_sweeps() -> List[str]:
    """Identifiers of every registered sweep."""
    return sorted(_SWEEPS)


def get_sweep(sweep_id: str) -> SweepDef:
    if sweep_id not in _SWEEPS:
        raise KeyError(
            f"unknown sweep {sweep_id!r}; known: {', '.join(list_sweeps())}"
        )
    return _SWEEPS[sweep_id]


def sweep_specs(sweep_id: str, scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    """The scenario specs a sweep would run, without running them."""
    return get_sweep(sweep_id).build(scale, seed)


def sweep_points(sweep_id: str, scale: str = "small", seed: int = 0) -> List[ScenarioPoint]:
    """The concrete scenario points a sweep would run, in execution order."""
    return expand(sweep_specs(sweep_id, scale, seed))


def run_specs(
    specs: List[ScenarioSpec],
    assemble: Assembler,
    scale: str,
    seed: int,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Execute ``specs`` with ``runner`` (serial, uncached by default)."""
    runner = runner if runner is not None else SweepRunner()
    values = runner.run_values(expand(specs))
    return assemble(values, scale, seed)


def run_sweep(
    sweep_id: str,
    scale: str = "small",
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    """Run a registered sweep end-to-end and assemble its experiment result."""
    sweep = get_sweep(sweep_id)
    return run_specs(sweep.build(scale, seed), sweep.assemble, scale, seed, runner)


# --------------------------------------------------------------------------- #
# Legacy experiment wrapping: one scenario point runs the whole experiment.
# --------------------------------------------------------------------------- #
def experiment_point(experiment_id: str, scale: str = "small", seed: int = 0) -> dict:
    """Scenario target running a legacy experiment ``run()`` as one point."""
    module = importlib.import_module(EXPERIMENTS[experiment_id])
    result = module.run(scale=scale, seed=seed)
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": result.notes,
    }


def result_from_value(value: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`experiment_point` output."""
    result = ExperimentResult(
        experiment_id=value["experiment_id"],
        title=value["title"],
        columns=list(value["columns"]),
        notes=value.get("notes", ""),
    )
    for row in value["rows"]:
        result.add_row(*row)
    return result


def _legacy_sweep(experiment_id: str) -> SweepDef:
    def build(scale: str, seed: int) -> List[ScenarioSpec]:
        return [
            ScenarioSpec.grid(
                "repro.engine.registry:experiment_point",
                name=experiment_id,
                seed=seed,
                experiment_id=experiment_id,
                scale=scale,
            )
        ]

    def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
        return result_from_value(values[0])

    return SweepDef(
        sweep_id=experiment_id,
        description=f"legacy experiment {EXPERIMENTS[experiment_id]} as one scenario point",
        build=build,
        assemble=assemble,
        timeout_s=LEGACY_POINT_TIMEOUT_S,
    )


def _native_sweep(experiment_id: str, module_path: str) -> SweepDef:
    def build(scale: str, seed: int) -> List[ScenarioSpec]:
        return importlib.import_module(module_path).build_specs(scale, seed)

    def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
        return importlib.import_module(module_path).assemble(values, scale, seed)

    return SweepDef(
        sweep_id=experiment_id,
        description=f"engine-native grid defined in {module_path}",
        build=build,
        assemble=assemble,
        timeout_s=NATIVE_TIMEOUT_OVERRIDES.get(experiment_id, NATIVE_POINT_TIMEOUT_S),
    )


for _experiment_id in EXPERIMENTS:
    if _experiment_id in ENGINE_NATIVE:
        register_sweep(_native_sweep(_experiment_id, ENGINE_NATIVE[_experiment_id]))
    else:
        register_sweep(_legacy_sweep(_experiment_id))
