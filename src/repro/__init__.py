"""repro: a reproduction of "Jellyfish: Networking Data Centers Randomly".

The public API exposes the topology constructors, the traffic/throughput
machinery and the two simulators.  Experiment runners that regenerate every
table and figure in the paper's evaluation live in :mod:`repro.experiments`
and are also reachable through ``python -m repro.cli``.
"""

from repro.topologies import (
    FatTreeTopology,
    JellyfishTopology,
    LeafSpineTopology,
    SmallWorldTopology,
    Topology,
)
from repro.topologies.degree_diameter import DegreeDiameterTopology
from repro.traffic import (
    TrafficMatrix,
    all_to_all_traffic,
    hotspot_traffic,
    random_permutation_traffic,
    stride_traffic,
)
from repro.flow import (
    max_concurrent_flow_edge_lp,
    max_concurrent_flow_path_lp,
    max_min_fair_allocation,
    max_servers_at_full_throughput,
    normalized_throughput,
    supports_full_throughput,
)
from repro.routing import build_path_set, ecmp_paths, k_shortest_paths, link_path_counts
from repro.simulation import (
    AimdConfig,
    SimulationConfig,
    measure_convergence_round,
    simulate_aimd,
    simulate_fluid,
)
from repro.failures import fail_random_links, fail_random_switches
from repro.engine import (
    ResultCache,
    ScenarioPoint,
    ScenarioSpec,
    SweepRunner,
    list_sweeps,
    run_sweep,
    sweep_points,
)

__version__ = "1.1.0"

__all__ = [
    "FatTreeTopology",
    "JellyfishTopology",
    "LeafSpineTopology",
    "SmallWorldTopology",
    "DegreeDiameterTopology",
    "Topology",
    "TrafficMatrix",
    "all_to_all_traffic",
    "hotspot_traffic",
    "random_permutation_traffic",
    "stride_traffic",
    "max_concurrent_flow_edge_lp",
    "max_concurrent_flow_path_lp",
    "max_min_fair_allocation",
    "max_servers_at_full_throughput",
    "normalized_throughput",
    "supports_full_throughput",
    "build_path_set",
    "ecmp_paths",
    "k_shortest_paths",
    "link_path_counts",
    "AimdConfig",
    "measure_convergence_round",
    "SimulationConfig",
    "simulate_aimd",
    "simulate_fluid",
    "fail_random_links",
    "fail_random_switches",
    "ResultCache",
    "ScenarioPoint",
    "ScenarioSpec",
    "SweepRunner",
    "list_sweeps",
    "run_sweep",
    "sweep_points",
    "__version__",
]
