"""Physical layout, cabling cost, and containerized (localized) Jellyfish."""

from repro.cabling.layout import CablingReport, FloorPlan
from repro.cabling.containers import (
    build_localized_jellyfish,
    container_of,
    fattree_local_link_fraction,
    local_link_fraction,
)

__all__ = [
    "CablingReport",
    "FloorPlan",
    "build_localized_jellyfish",
    "container_of",
    "fattree_local_link_fraction",
    "local_link_fraction",
]
