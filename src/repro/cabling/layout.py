"""Physical layout and cabling analysis (paper Section 6).

The paper's cabling recommendation for small clusters and container data
centers is to place all switches in a central "switch cluster" (a few racks
at the physical centre of the floor) and run aggregate cable bundles out to
the server racks.  This module models a rectangular machine-room floor plan,
places server racks on a grid and the switch cluster at the centre, and
reports per-topology cabling metrics: cable count, length distribution, how
many runs exceed the 10 m electrical limit, and total cabling cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.expansion.cost import CostModel
from repro.topologies.base import Topology
from repro.utils.validation import require_positive


@dataclass
class CablingReport:
    """Cable counts, lengths and costs for one topology under one layout."""

    switch_to_switch_cables: int
    server_to_switch_cables: int
    cable_lengths_m: List[float] = field(default_factory=list)
    electrical_limit_m: float = 10.0
    total_cost: float = 0.0

    @property
    def total_cables(self) -> int:
        return self.switch_to_switch_cables + self.server_to_switch_cables

    @property
    def num_optical(self) -> int:
        return sum(1 for length in self.cable_lengths_m if length > self.electrical_limit_m)

    @property
    def num_electrical(self) -> int:
        return len(self.cable_lengths_m) - self.num_optical

    @property
    def total_length_m(self) -> float:
        return sum(self.cable_lengths_m)

    def mean_length_m(self) -> float:
        if not self.cable_lengths_m:
            return 0.0
        return self.total_length_m / len(self.cable_lengths_m)


class FloorPlan:
    """Rectangular data-center floor with a central switch cluster.

    Server racks are laid out on a square grid with ``rack_pitch_m`` spacing;
    all ToR/aggregation switches live in a switch cluster at the centre of
    the floor (the paper's recommended optimization), so every
    switch-to-switch cable stays within the cluster (``cluster_span_m``) and
    every server-to-switch cable runs from the rack to the cluster.
    """

    def __init__(
        self,
        num_racks: int,
        rack_pitch_m: float = 1.2,
        cluster_span_m: float = 3.0,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        require_positive(num_racks, "num_racks")
        require_positive(rack_pitch_m, "rack_pitch_m")
        require_positive(cluster_span_m, "cluster_span_m")
        self.num_racks = num_racks
        self.rack_pitch_m = rack_pitch_m
        self.cluster_span_m = cluster_span_m
        self.cost_model = cost_model or CostModel()
        self.grid_side = max(1, math.ceil(math.sqrt(num_racks)))

    # ------------------------------------------------------------------ #
    def rack_position(self, rack_index: int) -> Tuple[float, float]:
        """(x, y) coordinates in metres of the given rack on the floor grid."""
        if not 0 <= rack_index < self.num_racks:
            raise ValueError(f"rack_index {rack_index} out of range")
        row, column = divmod(rack_index, self.grid_side)
        return column * self.rack_pitch_m, row * self.rack_pitch_m

    def cluster_position(self) -> Tuple[float, float]:
        """Coordinates of the central switch cluster."""
        span = (self.grid_side - 1) * self.rack_pitch_m
        return span / 2.0, span / 2.0

    def rack_to_cluster_length(self, rack_index: int) -> float:
        """Manhattan cable run from a rack to the switch cluster (plus slack)."""
        x, y = self.rack_position(rack_index)
        cx, cy = self.cluster_position()
        # 2 m of slack for vertical runs within the rack and the cluster.
        return abs(x - cx) + abs(y - cy) + 2.0

    # ------------------------------------------------------------------ #
    def report(self, topology: Topology, rack_of: Optional[Dict[Hashable, int]] = None) -> CablingReport:
        """Cabling report for ``topology`` placed on this floor plan.

        ``rack_of`` maps each server-hosting switch to a rack index; by
        default switches are assigned to racks round-robin in sorted order.
        Switch-to-switch cables stay inside the switch cluster
        (``cluster_span_m`` each); server cables run rack-to-cluster.
        """
        hosts = topology.server_hosts()
        if rack_of is None:
            rack_of = {
                switch: index % self.num_racks
                for index, switch in enumerate(sorted(hosts, key=str))
            }

        lengths: List[float] = []
        for _ in range(topology.num_links):
            lengths.append(self.cluster_span_m)
        for switch, count in topology.servers.items():
            if count == 0:
                continue
            rack = rack_of.get(switch, 0)
            run = self.rack_to_cluster_length(rack)
            lengths.extend([run] * count)

        total_cost = sum(self.cost_model.cable_cost(length) for length in lengths)
        return CablingReport(
            switch_to_switch_cables=topology.num_links,
            server_to_switch_cables=topology.num_servers,
            cable_lengths_m=lengths,
            electrical_limit_m=self.cost_model.electrical_cable_limit_m,
            total_cost=total_cost,
        )

    def compare(self, first: Topology, second: Topology) -> Dict[str, float]:
        """Relative cabling metrics of ``first`` vs ``second`` (e.g. Jellyfish vs fat-tree)."""
        report_a = self.report(first)
        report_b = self.report(second)
        if report_b.total_cables == 0 or report_b.total_cost == 0:
            raise ValueError("second topology has no cables to compare against")
        return {
            "cable_count_ratio": report_a.total_cables / report_b.total_cables,
            "cable_cost_ratio": report_a.total_cost / report_b.total_cost,
            "optical_fraction_first": (
                report_a.num_optical / report_a.total_cables if report_a.total_cables else 0.0
            ),
            "optical_fraction_second": (
                report_b.num_optical / report_b.total_cables if report_b.total_cables else 0.0
            ),
        }
