"""Two-layer ("localized") Jellyfish for container data centers (Fig 14).

For massive, container-built data centers the paper restricts a fraction of
every switch's random links to stay inside its own container (pod), so that
most cables stay short and only the remainder crosses containers.  The
result is a two-layered random graph: a random graph inside each container
and a random graph between containers.  Fig 14 shows throughput degrades by
less than ~6% even when 60% of links are localized.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.topologies.base import Topology, TopologyError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_fraction, require_integer


def _fill_random_links(graph: nx.Graph, nodes: List[Hashable], budget: Dict[Hashable, int], rand) -> None:
    """Randomly add links among ``nodes`` without exceeding per-node budgets."""
    open_nodes = [node for node in nodes if budget[node] > 0]
    stalled = 0
    while len(open_nodes) >= 2 and stalled < 3:
        added = False
        attempts = 4 * len(open_nodes)
        for _ in range(attempts):
            u, v = rand.sample(open_nodes, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                budget[u] -= 1
                budget[v] -= 1
                added = True
                break
        if not added:
            for i, u in enumerate(open_nodes):
                for v in open_nodes[i + 1:]:
                    if not graph.has_edge(u, v):
                        graph.add_edge(u, v)
                        budget[u] -= 1
                        budget[v] -= 1
                        added = True
                        break
                if added:
                    break
        if not added:
            stalled += 1
        open_nodes = [node for node in nodes if budget[node] > 0]


def build_localized_jellyfish(
    num_containers: int,
    switches_per_container: int,
    ports_per_switch: int,
    network_degree: int,
    servers_per_switch: int,
    local_fraction: float,
    rng: RngLike = None,
) -> Topology:
    """Build a two-layer Jellyfish with ``local_fraction`` of links in-container.

    Each switch devotes ``round(local_fraction * network_degree)`` ports to a
    random graph inside its container and the remaining network ports to a
    random graph across containers.  Switch identifiers are
    ``(container_index, switch_index)``.
    """
    require_integer(num_containers, "num_containers")
    require_integer(switches_per_container, "switches_per_container")
    require_integer(ports_per_switch, "ports_per_switch")
    require_integer(network_degree, "network_degree")
    require_integer(servers_per_switch, "servers_per_switch")
    require_fraction(local_fraction, "local_fraction")
    if network_degree + servers_per_switch > ports_per_switch:
        raise TopologyError("network_degree + servers_per_switch exceeds port count")
    if num_containers < 1 or switches_per_container < 2:
        raise TopologyError("need at least one container with two switches")

    rand = ensure_rng(rng)
    local_degree = int(round(local_fraction * network_degree))
    local_degree = min(local_degree, switches_per_container - 1)
    global_degree = network_degree - local_degree

    graph = nx.Graph()
    containers: List[List[Tuple[int, int]]] = []
    for container in range(num_containers):
        members = [(container, index) for index in range(switches_per_container)]
        containers.append(members)
        graph.add_nodes_from(members)

    # Local layer: a random graph inside each container.
    for members in containers:
        budget = {node: local_degree for node in members}
        _fill_random_links(graph, members, budget, rand)

    # Global layer: random links across containers only.
    if num_containers > 1 and global_degree > 0:
        budget = {node: global_degree for node in graph.nodes}
        all_nodes = list(graph.nodes)
        stalled = 0
        open_nodes = [node for node in all_nodes if budget[node] > 0]
        while len(open_nodes) >= 2 and stalled < 3:
            added = False
            attempts = 4 * len(open_nodes)
            for _ in range(attempts):
                u, v = rand.sample(open_nodes, 2)
                if u[0] != v[0] and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    budget[u] -= 1
                    budget[v] -= 1
                    added = True
                    break
            if not added:
                for i, u in enumerate(open_nodes):
                    for v in open_nodes[i + 1:]:
                        if u[0] != v[0] and not graph.has_edge(u, v):
                            graph.add_edge(u, v)
                            budget[u] -= 1
                            budget[v] -= 1
                            added = True
                            break
                    if added:
                        break
            if not added:
                stalled += 1
            open_nodes = [node for node in all_nodes if budget[node] > 0]

    ports = {node: ports_per_switch for node in graph.nodes}
    servers = {node: servers_per_switch for node in graph.nodes}
    return Topology(
        graph,
        ports,
        servers,
        name=f"jellyfish-localized-{local_fraction:.0%}",
    )


def container_of(switch: Hashable) -> int:
    """Container index of a switch created by :func:`build_localized_jellyfish`."""
    return switch[0]


def local_link_fraction(topology: Topology) -> float:
    """Fraction of switch-to-switch links whose endpoints share a container."""
    total = topology.num_links
    if total == 0:
        raise ValueError("topology has no links")
    local = sum(1 for u, v in topology.graph.edges if container_of(u) == container_of(v))
    return local / total


def fattree_local_link_fraction(k: int) -> float:
    """Fraction of fat-tree links that stay inside a pod: 0.5 * (1 + 1/k).

    From the paper Section 6.3, when each fat-tree pod becomes a container
    and the core switches are divided equally among the pods.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    return 0.5 * (1.0 + 1.0 / k)
