"""Pre-vectorization flow implementations, kept as parity references.

These are the pure-Python / ``lil_matrix`` implementations that shipped
before the vectorized flow engine took over the hot paths:

* :func:`max_min_fair_allocation_reference` -- progressive filling with
  per-link Python set scans, exactly as :mod:`repro.flow.maxmin` ran it.
* :func:`max_concurrent_flow_edge_lp_reference` /
  :func:`max_concurrent_flow_path_lp_reference` -- the LPs assembled
  cell-by-cell into ``lil_matrix``.  Their assembly steps are split out
  (:func:`assemble_edge_lp_reference`, :func:`assemble_path_lp_reference`)
  so ``benchmarks/record_flow.py`` can time matrix construction separately
  from the HiGHS solve.

The parity suite (``tests/test_flow_parity.py``) pins the vectorized
engine against these bit-for-bit (max-min) and matrix-for-matrix /
theta-to-1e-9 (LPs), and ``benchmarks/record_flow.py`` times old versus
new to produce ``benchmarks/BENCH_flow.json``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.flow.maxmin import Allocation, DirectedLink, FlowSpec, _path_links
from repro.flow.mcf import FlowSolverError, _directed_arcs
from repro.routing.paths import PathSet, build_path_set
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix


def max_min_fair_allocation_reference(
    flows: Sequence[FlowSpec],
    link_capacity: Dict[DirectedLink, float],
    default_capacity: float = 1.0,
    epsilon: float = 1e-9,
) -> Allocation:
    """Progressive filling over Python dicts/sets (the pre-vectorized kernel)."""
    # Subflow bookkeeping.
    subflow_paths: Dict[Tuple[Hashable, int], list] = {}
    subflow_cap: Dict[Tuple[Hashable, int], float] = {}
    flow_of: Dict[Tuple[Hashable, int], Hashable] = {}
    flow_demand: Dict[Hashable, float] = {}

    for flow in flows:
        flow_demand[flow.flow_id] = flow.demand
        for index, path in enumerate(flow.paths):
            key = (flow.flow_id, index)
            links = _path_links(path)
            subflow_paths[key] = links
            flow_of[key] = flow.flow_id
            if flow.subflow_caps is not None:
                subflow_cap[key] = flow.subflow_caps[index]
            else:
                subflow_cap[key] = flow.demand

    rates: Dict[Tuple[Hashable, int], float] = {key: 0.0 for key in subflow_paths}
    active = {key for key, links in subflow_paths.items() if links}
    # Subflows whose path is empty (same-switch traffic) get their cap outright.
    for key, links in subflow_paths.items():
        if not links:
            rates[key] = min(subflow_cap[key], flow_demand[flow_of[key]])

    residual: Dict[DirectedLink, float] = {}
    claimants: Dict[DirectedLink, set] = {}
    for key in active:
        for link in subflow_paths[key]:
            residual.setdefault(link, link_capacity.get(link, default_capacity))
            claimants.setdefault(link, set()).add(key)

    flow_rate: Dict[Hashable, float] = {flow.flow_id: 0.0 for flow in flows}
    for key, rate in rates.items():
        flow_rate[flow_of[key]] += rate

    def freeze(key: Tuple[Hashable, int]) -> None:
        active.discard(key)
        for link in subflow_paths[key]:
            claimants[link].discard(key)

    while active:
        # Largest uniform increment permitted by links, subflow caps and
        # aggregate flow demands.
        increment = None

        for link, users in claimants.items():
            live = [u for u in users if u in active]
            if not live:
                continue
            candidate = residual[link] / len(live)
            if increment is None or candidate < increment:
                increment = candidate

        active_per_flow: Dict[Hashable, int] = {}
        for key in active:
            active_per_flow[flow_of[key]] = active_per_flow.get(flow_of[key], 0) + 1

        for key in active:
            candidate = subflow_cap[key] - rates[key]
            if increment is None or candidate < increment:
                increment = candidate
        for flow_id, count in active_per_flow.items():
            remaining = flow_demand[flow_id] - flow_rate[flow_id]
            candidate = remaining / count
            if increment is None or candidate < increment:
                increment = candidate

        if increment is None:
            break
        increment = max(increment, 0.0)

        # Apply the increment.
        for key in list(active):
            rates[key] += increment
            flow_rate[flow_of[key]] += increment
        for link in residual:
            live = sum(1 for u in claimants[link] if u in active)
            residual[link] -= increment * live

        # Freeze saturated claimants.
        newly_frozen = set()
        for link, users in claimants.items():
            if residual[link] <= epsilon:
                newly_frozen.update(u for u in users if u in active)
        for key in list(active):
            if rates[key] >= subflow_cap[key] - epsilon:
                newly_frozen.add(key)
            elif flow_rate[flow_of[key]] >= flow_demand[flow_of[key]] - epsilon:
                newly_frozen.add(key)
        if not newly_frozen and increment <= epsilon:
            # No progress possible; avoid an infinite loop.
            break
        for key in newly_frozen:
            freeze(key)

    link_loads: Dict[DirectedLink, float] = {}
    for key, rate in rates.items():
        for link in subflow_paths[key]:
            link_loads[link] = link_loads.get(link, 0.0) + rate

    return Allocation(flow_rates=flow_rate, subflow_rates=rates, link_loads=link_loads)


def assemble_edge_lp_reference(topology: Topology, demands: Dict) -> tuple:
    """Cell-by-cell ``lil_matrix`` assembly of the edge-based LP.

    Returns ``(a_eq, b_eq, a_ub, b_ub, num_vars)`` with the matrices
    already converted to CSR, exactly as the pre-vectorized solver
    handed them to HiGHS.
    """
    arcs = _directed_arcs(topology)
    if not arcs:
        raise FlowSolverError("topology has no links but traffic crosses switches")
    nodes = list(topology.graph.nodes)
    node_index = {node: i for i, node in enumerate(nodes)}

    sources = sorted({src for src, _ in demands}, key=str)
    source_index = {src: i for i, src in enumerate(sources)}
    num_arcs = len(arcs)
    num_sources = len(sources)
    num_nodes = len(nodes)

    # Variables: f[s, a] for every source group and arc, then theta (last).
    num_flow_vars = num_sources * num_arcs
    theta_var = num_flow_vars
    num_vars = num_flow_vars + 1

    def var(source: Hashable, arc: int) -> int:
        return source_index[source] * num_arcs + arc

    # Demand bookkeeping per source.
    demand_to: Dict[Hashable, Dict[Hashable, float]] = {s: {} for s in sources}
    total_from: Dict[Hashable, float] = {s: 0.0 for s in sources}
    for (src, dst), rate in demands.items():
        demand_to[src][dst] = demand_to[src].get(dst, 0.0) + rate
        total_from[src] += rate

    # Equality constraints: conservation for every (source group, node).
    num_eq = num_sources * num_nodes
    a_eq = lil_matrix((num_eq, num_vars))
    b_eq = np.zeros(num_eq)
    for s in sources:
        base = source_index[s] * num_nodes
        for arc_id, (u, v, _) in enumerate(arcs):
            column = var(s, arc_id)
            # Arc u -> v: outflow at u, inflow at v.
            a_eq[base + node_index[u], column] -= 1.0
            a_eq[base + node_index[v], column] += 1.0
        for node in nodes:
            row = base + node_index[node]
            if node == s:
                # outflow - inflow = theta * total  ->  (in - out) + theta*total = 0
                a_eq[row, theta_var] = total_from[s]
            else:
                # inflow - outflow = theta * demand(s, node)
                a_eq[row, theta_var] = -demand_to[s].get(node, 0.0)

    # Inequality constraints: capacity per arc.
    a_ub = lil_matrix((num_arcs, num_vars))
    b_ub = np.zeros(num_arcs)
    for arc_id, (_, _, capacity) in enumerate(arcs):
        for s in sources:
            a_ub[arc_id, var(s, arc_id)] = 1.0
        b_ub[arc_id] = capacity

    return a_eq.tocsr(), b_eq, a_ub.tocsr(), b_ub, num_vars


def max_concurrent_flow_edge_lp_reference(
    topology: Topology, traffic: TrafficMatrix
) -> float:
    """The pre-vectorized edge-based max-concurrent-flow LP."""
    demands = traffic.switch_pairs()
    if not demands:
        return float("inf")

    a_eq, b_eq, a_ub, b_ub, num_vars = assemble_edge_lp_reference(topology, demands)
    objective = np.zeros(num_vars)
    objective[num_vars - 1] = -1.0  # maximize theta

    result = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise FlowSolverError(f"LP solver failed: {result.message}")
    return float(result.x[num_vars - 1])


def assemble_path_lp_reference(
    topology: Topology, demands: Dict, path_set: PathSet
) -> tuple:
    """Cell-by-cell ``lil_matrix`` assembly of the path-based LP.

    Returns ``(a_eq, b_eq, a_ub, b_ub, num_vars)`` in CSR form, exactly as
    the pre-vectorized solver handed them to HiGHS.
    """
    arcs = _directed_arcs(topology)
    arc_index = {(u, v): i for i, (u, v, _) in enumerate(arcs)}

    # Enumerate path variables.
    path_vars = []  # (pair, path)
    for pair in demands:
        options = path_set.get(pair)
        if not options:
            raise FlowSolverError(f"no candidate path for demanded pair {pair!r}")
        for path in options:
            path_vars.append((pair, path))

    num_paths = len(path_vars)
    theta_var = num_paths
    num_vars = num_paths + 1

    pairs = list(demands)
    pair_row = {pair: i for i, pair in enumerate(pairs)}

    a_eq = lil_matrix((len(pairs), num_vars))
    b_eq = np.zeros(len(pairs))
    for column, (pair, _) in enumerate(path_vars):
        a_eq[pair_row[pair], column] = 1.0
    for pair in pairs:
        a_eq[pair_row[pair], theta_var] = -demands[pair]

    a_ub = lil_matrix((len(arcs), num_vars))
    b_ub = np.array([capacity for (_, _, capacity) in arcs])
    for column, (_, path) in enumerate(path_vars):
        for u, v in zip(path, path[1:]):
            a_ub[arc_index[(u, v)], column] += 1.0

    return a_eq.tocsr(), b_eq, a_ub.tocsr(), b_ub, num_vars


def max_concurrent_flow_path_lp_reference(
    topology: Topology,
    traffic: TrafficMatrix,
    path_set: Optional[PathSet] = None,
    k: int = 8,
) -> float:
    """The pre-vectorized path-restricted max-concurrent-flow LP."""
    demands = traffic.switch_pairs()
    if not demands:
        return float("inf")

    if path_set is None:
        path_set = build_path_set(topology.graph, list(demands), scheme="ksp", k=k)

    a_eq, b_eq, a_ub, b_ub, num_vars = assemble_path_lp_reference(
        topology, demands, path_set
    )
    objective = np.zeros(num_vars)
    objective[num_vars - 1] = -1.0

    result = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise FlowSolverError(f"LP solver failed: {result.message}")
    return float(result.x[num_vars - 1])
