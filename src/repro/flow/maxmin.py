"""Max-min fair bandwidth allocation (progressive filling / water-filling).

This is the congestion-control substrate for the fluid simulator: a set of
subflows, each pinned to a single path, share link capacities fairly.  The
allocation is computed by progressive filling -- all unfrozen subflow rates
rise together until a link saturates (its subflows freeze) or a flow reaches
its aggregate demand cap (all of its subflows freeze).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

Path = Tuple[Hashable, ...]
DirectedLink = Tuple[Hashable, Hashable]


@dataclass
class FlowSpec:
    """A flow with one or more subflow paths and an aggregate demand cap.

    ``subflow_caps`` optionally caps each subflow individually (used to model
    applications that stripe data evenly over parallel TCP connections, as
    opposed to MPTCP which rebalances freely within the aggregate cap).
    """

    flow_id: Hashable
    paths: List[Path]
    demand: float = 1.0
    subflow_caps: Optional[List[float]] = None

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError(f"flow {self.flow_id!r} has no paths")
        if self.demand <= 0:
            raise ValueError(f"flow {self.flow_id!r} has non-positive demand")
        if self.subflow_caps is not None and len(self.subflow_caps) != len(self.paths):
            raise ValueError(
                f"flow {self.flow_id!r}: subflow_caps length must match paths"
            )


@dataclass
class Allocation:
    """Result of a max-min fair allocation."""

    flow_rates: Dict[Hashable, float] = field(default_factory=dict)
    subflow_rates: Dict[Tuple[Hashable, int], float] = field(default_factory=dict)
    link_loads: Dict[DirectedLink, float] = field(default_factory=dict)

    def total_throughput(self) -> float:
        return sum(self.flow_rates.values())


def _path_links(path: Path) -> List[DirectedLink]:
    return list(zip(path, path[1:]))


def max_min_fair_allocation(
    flows: Sequence[FlowSpec],
    link_capacity: Dict[DirectedLink, float],
    default_capacity: float = 1.0,
    epsilon: float = 1e-9,
) -> Allocation:
    """Compute max-min fair rates by progressive filling.

    ``link_capacity`` maps directed links (u, v) to capacity; links absent
    from the map get ``default_capacity``.  Every subflow of every flow is a
    claimant on the links of its path.  Rates rise uniformly; subflows freeze
    when a link on their path saturates, when their own cap is reached, or
    when the aggregate flow demand is met.
    """
    # Subflow bookkeeping.
    subflow_paths: Dict[Tuple[Hashable, int], List[DirectedLink]] = {}
    subflow_cap: Dict[Tuple[Hashable, int], float] = {}
    flow_of: Dict[Tuple[Hashable, int], Hashable] = {}
    flow_demand: Dict[Hashable, float] = {}

    for flow in flows:
        flow_demand[flow.flow_id] = flow.demand
        for index, path in enumerate(flow.paths):
            key = (flow.flow_id, index)
            links = _path_links(path)
            subflow_paths[key] = links
            flow_of[key] = flow.flow_id
            if flow.subflow_caps is not None:
                subflow_cap[key] = flow.subflow_caps[index]
            else:
                subflow_cap[key] = flow.demand

    rates: Dict[Tuple[Hashable, int], float] = {key: 0.0 for key in subflow_paths}
    active = {key for key, links in subflow_paths.items() if links}
    # Subflows whose path is empty (same-switch traffic) get their cap outright.
    for key, links in subflow_paths.items():
        if not links:
            rates[key] = min(subflow_cap[key], flow_demand[flow_of[key]])

    residual: Dict[DirectedLink, float] = {}
    claimants: Dict[DirectedLink, set] = {}
    for key in active:
        for link in subflow_paths[key]:
            residual.setdefault(link, link_capacity.get(link, default_capacity))
            claimants.setdefault(link, set()).add(key)

    flow_rate: Dict[Hashable, float] = {flow.flow_id: 0.0 for flow in flows}
    for key, rate in rates.items():
        flow_rate[flow_of[key]] += rate

    def freeze(key: Tuple[Hashable, int]) -> None:
        active.discard(key)
        for link in subflow_paths[key]:
            claimants[link].discard(key)

    while active:
        # Largest uniform increment permitted by links, subflow caps and
        # aggregate flow demands.
        increment = None

        for link, users in claimants.items():
            live = [u for u in users if u in active]
            if not live:
                continue
            candidate = residual[link] / len(live)
            if increment is None or candidate < increment:
                increment = candidate

        active_per_flow: Dict[Hashable, int] = {}
        for key in active:
            active_per_flow[flow_of[key]] = active_per_flow.get(flow_of[key], 0) + 1

        for key in active:
            candidate = subflow_cap[key] - rates[key]
            if increment is None or candidate < increment:
                increment = candidate
        for flow_id, count in active_per_flow.items():
            remaining = flow_demand[flow_id] - flow_rate[flow_id]
            candidate = remaining / count
            if increment is None or candidate < increment:
                increment = candidate

        if increment is None:
            break
        increment = max(increment, 0.0)

        # Apply the increment.
        for key in list(active):
            rates[key] += increment
            flow_rate[flow_of[key]] += increment
        for link in residual:
            live = sum(1 for u in claimants[link] if u in active)
            residual[link] -= increment * live

        # Freeze saturated claimants.
        newly_frozen = set()
        for link, users in claimants.items():
            if residual[link] <= epsilon:
                newly_frozen.update(u for u in users if u in active)
        for key in list(active):
            if rates[key] >= subflow_cap[key] - epsilon:
                newly_frozen.add(key)
            elif flow_rate[flow_of[key]] >= flow_demand[flow_of[key]] - epsilon:
                newly_frozen.add(key)
        if not newly_frozen and increment <= epsilon:
            # No progress possible; avoid an infinite loop.
            break
        for key in newly_frozen:
            freeze(key)

    link_loads: Dict[DirectedLink, float] = {}
    for key, rate in rates.items():
        for link in subflow_paths[key]:
            link_loads[link] = link_loads.get(link, 0.0) + rate

    return Allocation(flow_rates=flow_rate, subflow_rates=rates, link_loads=link_loads)
