"""Max-min fair bandwidth allocation (progressive filling / water-filling).

This is the congestion-control substrate for the fluid simulator: a set of
subflows, each pinned to a single path, share link capacities fairly.  The
allocation is computed by progressive filling -- all unfrozen subflow rates
rise together until a link saturates (its subflows freeze) or a flow reaches
its aggregate demand cap (all of its subflows freeze).

The filling rounds run as a vectorized kernel: subflow->link membership is
encoded once as a sparse CSR incidence matrix, and each round's live-claimant
counts, uniform increment, residual updates and saturation masks are numpy /
scipy matvecs instead of per-link Python set scans.  Freezing semantics are
bit-for-bit identical to the pre-vectorized implementation, which is retained
as :func:`repro.flow._reference.max_min_fair_allocation_reference` and pinned
by the hypothesis parity suite in ``tests/test_flow_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.telemetry import trace

Path = Tuple[Hashable, ...]
DirectedLink = Tuple[Hashable, Hashable]


@dataclass
class FlowSpec:
    """A flow with zero or more subflow paths and an aggregate demand cap.

    ``subflow_caps`` optionally caps each subflow individually (used to model
    applications that stripe data evenly over parallel TCP connections, as
    opposed to MPTCP which rebalances freely within the aggregate cap).

    An *empty* ``paths`` list is an **unrouted** flow -- the degradation
    semantics for a demand whose endpoints are unreachable on a partitioned
    topology (see :mod:`repro.failures.degradation`).  Unrouted flows place
    no subflows, claim no capacity, and are allocated exactly 0.0 by both
    max-min implementations, so they show up as zero throughput rather than
    an exception.
    """

    flow_id: Hashable
    paths: List[Path]
    demand: float = 1.0
    subflow_caps: Optional[List[float]] = None

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"flow {self.flow_id!r} has non-positive demand")
        if self.subflow_caps is not None and len(self.subflow_caps) != len(self.paths):
            raise ValueError(
                f"flow {self.flow_id!r}: subflow_caps length must match paths"
            )


@dataclass
class Allocation:
    """Result of a max-min fair allocation."""

    flow_rates: Dict[Hashable, float] = field(default_factory=dict)
    subflow_rates: Dict[Tuple[Hashable, int], float] = field(default_factory=dict)
    link_loads: Dict[DirectedLink, float] = field(default_factory=dict)

    def total_throughput(self) -> float:
        return sum(self.flow_rates.values())


def _path_links(path: Path) -> List[DirectedLink]:
    return list(zip(path, path[1:]))


def max_min_fair_allocation(
    flows: Sequence[FlowSpec],
    link_capacity: Dict[DirectedLink, float],
    default_capacity: float = 1.0,
    epsilon: float = 1e-9,
) -> Allocation:
    """Compute max-min fair rates by progressive filling.

    ``link_capacity`` maps directed links (u, v) to capacity; links absent
    from the map get ``default_capacity``.  Every subflow of every flow is a
    claimant on the links of its path.  Rates rise uniformly; subflows freeze
    when a link on their path saturates, when their own cap is reached, or
    when the aggregate flow demand is met.
    """
    # Subflow bookkeeping (dict pass kept identical to the reference, so
    # duplicate flow ids and repeated (flow, index) keys resolve the same).
    subflow_paths: Dict[Tuple[Hashable, int], List[DirectedLink]] = {}
    subflow_cap: Dict[Tuple[Hashable, int], float] = {}
    flow_of: Dict[Tuple[Hashable, int], Hashable] = {}
    flow_demand: Dict[Hashable, float] = {}

    for flow in flows:
        flow_demand[flow.flow_id] = flow.demand
        for index, path in enumerate(flow.paths):
            key = (flow.flow_id, index)
            links = _path_links(path)
            subflow_paths[key] = links
            flow_of[key] = flow.flow_id
            if flow.subflow_caps is not None:
                subflow_cap[key] = flow.subflow_caps[index]
            else:
                subflow_cap[key] = flow.demand

    keys = list(subflow_paths)
    num_subflows = len(keys)
    flow_ids = list(flow_demand)
    flow_pos = {flow_id: i for i, flow_id in enumerate(flow_ids)}
    num_flows = len(flow_ids)

    # Scalar-initialized rates: zero-hop subflows (same-switch traffic) get
    # their cap outright; the accumulation into per-flow totals runs in key
    # order with Python float adds, matching the reference bit-for-bit.
    initial_rates = []
    initial_flow_rate = [0.0] * num_flows
    for key in keys:
        if subflow_paths[key]:
            rate = 0.0
        else:
            rate = min(subflow_cap[key], flow_demand[flow_of[key]])
        initial_rates.append(rate)
    for j, key in enumerate(keys):
        initial_flow_rate[flow_pos[flow_of[key]]] += initial_rates[j]

    # Encode subflow->link membership as COO triplets; the claimant matrix is
    # binary (a subflow claims each link of its path once, however many times
    # the path traverses it -- same as the reference's per-link sets).
    link_pos: Dict[DirectedLink, int] = {}
    residual_list: List[float] = []
    coo_rows: List[int] = []
    coo_cols: List[int] = []
    for j, key in enumerate(keys):
        links = subflow_paths[key]
        if not links:
            continue
        seen_here = set()
        for link in links:
            lid = link_pos.get(link)
            if lid is None:
                lid = link_pos[link] = len(residual_list)
                residual_list.append(link_capacity.get(link, default_capacity))
            if lid not in seen_here:
                seen_here.add(lid)
                coo_rows.append(lid)
                coo_cols.append(j)
    num_links = len(residual_list)

    rates = np.asarray(initial_rates, dtype=np.float64)
    flow_rate = np.asarray(initial_flow_rate, dtype=np.float64)
    caps = np.asarray([subflow_cap[key] for key in keys], dtype=np.float64)
    demands = np.asarray([flow_demand[f] for f in flow_ids], dtype=np.float64)
    subflow_flow = np.asarray(
        [flow_pos[flow_of[key]] for key in keys], dtype=np.intp
    )
    residual = np.asarray(residual_list, dtype=np.float64)
    active = np.asarray([bool(subflow_paths[key]) for key in keys], dtype=bool)

    if num_links:
        membership = csr_matrix(
            (
                np.ones(len(coo_rows), dtype=np.float64),
                (np.asarray(coo_rows), np.asarray(coo_cols)),
            ),
            shape=(num_links, num_subflows),
        )
        membership_t = membership.T.tocsr()
    else:
        membership = membership_t = None

    saturation_rounds = 0
    with trace("maxmin.fill", subflows=num_subflows, links=num_links) as span:
        while active.any():
            saturation_rounds += 1
            active_f = active.astype(np.float64)
            # Largest uniform increment permitted by links, subflow caps and
            # aggregate flow demands (min over the same candidate set as the
            # reference; min is order-independent).
            increment = None
            if membership is not None:
                live = membership @ active_f
                contested = live > 0.0
                if contested.any():
                    increment = float(np.min(residual[contested] / live[contested]))

            counts = np.bincount(subflow_flow[active], minlength=num_flows)
            headroom = caps[active] - rates[active]
            if headroom.size:
                candidate = float(headroom.min())
                if increment is None or candidate < increment:
                    increment = candidate
            claiming = counts > 0
            if claiming.any():
                candidate = float(
                    np.min((demands[claiming] - flow_rate[claiming]) / counts[claiming])
                )
                if increment is None or candidate < increment:
                    increment = candidate

            if increment is None:
                break
            increment = max(increment, 0.0)

            # Apply the increment.  Per-flow totals grow by one addition per
            # active subflow (not count * increment), replicating the reference's
            # sequential accumulation exactly.
            rates[active] += increment
            for step in range(int(counts.max()) if counts.size else 0):
                flow_rate[counts > step] += increment
            if membership is not None:
                residual -= increment * live

            # Freeze saturated claimants.
            newly_frozen = np.zeros(num_subflows, dtype=bool)
            if membership is not None:
                saturated = residual <= epsilon
                if saturated.any():
                    touched = (membership_t @ saturated.astype(np.float64)) > 0.0
                    newly_frozen |= active & touched
            newly_frozen |= active & (rates >= caps - epsilon)
            newly_frozen |= active & (flow_rate >= demands - epsilon)[subflow_flow]
            if not newly_frozen.any() and increment <= epsilon:
                # No progress possible; avoid an infinite loop.
                break
            active &= ~newly_frozen
        span.add(saturation_rounds=saturation_rounds)

    # Final accounting mirrors the reference's scalar passes (Python float
    # adds in key order, one add per link traversal) so load bookkeeping is
    # bit-identical even for paths that revisit a link.
    rate_of = {key: float(rates[j]) for j, key in enumerate(keys)}
    link_loads: Dict[DirectedLink, float] = {}
    for key, rate in rate_of.items():
        for link in subflow_paths[key]:
            link_loads[link] = link_loads.get(link, 0.0) + rate
    flow_rate_of = {
        flow_id: float(flow_rate[i]) for i, flow_id in enumerate(flow_ids)
    }

    return Allocation(
        flow_rates=flow_rate_of, subflow_rates=rate_of, link_loads=link_loads
    )
