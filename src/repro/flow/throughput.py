"""Throughput harness: normalized throughput and servers-at-full-capacity.

Implements the paper's evaluation methodology (Section 4):

* :func:`normalized_throughput` -- solve the max-concurrent-flow problem for
  a random-permutation traffic matrix and report the per-flow normalized
  throughput in [0, 1] (the concurrent factor theta, capped at 1).
* :func:`supports_full_throughput` -- check that a topology carries several
  independently sampled permutation matrices at full line rate.
* :func:`max_servers_at_full_throughput` -- the binary-search procedure used
  for Fig 2(c) and Fig 11: find the largest server count a topology family
  supports at full capacity, then verify with extra matrices.

Throughput state is shared across the harness: the path engine keeps a
content-hashed table of per-pair routes
(:func:`repro.routing.paths.shared_path_set`) and the demand-independent LP
blocks (:func:`repro.flow.path_lp.shared_path_lp_structure`) per topology,
so checking one topology against several permutation matrices — and every
probe of the binary search — only rebuilds the demand rows of the LP and
routes each newly demanded switch pair once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # runtime import is lazy to avoid a failures<->flow cycle
    from repro.failures.degradation import DegradationReport

import numpy as np

from repro.flow.mcf import max_concurrent_flow_edge_lp
from repro.flow.path_lp import (
    max_concurrent_flow_path_lp,
    shared_path_lp_structure,
)
from repro.graphs.csr import csr_graph
from repro.routing.paths import shared_path_set
from repro.telemetry import count, trace
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic
from repro.utils.rng import RngLike, ensure_rng

#: Bound screens skip the LP only when they prove theta short of full line
#: rate by at least this margin (comfortably wider than the 1e-9 decision
#: epsilon, so floating-point noise in a bound can never flip a decision).
_SCREEN_MARGIN = 1e-6


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a throughput evaluation for one topology and one matrix."""

    theta: float
    normalized: float
    num_flows: int

    def supports_full_capacity(self) -> bool:
        return self.theta >= 1.0 - 1e-9


@dataclass(frozen=True)
class DegradedThroughputResult:
    """A throughput evaluation carrying its structural damage report.

    ``normalized`` is the degradation-scaled per-flow throughput in [0, 1]:
    unreachable demands contribute exactly zero, reachable demands are
    evaluated by the LP within their components, and the two are combined
    as ``lp_normalized * reachable / total`` -- the single semantics every
    kernel follows on partitioned topologies (see
    :mod:`repro.failures.degradation`).  ``report`` is the structured
    :class:`~repro.failures.degradation.DegradationReport`.
    """

    normalized: float
    theta: float
    num_flows: int
    report: "DegradationReport"


def concurrent_flow(
    topology: Topology,
    traffic: TrafficMatrix,
    engine: str = "path",
    k: int = 8,
) -> float:
    """Concurrent-flow factor theta using the selected LP engine."""
    if engine == "edge":
        return max_concurrent_flow_edge_lp(topology, traffic)
    if engine == "path":
        return max_concurrent_flow_path_lp(topology, traffic, k=k)
    raise ValueError(f"unknown engine {engine!r}; expected 'edge' or 'path'")


def normalized_throughput(
    topology: Topology,
    traffic: Optional[TrafficMatrix] = None,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> ThroughputResult:
    """Normalized per-flow throughput under optimal (LP) routing.

    If ``traffic`` is omitted, a random permutation matrix is sampled.
    """
    if traffic is None:
        traffic = random_permutation_traffic(topology, rng=rng)
    if len(traffic) == 0:
        return ThroughputResult(theta=float("inf"), normalized=1.0, num_flows=0)
    theta = concurrent_flow(topology, traffic, engine=engine, k=k)
    return ThroughputResult(
        theta=theta, normalized=min(theta, 1.0), num_flows=len(traffic)
    )


def degraded_throughput(
    topology: Topology,
    traffic: Optional[TrafficMatrix] = None,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
    baseline_servers: Optional[int] = None,
) -> DegradedThroughputResult:
    """Normalized throughput with explicit degradation semantics.

    The degradation-safe counterpart of :func:`normalized_throughput` for
    topologies that may be partitioned or stripped of servers by failures:

    * demands whose endpoints sit in different connected components count
      as zero throughput (they are filtered out before the LP ever sees
      them, so nothing raises);
    * reachable demands are evaluated normally and scaled by the reachable
      fraction, matching the historical fig08 disconnection handling
      bit-for-bit on the same inputs;
    * an *empty* traffic matrix is only "fully served" when nothing was
      lost -- if ``baseline_servers`` (the healthy plant's server count)
      shows that demand used to exist but can no longer be expressed
      (every server-hosting switch failed), the result is 0.0, not the
      vacuous 1.0 the raw LP harness reports.

    Returns a :class:`DegradedThroughputResult` whose ``report`` field
    carries the component structure behind the number.
    """
    from repro.failures.degradation import (  # lazy: failures imports flow
        degradation_report,
        split_reachable_demands,
    )

    if traffic is None:
        traffic = random_permutation_traffic(topology, rng=rng)
    report = degradation_report(
        topology, traffic=traffic, baseline_servers=baseline_servers
    )
    if len(traffic) == 0:
        lost_all_demand = (
            baseline_servers is not None
            and baseline_servers >= 2
            and topology.num_servers < 2
        )
        value = 0.0 if lost_all_demand else 1.0
        return DegradedThroughputResult(
            normalized=value,
            theta=0.0 if lost_all_demand else float("inf"),
            num_flows=0,
            report=report,
        )
    if report.num_components <= 1:
        result = normalized_throughput(topology, traffic, engine=engine, k=k)
        return DegradedThroughputResult(
            normalized=result.normalized,
            theta=result.theta,
            num_flows=result.num_flows,
            report=report,
        )
    reachable, _ = split_reachable_demands(topology, traffic)
    total_flows = len(traffic)
    if not reachable:
        return DegradedThroughputResult(
            normalized=0.0, theta=0.0, num_flows=total_flows, report=report
        )
    result = normalized_throughput(
        topology, TrafficMatrix(reachable), engine=engine, k=k
    )
    scaled = (result.normalized * len(reachable)) / total_flows
    return DegradedThroughputResult(
        normalized=scaled, theta=result.theta, num_flows=total_flows, report=report
    )


def _throughput_upper_bound(topology: Topology, traffic: TrafficMatrix) -> float:
    """Analytic upper bound on the concurrent-flow factor theta.

    Two sound bounds, both valid for the edge LP and (a fortiori) the
    path-restricted LP:

    * **switch cut** -- all traffic entering or leaving a switch crosses its
      incident links, so ``theta <= incident_capacity / demand`` per switch
      and direction;
    * **volume** -- a unit of (s, t) flow consumes at least ``hop_dist(s, t)``
      units of directed arc capacity, so ``theta <= total_arc_capacity /
      sum(demand * hop_dist)``.

    Returns ``inf`` when no bound applies (e.g. a demanded pair is
    unreachable, which the LP path handles by raising).
    """
    if not traffic.switch_pairs():
        return float("inf")
    graph = topology.graph
    csr = csr_graph(graph)
    arrays = traffic.as_switch_array(csr.index_of)

    # Per-switch in/out demand via bincount: bins accumulate in demand
    # order, the same float-add sequence as the dict walk it replaces.
    num_nodes = csr.num_nodes
    out_demand = np.bincount(arrays.src, weights=arrays.rates, minlength=num_nodes)
    in_demand = np.bincount(arrays.dst, weights=arrays.rates, minlength=num_nodes)
    active = np.flatnonzero((out_demand > 0.0) | (in_demand > 0.0))

    bound = float("inf")
    incident_cap = np.empty(len(active), dtype=np.float64)
    for position, index in enumerate(active.tolist()):
        capacity = 0.0
        for _, _, data in graph.edges(csr.nodes[index], data=True):
            capacity += float(data.get("capacity", 1.0))
        incident_cap[position] = capacity
    for per_switch in (out_demand, in_demand):
        demanded = per_switch[active]
        positive = demanded > 0.0
        if positive.any():
            candidate = float(np.min(incident_cap[positive] / demanded[positive]))
            if candidate < bound:
                bound = candidate

    unique_sources, inverse = np.unique(arrays.src, return_inverse=True)
    distances = csr.hop_distance_matrix(unique_sources.tolist())
    hops = distances[inverse, arrays.dst]
    if (hops < 0).any():
        # Unreachable pair: no volume bound applies.  Degradation-aware
        # callers (degraded_throughput, the lifecycle engine) filter such
        # demands before solving; the raw LP path still raises, by design.
        return float("inf")
    # Sequential sum in demand order keeps the bound bit-identical to the
    # historical scalar accumulation (numpy's pairwise sum would not).
    total_cost = sum((arrays.rates * hops).tolist())
    if total_cost > 0.0:
        total_capacity = 2.0 * sum(
            float(data.get("capacity", 1.0))
            for _, _, data in graph.edges(data=True)
        )
        candidate = total_capacity / total_cost
        if candidate < bound:
            bound = candidate
    return bound


def _supports_matrix(
    topology: Topology, traffic: TrafficMatrix, engine: str, k: int
) -> bool:
    """Full-line-rate decision for one traffic matrix.

    For the path engine this runs the decision-optimized solve path
    (:meth:`~repro.flow.path_lp.PathLPStructure.solve_decision`): the
    analytic bound screens first — a probe they prove infeasible never
    assembles paths or an LP at all — then the guarded IPM/simplex solve.
    Decisions are identical to evaluating ``normalized_throughput``.
    """
    if len(traffic) == 0:
        return True
    with trace("throughput.screen", flows=len(traffic)):
        screened = _throughput_upper_bound(topology, traffic) < 1.0 - _SCREEN_MARGIN
    if screened:
        count("throughput.screen_rejects")
        return False
    if engine != "path":
        return normalized_throughput(
            topology, traffic, engine=engine, k=k
        ).supports_full_capacity()
    demands = traffic.switch_pairs()
    if not demands:
        return True
    with trace("throughput.decide", pairs=len(demands)):
        arrays = traffic.as_switch_array(csr_graph(topology.graph).index_of)
        structure = shared_path_lp_structure(topology, scheme="ksp", k=k)
        path_set = shared_path_set(topology.graph, arrays.pairs, scheme="ksp", k=k)
        theta = structure.solve_decision(demands, path_set, rates=arrays.rates)
    return theta >= 1.0 - 1e-9


def supports_full_throughput(
    topology: Topology,
    num_matrices: int = 3,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> bool:
    """True if the topology carries ``num_matrices`` random permutations at line rate.

    A disconnected topology (which can arise when very few ports per switch
    remain for the network) can never carry permutation traffic between all
    of its servers, so it is reported as infeasible outright.
    """
    rand = ensure_rng(rng)
    if not topology.is_connected():
        return False
    for _ in range(num_matrices):
        traffic = random_permutation_traffic(topology, rng=rand)
        if not _supports_matrix(topology, traffic, engine, k):
            return False
    return True


def max_servers_at_full_throughput(
    topology_factory: Callable[[int], Topology],
    lower: int,
    upper: int,
    num_matrices: int = 3,
    verification_matrices: int = 0,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> int:
    """Binary-search the largest server count supported at full capacity.

    ``topology_factory(num_servers)`` must build a topology hosting that many
    servers from the fixed equipment pool under study.  The search assumes
    monotonicity (more servers -> harder to support), mirroring the paper's
    procedure, and optionally verifies the result against additional
    matrices.
    """
    if lower > upper:
        raise ValueError("lower bound exceeds upper bound")
    rand = ensure_rng(rng)

    def feasible(num_servers: int) -> bool:
        topology = topology_factory(num_servers)
        return supports_full_throughput(
            topology, num_matrices=num_matrices, engine=engine, k=k, rng=rand
        )

    if not feasible(lower):
        raise ValueError(f"even the lower bound of {lower} servers is infeasible")

    low, high = lower, upper
    if feasible(upper):
        best = upper
    else:
        # Invariant: low feasible, high infeasible.
        while high - low > 1:
            middle = (low + high) // 2
            if feasible(middle):
                low = middle
            else:
                high = middle
        best = low

    if verification_matrices > 0:
        topology = topology_factory(best)
        if not supports_full_throughput(
            topology,
            num_matrices=verification_matrices,
            engine=engine,
            k=k,
            rng=rand,
        ):
            # Fall back conservatively if the verification fails.
            best = max(lower, best - 1)
    return best
