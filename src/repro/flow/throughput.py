"""Throughput harness: normalized throughput and servers-at-full-capacity.

Implements the paper's evaluation methodology (Section 4):

* :func:`normalized_throughput` -- solve the max-concurrent-flow problem for
  a random-permutation traffic matrix and report the per-flow normalized
  throughput in [0, 1] (the concurrent factor theta, capped at 1).
* :func:`supports_full_throughput` -- check that a topology carries several
  independently sampled permutation matrices at full line rate.
* :func:`max_servers_at_full_throughput` -- the binary-search procedure used
  for Fig 2(c) and Fig 11: find the largest server count a topology family
  supports at full capacity, then verify with extra matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.flow.mcf import max_concurrent_flow_edge_lp
from repro.flow.path_lp import max_concurrent_flow_path_lp
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix, random_permutation_traffic
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a throughput evaluation for one topology and one matrix."""

    theta: float
    normalized: float
    num_flows: int

    def supports_full_capacity(self) -> bool:
        return self.theta >= 1.0 - 1e-9


def concurrent_flow(
    topology: Topology,
    traffic: TrafficMatrix,
    engine: str = "path",
    k: int = 8,
) -> float:
    """Concurrent-flow factor theta using the selected LP engine."""
    if engine == "edge":
        return max_concurrent_flow_edge_lp(topology, traffic)
    if engine == "path":
        return max_concurrent_flow_path_lp(topology, traffic, k=k)
    raise ValueError(f"unknown engine {engine!r}; expected 'edge' or 'path'")


def normalized_throughput(
    topology: Topology,
    traffic: Optional[TrafficMatrix] = None,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> ThroughputResult:
    """Normalized per-flow throughput under optimal (LP) routing.

    If ``traffic`` is omitted, a random permutation matrix is sampled.
    """
    if traffic is None:
        traffic = random_permutation_traffic(topology, rng=rng)
    if len(traffic) == 0:
        return ThroughputResult(theta=float("inf"), normalized=1.0, num_flows=0)
    theta = concurrent_flow(topology, traffic, engine=engine, k=k)
    return ThroughputResult(
        theta=theta, normalized=min(theta, 1.0), num_flows=len(traffic)
    )


def supports_full_throughput(
    topology: Topology,
    num_matrices: int = 3,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> bool:
    """True if the topology carries ``num_matrices`` random permutations at line rate.

    A disconnected topology (which can arise when very few ports per switch
    remain for the network) can never carry permutation traffic between all
    of its servers, so it is reported as infeasible outright.
    """
    rand = ensure_rng(rng)
    if not topology.is_connected():
        return False
    for _ in range(num_matrices):
        result = normalized_throughput(topology, engine=engine, k=k, rng=rand)
        if not result.supports_full_capacity():
            return False
    return True


def max_servers_at_full_throughput(
    topology_factory: Callable[[int], Topology],
    lower: int,
    upper: int,
    num_matrices: int = 3,
    verification_matrices: int = 0,
    engine: str = "path",
    k: int = 8,
    rng: RngLike = None,
) -> int:
    """Binary-search the largest server count supported at full capacity.

    ``topology_factory(num_servers)`` must build a topology hosting that many
    servers from the fixed equipment pool under study.  The search assumes
    monotonicity (more servers -> harder to support), mirroring the paper's
    procedure, and optionally verifies the result against additional
    matrices.
    """
    if lower > upper:
        raise ValueError("lower bound exceeds upper bound")
    rand = ensure_rng(rng)

    def feasible(num_servers: int) -> bool:
        topology = topology_factory(num_servers)
        return supports_full_throughput(
            topology, num_matrices=num_matrices, engine=engine, k=k, rng=rand
        )

    if not feasible(lower):
        raise ValueError(f"even the lower bound of {lower} servers is infeasible")

    low, high = lower, upper
    if feasible(upper):
        best = upper
    else:
        # Invariant: low feasible, high infeasible.
        while high - low > 1:
            middle = (low + high) // 2
            if feasible(middle):
                low = middle
            else:
                high = middle
        best = low

    if verification_matrices > 0:
        topology = topology_factory(best)
        if not supports_full_throughput(
            topology,
            num_matrices=verification_matrices,
            engine=engine,
            k=k,
            rng=rand,
        ):
            # Fall back conservatively if the verification fails.
            best = max(lower, best - 1)
    return best
