"""Path-based max-concurrent-flow LP.

The edge-based LP in :mod:`repro.flow.mcf` is exact but grows as
``sources x arcs``; for the larger topologies in the evaluation we use a
path-based restriction: each switch pair may split its demand over its k
shortest paths.  With a generous k this is an excellent approximation of the
optimum (and a guaranteed lower bound); the test suite cross-validates it
against the exact LP on small graphs.

Formulation: variable ``x[p]`` is the flow on path ``p``; ``theta`` the
concurrent-flow factor.  For every pair: ``sum_{p in P(pair)} x[p] =
theta * demand(pair)``; for every directed arc: ``sum_{p using arc} x[p] <=
capacity``; maximize ``theta``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.flow.mcf import FlowSolverError, _directed_arcs
from repro.routing.paths import PathSet, build_path_set
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix


def max_concurrent_flow_path_lp(
    topology: Topology,
    traffic: TrafficMatrix,
    path_set: Optional[PathSet] = None,
    k: int = 8,
) -> float:
    """Concurrent-flow factor ``theta`` restricted to a candidate path set.

    If ``path_set`` is omitted, the k shortest paths for every demanded
    switch pair are computed on the fly.
    """
    demands = traffic.switch_pairs()
    if not demands:
        return float("inf")

    if path_set is None:
        path_set = build_path_set(topology.graph, list(demands), scheme="ksp", k=k)

    arcs = _directed_arcs(topology)
    arc_index = {(u, v): i for i, (u, v, _) in enumerate(arcs)}

    # Enumerate path variables.
    path_vars = []  # (pair, path)
    for pair in demands:
        options = path_set.get(pair)
        if not options:
            raise FlowSolverError(f"no candidate path for demanded pair {pair!r}")
        for path in options:
            path_vars.append((pair, path))

    num_paths = len(path_vars)
    theta_var = num_paths
    num_vars = num_paths + 1

    pairs = list(demands)
    pair_row = {pair: i for i, pair in enumerate(pairs)}

    a_eq = lil_matrix((len(pairs), num_vars))
    b_eq = np.zeros(len(pairs))
    for column, (pair, _) in enumerate(path_vars):
        a_eq[pair_row[pair], column] = 1.0
    for pair in pairs:
        a_eq[pair_row[pair], theta_var] = -demands[pair]

    a_ub = lil_matrix((len(arcs), num_vars))
    b_ub = np.array([capacity for (_, _, capacity) in arcs])
    for column, (_, path) in enumerate(path_vars):
        for u, v in zip(path, path[1:]):
            a_ub[arc_index[(u, v)], column] += 1.0

    objective = np.zeros(num_vars)
    objective[theta_var] = -1.0

    result = linprog(
        objective,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise FlowSolverError(f"LP solver failed: {result.message}")
    return float(result.x[theta_var])
