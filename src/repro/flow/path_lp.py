"""Path-based max-concurrent-flow LP.

The edge-based LP in :mod:`repro.flow.mcf` is exact but grows as
``sources x arcs``; for the larger topologies in the evaluation we use a
path-based restriction: each switch pair may split its demand over its k
shortest paths.  With a generous k this is an excellent approximation of the
optimum (and a guaranteed lower bound); the test suite cross-validates it
against the exact LP on small graphs.

Formulation: variable ``x[p]`` is the flow on path ``p``; ``theta`` the
concurrent-flow factor.  For every pair: ``sum_{p in P(pair)} x[p] =
theta * demand(pair)``; for every directed arc: ``sum_{p using arc} x[p] <=
capacity``; maximize ``theta``.

The LP splits into demand-independent structure and per-matrix demand rows.
:class:`PathLPStructure` owns the structure — directed arcs, capacities and
per-pair path→arc column blocks — and assembles each matrix's constraint
matrices from vectorized COO triplets (no ``lil_matrix``, no per-cell
writes).  Structures are cached in a small LRU keyed by the graph's CSR
``content_hash`` (the same content-addressing as the engine's result
cache), so a throughput sweep that probes one topology against several
traffic matrices only rebuilds the theta column per matrix.  The historical
cell-by-cell assembly is retained in :mod:`repro.flow._reference`; the
canonical CSR matrices produced here are identical to it bit-for-bit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.flow.mcf import FlowSolverError, _directed_arcs
from repro.graphs.csr import csr_graph
from repro.telemetry import trace
from repro.routing.paths import PathSet, shared_path_set
from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix

#: Content-hash-keyed LRU of demand-independent LP structures.
_SHARED_STRUCTURES: "OrderedDict[Tuple[str, str, int], PathLPStructure]" = OrderedDict()
_SHARED_STRUCTURE_MAX = 8


class PathLPStructure:
    """Demand-independent blocks of the path LP for one topology.

    Holds the directed-arc enumeration, the capacity vector (``b_ub``), and
    a lazily grown per-pair cache of path→arc incidence triplets.  Only the
    equality rows' theta column depends on the traffic matrix, so repeated
    solves over one topology reuse everything else.
    """

    def __init__(self, topology: Topology, scheme: str = "ksp", k: int = 8):
        self.scheme = scheme
        self.k = k
        self.arcs = _directed_arcs(topology)
        self.num_arcs = len(self.arcs)
        self.arc_index = {(u, v): i for i, (u, v, _) in enumerate(self.arcs)}
        self.capacities = np.asarray(
            [capacity for (_, _, capacity) in self.arcs], dtype=np.float64
        )
        # pair -> (num_paths, arc row ids, column ids local to the pair block)
        self._pair_blocks: Dict[Tuple, Tuple[int, np.ndarray, np.ndarray]] = {}

    def matches(self, topology: Topology) -> bool:
        """True if this structure still describes ``topology``'s arcs exactly.

        Guards the content-hash cache against the (contrived) case of two
        graphs with equal adjacency hash but different edge iteration order
        or capacities — arc order defines LP row order, which must match.
        """
        return self.arcs == _directed_arcs(topology)

    def _pair_block(
        self, pair: Tuple, path_set: PathSet
    ) -> Tuple[int, np.ndarray, np.ndarray]:
        block = self._pair_blocks.get(pair)
        if block is None:
            options = path_set.get(pair)
            if not options:
                raise FlowSolverError(f"no candidate path for demanded pair {pair!r}")
            arc_index = self.arc_index
            rows = [
                arc_index[(u, v)]
                for path in options
                for u, v in zip(path, path[1:])
            ]
            cols = [
                column
                for column, path in enumerate(options)
                for _ in range(len(path) - 1)
            ]
            block = (
                len(options),
                np.asarray(rows, dtype=np.int64),
                np.asarray(cols, dtype=np.int64),
            )
            self._pair_blocks[pair] = block
        return block

    def assemble(
        self, demands: Dict, path_set: PathSet, rates: Optional[np.ndarray] = None
    ) -> tuple:
        """Vectorized COO assembly for one traffic matrix.

        Returns ``(a_eq, b_eq, a_ub, b_ub, num_vars)``; the matrices are
        canonical CSR, equal to the reference ``lil_matrix`` assembly.
        ``rates``, when given, must hold ``demands``' values in key order
        (the cached :meth:`~repro.traffic.matrices.TrafficMatrix.as_switch_array`
        form) and skips the per-pair dict walk for the theta column.
        """
        with trace("lp.assemble") as span:
            assembled = self._assemble(demands, path_set, rates)
            span.add(
                pairs=len(demands),
                vars=assembled[-1],
                nnz=int(assembled[0].nnz + assembled[2].nnz),
            )
        return assembled

    def _assemble(
        self, demands: Dict, path_set: PathSet, rates: Optional[np.ndarray] = None
    ) -> tuple:
        pairs = list(demands)
        num_pairs = len(pairs)
        counts = np.empty(num_pairs, dtype=np.int64)
        row_parts = []
        col_parts = []
        offset = 0
        for i, pair in enumerate(pairs):
            num_paths, rows, cols = self._pair_block(pair, path_set)
            counts[i] = num_paths
            row_parts.append(rows)
            col_parts.append(cols + offset)
            offset += num_paths
        num_path_vars = int(offset)
        theta_var = num_path_vars
        num_vars = num_path_vars + 1

        # Equality rows: one 1.0 per path variable in its pair's row, plus
        # the theta column (-demand).  Zero demands are filtered to mirror
        # lil_matrix, which drops explicit zero writes.
        if rates is not None:
            theta_data = -np.asarray(rates, dtype=np.float64)
        else:
            theta_data = np.asarray(
                [-demands[pair] for pair in pairs], dtype=np.float64
            )
        theta_rows = np.arange(num_pairs, dtype=np.int64)
        nonzero = theta_data != 0.0
        a_eq = csr_matrix(
            (
                np.concatenate((np.ones(num_path_vars), theta_data[nonzero])),
                (
                    np.concatenate(
                        (np.repeat(theta_rows, counts), theta_rows[nonzero])
                    ),
                    np.concatenate(
                        (
                            np.arange(num_path_vars, dtype=np.int64),
                            np.full(int(nonzero.sum()), theta_var, dtype=np.int64),
                        )
                    ),
                ),
            ),
            shape=(num_pairs, num_vars),
        )
        b_eq = np.zeros(num_pairs)

        # Capacity rows: one 1.0 per (arc on path, path variable); duplicate
        # traversals sum on conversion to canonical CSR.
        if row_parts:
            ub_rows = np.concatenate(row_parts)
            ub_cols = np.concatenate(col_parts)
        else:
            ub_rows = np.empty(0, dtype=np.int64)
            ub_cols = np.empty(0, dtype=np.int64)
        a_ub = csr_matrix(
            (np.ones(len(ub_rows)), (ub_rows, ub_cols)),
            shape=(self.num_arcs, num_vars),
        )
        return a_eq, b_eq, a_ub, self.capacities, num_vars

    def _solve_assembled(self, assembled: tuple, method: str):
        a_eq, b_eq, a_ub, b_ub, num_vars = assembled
        objective = np.zeros(num_vars)
        objective[num_vars - 1] = -1.0
        with trace("lp.solve", method=method) as span:
            result = linprog(
                objective,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=(0, None),
                method=method,
            )
            span.add(
                iterations=int(getattr(result, "nit", 0) or 0),
                success=bool(result.success),
            )
        return result

    def solve(
        self, demands: Dict, path_set: PathSet, rates: Optional[np.ndarray] = None
    ) -> float:
        """Concurrent-flow factor theta for one traffic matrix."""
        assembled = self.assemble(demands, path_set, rates)
        result = self._solve_assembled(assembled, "highs")
        if not result.success:
            raise FlowSolverError(f"LP solver failed: {result.message}")
        return float(result.x[assembled[-1] - 1])

    def solve_decision(
        self,
        demands: Dict,
        path_set: PathSet,
        guard: float = 1e-6,
        rates: Optional[np.ndarray] = None,
    ) -> float:
        """Theta for callers that only consume the ``theta >= 1`` decision.

        The LP's optimal value is unique, so any solver that reaches
        optimality yields the same decision whenever theta is farther than
        solver noise from the threshold.  This first runs HiGHS's
        interior-point method (with crossover — roughly 2x faster than the
        default dual simplex on these degenerate concurrent-flow LPs) and
        accepts its theta only when it is at least ``guard`` away from 1;
        inside the guard band — or on any solver failure — it falls back to
        the exact :meth:`solve` path, so the decision is always the one the
        pre-refactor implementation produced.
        """
        assembled = self.assemble(demands, path_set, rates)
        result = self._solve_assembled(assembled, "highs-ipm")
        if result.success:
            theta = float(result.x[assembled[-1] - 1])
            if abs(theta - 1.0) >= guard:
                return theta
        result = self._solve_assembled(assembled, "highs")
        if not result.success:
            raise FlowSolverError(f"LP solver failed: {result.message}")
        return float(result.x[assembled[-1] - 1])


def shared_path_lp_structure(
    topology: Topology, scheme: str = "ksp", k: int = 8
) -> PathLPStructure:
    """Get-or-build the cached :class:`PathLPStructure` for ``topology``.

    Keyed by the graph's CSR ``content_hash`` plus ``(scheme, k)`` and
    revalidated against the topology's current arcs, so in-place mutations
    (e.g. failure injection on a copy that shares a hash) never reuse stale
    structure.
    """
    key = (csr_graph(topology.graph).content_hash, scheme, k)
    structure = _SHARED_STRUCTURES.get(key)
    if structure is not None and structure.matches(topology):
        _SHARED_STRUCTURES.move_to_end(key)
        return structure
    structure = PathLPStructure(topology, scheme=scheme, k=k)
    _SHARED_STRUCTURES[key] = structure
    _SHARED_STRUCTURES.move_to_end(key)
    while len(_SHARED_STRUCTURES) > _SHARED_STRUCTURE_MAX:
        _SHARED_STRUCTURES.popitem(last=False)
    return structure


def clear_shared_lp_structures() -> None:
    """Drop every cached demand-independent LP structure."""
    _SHARED_STRUCTURES.clear()


def max_concurrent_flow_path_lp(
    topology: Topology,
    traffic: TrafficMatrix,
    path_set: Optional[PathSet] = None,
    k: int = 8,
) -> float:
    """Concurrent-flow factor ``theta`` restricted to a candidate path set.

    If ``path_set`` is omitted, the k shortest paths for every demanded
    switch pair come from the shared content-hashed path table
    (:func:`repro.routing.paths.shared_path_set`) and the LP reuses the
    topology's cached demand-independent structure, so evaluating several
    traffic matrices against one topology only rebuilds the demand rows.
    """
    demands = traffic.switch_pairs()
    if not demands:
        return float("inf")

    arrays = traffic.as_switch_array(csr_graph(topology.graph).index_of)
    if path_set is None:
        structure = shared_path_lp_structure(topology, scheme="ksp", k=k)
        path_set = shared_path_set(topology.graph, arrays.pairs, scheme="ksp", k=k)
    else:
        structure = PathLPStructure(topology, scheme=path_set.kind, k=k)
    return structure.solve(demands, path_set, rates=arrays.rates)
