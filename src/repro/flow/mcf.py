"""Exact max-concurrent-flow LP (edge-based formulation).

This reproduces the paper's "optimal routing" evaluation: given a topology
and a traffic matrix, find the largest scaling factor theta such that
theta times every demand can be routed simultaneously without exceeding any
link capacity, treating flows as splittable fluids.  The paper solves this
with CPLEX; we solve the identical LP with scipy's HiGHS backend.

Formulation (source-aggregated multi-commodity flow):

* every undirected link becomes two directed arcs of the same capacity;
* commodities are grouped by source switch ``s``; variable ``f[s, a]`` is the
  amount of commodity-group ``s`` flow on arc ``a``;
* flow conservation at node ``v`` for group ``s``:
  ``inflow - outflow = theta * demand(s, v)`` for ``v != s`` and
  ``outflow - inflow = theta * total_demand(s)`` for ``v == s``;
* capacity: ``sum_s f[s, a] <= capacity(a)``;
* objective: maximize ``theta``.

Constraint matrices are assembled as vectorized COO triplets (one broadcast
per block, no per-cell writes); the resulting canonical CSR is identical to
the historical ``lil_matrix`` assembly retained in
:mod:`repro.flow._reference`, so HiGHS sees the same problem bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix


class FlowSolverError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


def _directed_arcs(topology: Topology) -> List[Tuple[Hashable, Hashable, float]]:
    """Both orientations of every switch link with their capacities."""
    arcs = []
    for u, v, data in topology.graph.edges(data=True):
        capacity = float(data.get("capacity", 1.0))
        arcs.append((u, v, capacity))
        arcs.append((v, u, capacity))
    return arcs


def _assemble_edge_lp(topology: Topology, demands: Dict) -> tuple:
    """Vectorized COO assembly of the edge LP.

    Returns ``(a_eq, b_eq, a_ub, b_ub, num_vars)`` with canonical CSR
    matrices equal to the reference ``lil_matrix`` assembly.
    """
    arcs = _directed_arcs(topology)
    if not arcs:
        raise FlowSolverError("topology has no links but traffic crosses switches")
    nodes = list(topology.graph.nodes)
    node_index = {node: i for i, node in enumerate(nodes)}

    sources = sorted({src for src, _ in demands}, key=str)
    source_index = {src: i for i, src in enumerate(sources)}
    num_arcs = len(arcs)
    num_sources = len(sources)
    num_nodes = len(nodes)

    # Variables: f[s, a] for every source group and arc, then theta (last).
    num_flow_vars = num_sources * num_arcs
    theta_var = num_flow_vars
    num_vars = num_flow_vars + 1

    arc_u = np.asarray([node_index[u] for u, _, _ in arcs], dtype=np.int64)
    arc_v = np.asarray([node_index[v] for _, v, _ in arcs], dtype=np.int64)
    arc_caps = np.asarray([capacity for _, _, capacity in arcs], dtype=np.float64)
    source_offsets = np.arange(num_sources, dtype=np.int64)

    # Conservation entries: for each (source block, arc) column, -1 at the
    # arc's tail row and +1 at its head row.
    columns = (
        source_offsets[:, None] * num_arcs + np.arange(num_arcs, dtype=np.int64)
    ).ravel()
    tail_rows = (source_offsets[:, None] * num_nodes + arc_u[None, :]).ravel()
    head_rows = (source_offsets[:, None] * num_nodes + arc_v[None, :]).ravel()

    # Theta column: +total_demand(s) at (s, s), -demand(s, node) elsewhere.
    # Only nonzero entries are materialized, matching lil (which drops
    # explicit zero writes).
    theta_values = np.zeros((num_sources, num_nodes), dtype=np.float64)
    totals: Dict[Hashable, float] = {s: 0.0 for s in sources}
    for (src, dst), rate in demands.items():
        theta_values[source_index[src], node_index[dst]] -= rate
        totals[src] += rate
    for src in sources:
        theta_values[source_index[src], node_index[src]] = totals[src]
    theta_rows = np.flatnonzero(theta_values.ravel())
    theta_data = theta_values.ravel()[theta_rows]

    a_eq = csr_matrix(
        (
            np.concatenate(
                (
                    np.full(len(columns), -1.0),
                    np.full(len(columns), 1.0),
                    theta_data,
                )
            ),
            (
                np.concatenate((tail_rows, head_rows, theta_rows)),
                np.concatenate(
                    (columns, columns, np.full(len(theta_rows), theta_var))
                ),
            ),
        ),
        shape=(num_sources * num_nodes, num_vars),
    )
    b_eq = np.zeros(num_sources * num_nodes)

    # Capacity rows: one 1.0 per (arc row, f[s, arc] column).
    a_ub = csr_matrix(
        (
            np.ones(num_flow_vars),
            (
                np.tile(np.arange(num_arcs, dtype=np.int64), num_sources),
                columns,
            ),
        ),
        shape=(num_arcs, num_vars),
    )
    return a_eq, b_eq, a_ub, arc_caps, num_vars


def max_concurrent_flow_edge_lp(
    topology: Topology, traffic: TrafficMatrix
) -> float:
    """Return the optimal concurrent-flow scaling factor ``theta``.

    ``theta >= 1`` means the topology supports the full traffic matrix at
    line rate under ideal (splittable, fluid) routing.
    """
    demands = traffic.switch_pairs()
    if not demands:
        return float("inf")

    a_eq, b_eq, a_ub, b_ub, num_vars = _assemble_edge_lp(topology, demands)
    objective = np.zeros(num_vars)
    objective[num_vars - 1] = -1.0  # maximize theta

    result = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise FlowSolverError(f"LP solver failed: {result.message}")
    return float(result.x[num_vars - 1])
