"""Exact max-concurrent-flow LP (edge-based formulation).

This reproduces the paper's "optimal routing" evaluation: given a topology
and a traffic matrix, find the largest scaling factor theta such that
theta times every demand can be routed simultaneously without exceeding any
link capacity, treating flows as splittable fluids.  The paper solves this
with CPLEX; we solve the identical LP with scipy's HiGHS backend.

Formulation (source-aggregated multi-commodity flow):

* every undirected link becomes two directed arcs of the same capacity;
* commodities are grouped by source switch ``s``; variable ``f[s, a]`` is the
  amount of commodity-group ``s`` flow on arc ``a``;
* flow conservation at node ``v`` for group ``s``:
  ``inflow - outflow = theta * demand(s, v)`` for ``v != s`` and
  ``outflow - inflow = theta * total_demand(s)`` for ``v == s``;
* capacity: ``sum_s f[s, a] <= capacity(a)``;
* objective: maximize ``theta``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.topologies.base import Topology
from repro.traffic.matrices import TrafficMatrix


class FlowSolverError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


def _directed_arcs(topology: Topology) -> List[Tuple[Hashable, Hashable, float]]:
    """Both orientations of every switch link with their capacities."""
    arcs = []
    for u, v, data in topology.graph.edges(data=True):
        capacity = float(data.get("capacity", 1.0))
        arcs.append((u, v, capacity))
        arcs.append((v, u, capacity))
    return arcs


def max_concurrent_flow_edge_lp(
    topology: Topology, traffic: TrafficMatrix
) -> float:
    """Return the optimal concurrent-flow scaling factor ``theta``.

    ``theta >= 1`` means the topology supports the full traffic matrix at
    line rate under ideal (splittable, fluid) routing.
    """
    demands = traffic.switch_pairs()
    if not demands:
        return float("inf")

    arcs = _directed_arcs(topology)
    if not arcs:
        raise FlowSolverError("topology has no links but traffic crosses switches")
    arc_index = {(u, v): i for i, (u, v, _) in enumerate(arcs)}
    nodes = list(topology.graph.nodes)
    node_index = {node: i for i, node in enumerate(nodes)}

    sources = sorted({src for src, _ in demands}, key=str)
    source_index = {src: i for i, src in enumerate(sources)}
    num_arcs = len(arcs)
    num_sources = len(sources)
    num_nodes = len(nodes)

    # Variables: f[s, a] for every source group and arc, then theta (last).
    num_flow_vars = num_sources * num_arcs
    theta_var = num_flow_vars
    num_vars = num_flow_vars + 1

    def var(source: Hashable, arc: int) -> int:
        return source_index[source] * num_arcs + arc

    # Demand bookkeeping per source.
    demand_to: Dict[Hashable, Dict[Hashable, float]] = {s: {} for s in sources}
    total_from: Dict[Hashable, float] = {s: 0.0 for s in sources}
    for (src, dst), rate in demands.items():
        demand_to[src][dst] = demand_to[src].get(dst, 0.0) + rate
        total_from[src] += rate

    # Equality constraints: conservation for every (source group, node).
    num_eq = num_sources * num_nodes
    a_eq = lil_matrix((num_eq, num_vars))
    b_eq = np.zeros(num_eq)
    for s in sources:
        base = source_index[s] * num_nodes
        for arc_id, (u, v, _) in enumerate(arcs):
            column = var(s, arc_id)
            # Arc u -> v: outflow at u, inflow at v.
            a_eq[base + node_index[u], column] -= 1.0
            a_eq[base + node_index[v], column] += 1.0
        for node in nodes:
            row = base + node_index[node]
            if node == s:
                # outflow - inflow = theta * total  ->  (in - out) + theta*total = 0
                a_eq[row, theta_var] = total_from[s]
            else:
                # inflow - outflow = theta * demand(s, node)
                a_eq[row, theta_var] = -demand_to[s].get(node, 0.0)

    # Inequality constraints: capacity per arc.
    a_ub = lil_matrix((num_arcs, num_vars))
    b_ub = np.zeros(num_arcs)
    for arc_id, (_, _, capacity) in enumerate(arcs):
        for s in sources:
            a_ub[arc_id, var(s, arc_id)] = 1.0
        b_ub[arc_id] = capacity

    objective = np.zeros(num_vars)
    objective[theta_var] = -1.0  # maximize theta

    result = linprog(
        objective,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise FlowSolverError(f"LP solver failed: {result.message}")
    return float(result.x[theta_var])
