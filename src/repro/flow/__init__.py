"""Flow-level capacity machinery: LP optimal routing, max-min fairness."""

from repro.flow.maxmin import FlowSpec, max_min_fair_allocation
from repro.flow.mcf import max_concurrent_flow_edge_lp
from repro.flow.path_lp import (
    PathLPStructure,
    clear_shared_lp_structures,
    max_concurrent_flow_path_lp,
    shared_path_lp_structure,
)
from repro.flow.throughput import (
    ThroughputResult,
    max_servers_at_full_throughput,
    normalized_throughput,
    supports_full_throughput,
)

__all__ = [
    "FlowSpec",
    "max_min_fair_allocation",
    "max_concurrent_flow_edge_lp",
    "max_concurrent_flow_path_lp",
    "PathLPStructure",
    "shared_path_lp_structure",
    "clear_shared_lp_structures",
    "ThroughputResult",
    "max_servers_at_full_throughput",
    "normalized_throughput",
    "supports_full_throughput",
]
