"""Command-line entry point: run any of the paper's experiments.

Examples
--------
List the available experiments::

    jellyfish-repro --list

Reproduce Table 1 at the fast (small) scale and print the table::

    jellyfish-repro table1

Run the Fig 2(c) throughput comparison at closer-to-paper scale::

    jellyfish-repro fig02c --scale paper --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.common import format_table, list_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jellyfish-repro",
        description="Reproduce tables and figures from 'Jellyfish: Networking Data Centers Randomly'",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (e.g. fig01 fig02c table1); use --list to see all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        choices=["small", "paper"],
        default="small",
        help="problem sizes: 'small' is fast, 'paper' is closer to the paper's sizes",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0
    if not args.experiments:
        parser.error("no experiments given (use --list to see the available ids)")

    exit_code = 0
    for experiment_id in args.experiments:
        try:
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            exit_code = 2
            continue
        print(format_table(result))
        print()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
