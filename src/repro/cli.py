"""Command-line entry point: run the paper's experiments and scenario sweeps.

Examples
--------
List the available experiments::

    jellyfish-repro --list

Reproduce Table 1 at the fast (small) scale and print the table::

    jellyfish-repro table1

Run the Fig 2(c) throughput comparison at closer-to-paper scale::

    jellyfish-repro fig02c --scale paper --seed 7

Run figures through the scenario engine -- sharded over 4 worker processes
with a content-addressed result cache, so a second invocation is served from
disk::

    jellyfish-repro sweep run fig01 fig02a --workers 4 --seed 7
    jellyfish-repro sweep list
    jellyfish-repro sweep show fig02a --scale paper

Supervised execution: per-point timeouts, bounded retries, and resumable
runs (an interrupted or partially-failed sweep picks up where it left off,
skipping every journaled point)::

    jellyfish-repro sweep run fig02a --workers 4 --timeout 300
    jellyfish-repro sweep run --resume 1754650000-fig02a-1a2b3c4d

Construct and content-hash topologies directly (array-native; no figure)::

    jellyfish-repro topo build --switches 80 --ports 12 --degree 9 --seed 3
    jellyfish-repro topo ensemble --instances 100 --switches 80 --ports 12 \
        --degree 9 --method stubs --workers 4

Run the round-based AIMD dynamics engine on one topology::

    jellyfish-repro sim aimd --switches 80 --ports 12 --degree 9 \
        --cc mptcp --rounds 300 --seed 3

Trace a sweep and inspect the recorded telemetry (manifests + span events)::

    jellyfish-repro sweep run fig02c --trace -v
    jellyfish-repro stats --flame

Drive one topology through months of seeded failure/repair churn, with a
traffic epoch evaluated every simulated day (resumable; epoch records are
journaled through the run manifest machinery)::

    jellyfish-repro lifecycle run --family jellyfish --switches 40 \
        --ports 8 --servers 64 --duration 240 --epoch-interval 24 --seed 3
    jellyfish-repro lifecycle run --resume <run-id> [same flags]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.common import format_table, list_experiments, run_experiment


def _add_reproducibility_options(parser: argparse.ArgumentParser) -> None:
    """The global knobs every subcommand shares: problem size and seed."""
    parser.add_argument(
        "--scale",
        choices=["small", "paper", "hyperscale"],
        default="small",
        help="problem sizes: 'small' is fast, 'paper' is closer to the paper's "
        "sizes, 'hyperscale' (the *-scale sweeps only) runs 10k-100k switches "
        "with sampled estimators",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random seed; the same seed reproduces the same output for every subcommand",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="diagnostic verbosity on stderr (-v = progress, -vv = debug)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jellyfish-repro",
        description="Reproduce tables and figures from 'Jellyfish: Networking Data Centers Randomly'",
        epilog="use 'jellyfish-repro sweep --help' for the scenario-engine interface",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (e.g. fig01 fig02c table1); use --list to see all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids and exit"
    )
    _add_reproducibility_options(parser)
    return parser


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jellyfish-repro sweep",
        description="Run experiments as declarative scenario sweeps (parallel, cached)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    _add_reproducibility_options(common)

    run_parser = subparsers.add_parser(
        "run", parents=[common], help="run sweeps and print their result tables"
    )
    run_parser.add_argument(
        "sweeps",
        nargs="*",
        help="sweep ids (e.g. fig01 table1); optional with --resume",
    )
    run_parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes for sharded execution (0 = serial in-process)",
    )
    run_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock timeout; overrides the sweep's registry "
        "default (0 disables deadlines). Timeouts force supervised "
        "execution even with --workers 0",
    )
    run_parser.add_argument(
        "--memory-mb",
        type=float,
        default=None,
        metavar="MB",
        help="per-point memory budget: each worker caps its address space "
        "(RLIMIT_AS soft limit) so an overrun raises MemoryError instead "
        "of drawing the kernel OOM killer. Overrides $REPRO_MEMORY_MB and "
        "the sweep's registry default (0 disables). Budgets force "
        "supervised execution even with --workers 0",
    )
    run_parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="disable the degradation ladder: resource-exhausted points "
        "(oom/signal/timeout) retry identically and quarantine instead of "
        "re-running one fidelity rung down",
    )
    run_parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="execution attempts per point before quarantine (default 3)",
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume a previous run: replay its completion journal (points "
        "already finished are skipped, not re-executed) and run the rest. "
        "Sweep id, scale and seed come from the run's manifest",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/jellyfish-repro)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-point progress on stderr (progress is already "
        "quiet by default; combine with -v to re-enable it)",
    )
    run_parser.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="record span events as JSONL (default path: a trace-*.jsonl "
        "beside the run manifests); workers inherit tracing via $REPRO_TRACE",
    )
    run_parser.add_argument(
        "--runs-dir",
        default=None,
        help="directory for run manifests (default: $REPRO_RUNS_DIR or "
        "<cache root>/runs; no manifest is written when caching is disabled "
        "and no directory is given)",
    )

    subparsers.add_parser("list", help="list registered sweeps and their grid sizes")

    show_parser = subparsers.add_parser(
        "show", parents=[common], help="show a sweep's scenario specs and point hashes"
    )
    show_parser.add_argument("sweeps", nargs="+", help="sweep ids to describe")
    return parser


def _sweep_list() -> int:
    from repro.engine import list_sweeps, sweep_points

    for sweep_id in list_sweeps():
        points = sweep_points(sweep_id, scale="small", seed=0)
        print(f"{sweep_id:8s} {len(points):4d} point(s)")
    return 0


def _sweep_show(args: argparse.Namespace) -> int:
    from repro.engine import get_sweep, sweep_specs

    exit_code = 0
    for sweep_id in args.sweeps:
        try:
            sweep = get_sweep(sweep_id)
            specs = sweep_specs(sweep_id, scale=args.scale, seed=args.seed)
        except (KeyError, ValueError) as error:
            print(f"error: {sweep_id}: {error}", file=sys.stderr)
            exit_code = 2
            continue
        print(f"{sweep_id}: {sweep.description}")
        for spec in specs:
            print(f"  spec {spec.spec_hash[:12]} name={spec.name or sweep_id}")
            print(f"    target: {spec.target}")
            print(f"    base: {spec.base}")
            print(f"    axes: {spec.axes}")
            print(
                f"    seed: {spec.seed}  repetitions: {spec.repetitions}  "
                f"strategy: {spec.seed_strategy}"
            )
            for point in spec.iter_points():
                print(f"    point {point.describe()}")
    return exit_code


def _resolve_runs_root(args: argparse.Namespace, cache):
    """Where to write run manifests, or ``None`` to skip them entirely.

    Explicit ``--runs-dir`` or ``$REPRO_RUNS_DIR`` always wins; otherwise
    manifests sit beside the result cache (``<cache root>/runs``).  With
    ``--no-cache`` and no explicit directory there is nowhere sensible to
    write, so no manifest is produced.
    """
    import os

    from repro.telemetry.manifest import RUNS_DIR_ENV, default_runs_root

    if getattr(args, "runs_dir", None):
        return Path(args.runs_dir).expanduser()
    if os.environ.get(RUNS_DIR_ENV):
        return default_runs_root()
    if cache is not None:
        return Path(cache.root) / "runs"
    return None


class _SweepInterrupted(Exception):
    """Raised from the SIGINT/SIGTERM handler to unwind a running sweep."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"interrupted by signal {signum}")
        self.signum = signum


def _print_failure_report(sweep_id: str, outcomes) -> None:
    """Human-readable quarantine report for a sweep that lost points."""
    failures = [o for o in outcomes if o.status == "failed"]
    print(
        f"sweep {sweep_id}: {len(failures)} of {len(outcomes)} point(s) "
        f"quarantined after retries; result table not assembled"
    )
    for outcome in failures:
        failure = outcome.failure
        line = (
            f"  {outcome.point.scenario_hash[:12]} {outcome.point.target} "
            f"{failure.kind} after {outcome.attempts} attempt(s)"
        )
        if failure.exitcode is not None:
            line += f" (exit {failure.exitcode})"
        print(f"{line}: {failure.message}")


def _sweep_run(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.engine import (
        ResultCache,
        SweepRunner,
        default_cache_root,
        expand,
        get_sweep,
    )
    from repro.resources import default_memory_mb
    from repro.telemetry import RunRecorder, enable, enable_in_subprocesses, get_logger
    from repro.telemetry.manifest import (
        journal_path,
        load_journal,
        load_manifest,
        manifest_path,
    )
    from repro.telemetry.tracer import get_tracer

    log = get_logger("sweep")

    cache = None
    if not args.no_cache:
        root = args.cache_dir if args.cache_dir is not None else default_cache_root()
        cache = ResultCache(root)
    runs_root = _resolve_runs_root(args, cache)

    # --resume: sweep identity (id / scale / seed) comes from the previous
    # run's manifest; its journal supplies the already-completed values.
    completed = None
    resumed_from = None
    if args.resume:
        if runs_root is None:
            print(
                "error: --resume needs a runs directory (give --runs-dir, set "
                "$REPRO_RUNS_DIR, or enable the cache)",
                file=sys.stderr,
            )
            return 2
        try:
            previous = load_manifest(manifest_path(runs_root, args.resume))
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(
                f"error: cannot load manifest for run {args.resume!r} under "
                f"{runs_root}: {error}",
                file=sys.stderr,
            )
            return 2
        if args.sweeps and args.sweeps != [previous.sweep_id]:
            print(
                f"error: run {args.resume} was sweep {previous.sweep_id!r}, "
                f"not {' '.join(args.sweeps)!r}",
                file=sys.stderr,
            )
            return 2
        sweeps = [previous.sweep_id]
        scale = previous.scale
        seed = previous.seed if previous.seed is not None else args.seed
        completed = load_journal(journal_path(runs_root, args.resume))
        resumed_from = args.resume
        log.info(
            "resuming run %s: %d journaled point(s)", args.resume, len(completed)
        )
    else:
        sweeps = args.sweeps
        scale = args.scale
        seed = args.seed
    if not sweeps:
        print("error: no sweeps given (and no --resume)", file=sys.stderr)
        return 2

    # --trace: enable the tracer with a JSONL sink and export it to worker
    # processes; a bare --trace picks a path beside the run manifests.
    trace_path = None
    if args.trace is not None:
        trace_path = args.trace
        if not trace_path:
            root = runs_root if runs_root is not None else Path(".")
            root.mkdir(parents=True, exist_ok=True)
            trace_path = str(root / f"trace-{int(time.time())}-{os.getpid()}.jsonl")
        enable(jsonl_path=trace_path)
        enable_in_subprocesses(trace_path)
    elif get_tracer() is not None:
        trace_path = get_tracer().jsonl_path  # pre-enabled via $REPRO_TRACE

    # SIGINT/SIGTERM unwind the sweep loop: the supervised pool is torn
    # down by the runner's finally block, the manifest and journal are
    # flushed with whatever completed, and we exit 128+signum.
    def _on_signal(signum, frame):
        raise _SweepInterrupted(signum)

    previous_handlers = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _on_signal)
    except ValueError:  # pragma: no cover - not the main thread
        previous_handlers = {}

    exit_code = 0
    recorder = None
    runner = None
    try:
        for sweep_id in sweeps:
            sweep_log = get_logger(f"sweep.{sweep_id}")

            def progress(done: int, total: int, outcome) -> None:
                if args.quiet:
                    return
                if outcome.status == "failed":
                    source = f"FAILED ({outcome.failure.kind})"
                elif outcome.cached:
                    source = f"cache {outcome.duration_s * 1e3:.1f}ms"
                else:
                    source = f"{outcome.duration_s:.2f}s"
                if getattr(outcome, "degradation_level", 0):
                    source += f" (degraded, rung {outcome.degradation_level})"
                sweep_log.info(
                    "[%d/%d] %s %s",
                    done,
                    total,
                    outcome.point.scenario_hash[:12],
                    source,
                )

            try:
                sweep = get_sweep(sweep_id)
                specs = sweep.build(scale, seed)
            except (KeyError, ValueError) as error:
                # ValueError: a scale the sweep does not define (e.g.
                # 'hyperscale' is only meaningful for the *-scale sweeps).
                print(f"error: {sweep_id}: {error}", file=sys.stderr)
                exit_code = 2
                continue
            timeout_s = args.timeout if args.timeout is not None else sweep.timeout_s
            if timeout_s is not None and timeout_s <= 0:
                timeout_s = None
            memory_mb = args.memory_mb
            if memory_mb is None:
                memory_mb = default_memory_mb()
            if memory_mb is None:
                memory_mb = sweep.memory_mb
            if memory_mb is not None and memory_mb <= 0:
                memory_mb = None
            recorder = RunRecorder(
                sweep_id,
                scale=scale,
                seed=seed,
                workers=args.workers,
                spec_hashes=[spec.spec_hash for spec in specs],
                runs_root=runs_root,
                resumed_from=resumed_from,
            )

            def observe(done: int, total: int, outcome) -> None:
                recorder.observe(done, total, outcome)
                progress(done, total, outcome)

            runner = SweepRunner(
                workers=args.workers,
                cache=cache,
                progress=observe,
                timeout_s=timeout_s,
                memory_mb=memory_mb,
                degrade=not args.no_degrade,
                max_attempts=args.max_attempts,
                completed=completed,
                raise_on_failure=False,
            )
            outcomes = runner.run(expand(specs))
            if runs_root is not None:
                manifest = recorder.finalize(
                    cache=cache,
                    runs_root=runs_root,
                    trace_events=trace_path,
                    faults=runner.fault_stats.as_dict(),
                )
                sweep_log.info("manifest %s", manifest)
            if any(o.status == "failed" for o in outcomes):
                _print_failure_report(sweep_id, outcomes)
                exit_code = 1
            else:
                result = sweep.assemble(
                    [o.value for o in outcomes], scale, seed
                )
                print(format_table(result))
            print()
            recorder = None
            runner = None
    except _SweepInterrupted as interrupt:
        if recorder is not None and runs_root is not None:
            faults = runner.fault_stats.as_dict() if runner is not None else None
            manifest = recorder.finalize(
                cache=cache,
                runs_root=runs_root,
                trace_events=trace_path,
                faults=faults,
                interrupted=True,
            )
            print(
                f"interrupted by signal {interrupt.signum}; partial results "
                f"saved, resume with: sweep run --resume {recorder.record.run_id}",
                file=sys.stderr,
            )
            log.info("manifest %s", manifest)
        else:
            print(
                f"interrupted by signal {interrupt.signum}", file=sys.stderr
            )
        return 128 + interrupt.signum
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    if cache is not None:
        log.info("cache: %s at %s", cache.stats, cache.root)
    return exit_code


def _sweep_main(argv: List[str]) -> int:
    from repro.telemetry import configure_logging

    args = build_sweep_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", 0))
    if args.command == "list":
        return _sweep_list()
    if args.command == "show":
        return _sweep_show(args)
    return _sweep_run(args)


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jellyfish-repro stats",
        description="Report run telemetry: point latencies, cache hit rates, "
        "slowest phases, and optional span flame views",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        help="directory holding run-*.json manifests (default: $REPRO_RUNS_DIR "
        "or <cache root>/runs)",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="JSONL span event log (default: the newest trace-*.jsonl "
        "referenced by the manifests or found under the runs dir)",
    )
    parser.add_argument(
        "--flame",
        nargs="?",
        const="",
        default=None,
        metavar="NAME",
        help="render a text flame view of the slowest span tree "
        "(optionally restricted to spans named NAME)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=15,
        help="rows in the phase table (0 = unlimited)",
    )
    return parser


def _stats_main(argv: List[str]) -> int:
    from repro.telemetry.manifest import default_runs_root, load_manifests
    from repro.telemetry.report import load_events, render_stats

    args = build_stats_parser().parse_args(argv)
    runs_root = (
        Path(args.runs_dir).expanduser()
        if args.runs_dir is not None
        else default_runs_root()
    )
    records = load_manifests(runs_root)

    events: list = []
    events_path = args.events
    if events_path is None:
        # Prefer the newest event log the manifests point at; fall back to
        # the newest trace-*.jsonl sitting beside them.
        candidates = [
            Path(record.trace_events)
            for record in records
            if record.trace_events and Path(record.trace_events).is_file()
        ]
        if not candidates and runs_root.is_dir():
            candidates = list(runs_root.glob("trace-*.jsonl"))
        if candidates:
            events_path = str(max(candidates, key=lambda p: p.stat().st_mtime))
    if events_path is not None:
        events = load_events(Path(events_path))

    print(render_stats(records, events, flame=args.flame, limit=args.limit))
    return 0


def build_topo_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jellyfish-repro topo",
        description="Construct, summarize and content-hash topologies (array-native)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--switches", type=int, required=True, help="number of ToR switches (N)"
    )
    common.add_argument(
        "--ports", type=int, required=True, help="ports per switch (k)"
    )
    common.add_argument(
        "--degree", type=int, required=True, help="network ports per switch (r)"
    )
    common.add_argument(
        "--servers-per-switch",
        type=int,
        default=None,
        help="servers per switch (default: k - r)",
    )
    common.add_argument(
        "--method",
        choices=["sequential", "stubs", "pairing", "networkx"],
        default="sequential",
        help="RRG construction: the paper's sequential procedure (default) "
        "or vectorized stub matching for large batches",
    )
    common.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random seed; the same seed reproduces the same topology",
    )

    subparsers.add_parser(
        "build", parents=[common], help="build one topology and print its summary"
    )

    ensemble_parser = subparsers.add_parser(
        "ensemble",
        parents=[common],
        help="build a seeded batch of topologies and print ensemble statistics",
    )
    ensemble_parser.add_argument(
        "--instances", type=int, default=10, help="number of instances to build"
    )
    ensemble_parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes for sharded generation (0 = serial in-process)",
    )
    return parser


def _topo_build(args: argparse.Namespace) -> int:
    from repro.topologies.jellyfish import JellyfishTopology

    topology = JellyfishTopology.build(
        args.switches,
        args.ports,
        args.degree,
        rng=args.seed,
        servers_per_switch=args.servers_per_switch,
        method=args.method,
    )
    connected = topology.is_connected()
    print(
        f"jellyfish N={args.switches} k={args.ports} r={args.degree} "
        f"method={args.method} seed={args.seed}"
    )
    print(
        f"  switches {topology.num_switches}  links {topology.num_links}  "
        f"servers {topology.num_servers}  total ports {topology.total_ports}"
    )
    if connected and topology.num_switches >= 2:
        print(
            f"  connected True  mean path length "
            f"{topology.switch_average_path_length():.4f}  "
            f"diameter {topology.switch_diameter()}"
        )
    else:
        print(f"  connected {connected}")
    print(f"  content hash {topology.content_hash()}")
    return 0


def _topo_ensemble(args: argparse.Namespace) -> int:
    from repro.engine.runner import SweepRunner
    from repro.engine.spec import expand
    from repro.topologies.ensemble import (
        EnsembleSpec,
        ensemble_point_specs,
        ensemble_summary,
        summarize_instance_metrics,
    )

    spec = EnsembleSpec(
        num_instances=args.instances,
        num_switches=args.switches,
        ports_per_switch=args.ports,
        network_degree=args.degree,
        servers_per_switch=args.servers_per_switch,
        method=args.method,
        seed=args.seed,
    )
    if args.workers:
        runner = SweepRunner(workers=args.workers)
        metrics = runner.run_values(expand(ensemble_point_specs(spec)))
        summary = summarize_instance_metrics(metrics)
    else:
        summary = ensemble_summary(spec)
    print(
        f"ensemble of {summary['num_instances']} x jellyfish "
        f"N={args.switches} k={args.ports} r={args.degree} "
        f"method={args.method} seed={args.seed}"
    )
    print(
        f"  connected {summary['connected_instances']}/{summary['num_instances']}  "
        f"distinct hashes {summary['distinct_hashes']}"
    )
    print(
        f"  mean path length {summary['mean_path_length_mean']:.4f} "
        f"+/- {summary['mean_path_length_std']:.4f}"
    )
    print(
        f"  diameter {summary['diameter_mean']:.2f} "
        f"+/- {summary['diameter_std']:.2f}"
    )
    return 0


def _topo_main(argv: List[str]) -> int:
    args = build_topo_parser().parse_args(argv)
    try:
        if args.command == "build":
            return _topo_build(args)
        return _topo_ensemble(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def build_sim_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jellyfish-repro sim",
        description="Run the simulators directly (array-native; no figure)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    aimd_parser = subparsers.add_parser(
        "aimd",
        help="round-based AIMD/MPTCP dynamics on one topology (vectorized engine)",
    )
    aimd_parser.add_argument(
        "--topology",
        choices=["jellyfish", "fattree"],
        default="jellyfish",
        help="topology family (jellyfish RRG or k-port fat-tree)",
    )
    aimd_parser.add_argument(
        "--switches", type=int, default=20, help="jellyfish: number of switches (N)"
    )
    aimd_parser.add_argument(
        "--ports", type=int, default=6, help="ports per switch (k)"
    )
    aimd_parser.add_argument(
        "--degree", type=int, default=4, help="jellyfish: network ports per switch (r)"
    )
    aimd_parser.add_argument(
        "--routing", choices=["ksp", "ecmp"], default="ksp", help="routing scheme"
    )
    aimd_parser.add_argument(
        "--cc",
        choices=["tcp1", "tcp8", "mptcp"],
        default="mptcp",
        help="congestion control model",
    )
    aimd_parser.add_argument(
        "--k", type=int, default=8, help="paths per pair (KSP k / ECMP width)"
    )
    aimd_parser.add_argument(
        "--subflows", type=int, default=8, help="subflows per connection (tcp8/mptcp)"
    )
    aimd_parser.add_argument("--rounds", type=int, default=200, help="simulated rounds")
    aimd_parser.add_argument(
        "--warmup-rounds", type=int, default=50, help="rounds excluded from measurement"
    )
    aimd_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="settling tolerance for the convergence measurement",
    )
    aimd_parser.add_argument(
        "--reference",
        action="store_true",
        help="run the retained scalar reference engine instead (for comparison)",
    )
    aimd_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random seed; the same seed reproduces the same run",
    )
    return parser


def _sim_aimd(args: argparse.Namespace) -> int:
    import time

    from repro.simulation.aimd import AimdConfig, simulate_aimd
    from repro.topologies.fattree import FatTreeTopology
    from repro.topologies.jellyfish import JellyfishTopology

    if args.topology == "fattree":
        topology = FatTreeTopology.build(args.ports)
        label = f"fattree k={args.ports}"
    else:
        topology = JellyfishTopology.build(
            args.switches, args.ports, args.degree, rng=args.seed
        )
        label = f"jellyfish N={args.switches} k={args.ports} r={args.degree}"
    config = AimdConfig(
        routing=args.routing,
        k=args.k,
        congestion_control=args.cc,
        subflows=args.subflows,
        rounds=args.rounds,
        warmup_rounds=args.warmup_rounds,
        convergence_tolerance=args.tolerance,
    )
    if args.reference:
        from repro.simulation._reference import simulate_aimd_reference as engine

        engine_label = "reference (scalar)"
    else:
        engine = simulate_aimd
        engine_label = "vectorized"
    start = time.perf_counter()
    result = engine(topology, config=config, rng=args.seed)
    elapsed = time.perf_counter() - start
    converged = (
        f"round {result.convergence_round}"
        if result.convergence_round is not None
        else "not settled"
    )
    print(
        f"aimd {label} routing={args.routing} cc={args.cc} "
        f"rounds={args.rounds} seed={args.seed}"
    )
    print(f"  engine {engine_label}  wall time {elapsed:.3f}s")
    print(
        f"  connections {len(result.flow_throughputs)}  "
        f"average throughput {result.average_throughput:.4f}  "
        f"fairness {result.fairness:.4f}"
    )
    print(f"  convergence (tolerance {args.tolerance:g}): {converged}")
    return 0


def _sim_main(argv: List[str]) -> int:
    args = build_sim_parser().parse_args(argv)
    try:
        return _sim_aimd(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def build_lifecycle_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jellyfish-repro lifecycle",
        description=(
            "Drive one topology through a seeded failure/repair lifecycle: "
            "Poisson link/switch failures, exponential repairs, optional "
            "expansion batches, and periodic traffic epochs"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a lifecycle and print its per-epoch table"
    )
    plant = run_parser.add_argument_group("plant topology")
    plant.add_argument(
        "--family",
        choices=["jellyfish", "fattree"],
        default="jellyfish",
        help="topology family (default jellyfish)",
    )
    plant.add_argument(
        "--ports", type=int, default=8, help="ports per switch / fat-tree k (default 8)"
    )
    plant.add_argument(
        "--switches", type=int, default=20, help="jellyfish switch count (default 20)"
    )
    plant.add_argument(
        "--servers", type=int, default=16, help="jellyfish server count (default 16)"
    )
    plant.add_argument(
        "--build-seed", type=int, default=0, help="rng seed for the plant build"
    )

    config = run_parser.add_argument_group("lifecycle config (times in simulated hours)")
    config.add_argument("--duration", type=float, default=720.0, help="default 720 (one month)")
    config.add_argument(
        "--link-rate", type=float, default=0.1, help="link failures per hour (default 0.1)"
    )
    config.add_argument(
        "--switch-rate", type=float, default=0.01, help="switch failures per hour (default 0.01)"
    )
    config.add_argument("--link-mttr", type=float, default=12.0, help="default 12")
    config.add_argument("--switch-mttr", type=float, default=24.0, help="default 24")
    config.add_argument(
        "--epoch-interval", type=float, default=24.0, help="traffic epoch cadence (default 24)"
    )
    config.add_argument(
        "--expansion-interval", type=float, default=0.0, help="0 disables expansion (default)"
    )
    config.add_argument("--expansion-batch", type=int, default=0, help="switches per batch")
    config.add_argument("--expansion-ports", type=int, default=0, help="ports on added switches")
    config.add_argument("--expansion-servers", type=int, default=0, help="servers per added switch")
    config.add_argument(
        "--max-events", type=int, default=0, help="truncate the stream (0 = no limit)"
    )
    config.add_argument(
        "--engine", choices=["fluid", "path"], default="fluid", help="epoch evaluation engine"
    )
    config.add_argument("--routing", choices=["ksp", "ecmp"], default="ksp")
    config.add_argument("--k", type=int, default=8, help="path budget / ECMP width")
    config.add_argument("--cc", choices=["tcp1", "tcp8", "mptcp"], default="mptcp")
    config.add_argument(
        "--traffic",
        choices=["per-epoch", "fixed"],
        default="per-epoch",
        help="'per-epoch' draws fresh permutation traffic each epoch; "
        "'fixed' tracks one workload (revisited states memoize)",
    )

    execution = run_parser.add_argument_group("execution")
    execution.add_argument(
        "--backend",
        choices=["incremental", "reference"],
        default="incremental",
        help="metric backend (reference = cold rebuild per event)",
    )
    execution.add_argument("--seed", type=int, default=0, help="lifecycle event-stream seed")
    execution.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="evaluation attempts per epoch before it is marked failed (default 3)",
    )
    execution.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume a previous run: journaled epochs are replayed, not "
        "re-evaluated. Seed comes from the run's manifest; the lifecycle "
        "flags must reproduce the same config (checked by hash)",
    )
    execution.add_argument(
        "--runs-dir",
        default=None,
        help="directory for run manifests (default: $REPRO_RUNS_DIR or <cache root>/runs)",
    )
    execution.add_argument("-v", "--verbose", action="count", default=0)
    return parser


def _lifecycle_run(args: argparse.Namespace) -> int:
    import os

    from repro.engine import default_cache_root
    from repro.lifecycle import LifecycleConfig, run_lifecycle
    from repro.lifecycle.engine import _build_plant
    from repro.telemetry import RunRecorder, get_logger
    from repro.telemetry.manifest import (
        RUNS_DIR_ENV,
        default_runs_root,
        journal_path,
        load_journal,
        load_manifest,
        manifest_path,
    )

    log = get_logger("lifecycle")
    try:
        config = LifecycleConfig(
            duration_hours=args.duration,
            link_failure_rate=args.link_rate,
            switch_failure_rate=args.switch_rate,
            link_mttr_hours=args.link_mttr,
            switch_mttr_hours=args.switch_mttr,
            epoch_interval_hours=args.epoch_interval,
            expansion_interval_hours=args.expansion_interval,
            expansion_batch=args.expansion_batch,
            expansion_ports=args.expansion_ports,
            expansion_servers=args.expansion_servers,
            max_events=args.max_events,
            epoch_engine=args.engine,
            routing=args.routing,
            k=args.k,
            congestion_control=args.cc,
            traffic=args.traffic,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.runs_dir:
        runs_root = Path(args.runs_dir).expanduser()
    elif os.environ.get(RUNS_DIR_ENV):
        runs_root = default_runs_root()
    else:
        runs_root = Path(default_cache_root()) / "runs"

    sweep_id = f"lifecycle-{args.family}"
    completed = None
    resumed_from = None
    seed = args.seed
    if args.resume:
        try:
            previous = load_manifest(manifest_path(runs_root, args.resume))
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(
                f"error: cannot load manifest for run {args.resume!r} under "
                f"{runs_root}: {error}",
                file=sys.stderr,
            )
            return 2
        if previous.sweep_id != sweep_id:
            print(
                f"error: run {args.resume} was {previous.sweep_id!r}, not {sweep_id!r}",
                file=sys.stderr,
            )
            return 2
        if previous.spec_hashes and previous.spec_hashes[0] != config.config_hash():
            print(
                f"error: run {args.resume} used a different lifecycle config "
                "(give the same flags to resume it)",
                file=sys.stderr,
            )
            return 2
        seed = previous.seed if previous.seed is not None else args.seed
        completed = load_journal(journal_path(runs_root, args.resume))
        resumed_from = args.resume
        log.info(
            "resuming run %s: %d journaled epoch(s)", args.resume, len(completed)
        )

    try:
        plant = _build_plant(
            args.family,
            {
                "ports": args.ports,
                "num_switches": args.switches,
                "num_servers": args.servers,
                "build_seed": args.build_seed,
            },
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    recorder = RunRecorder(
        sweep_id,
        scale="lifecycle",
        seed=seed,
        workers=0,
        spec_hashes=[config.config_hash()],
        runs_root=runs_root,
        resumed_from=resumed_from,
    )

    def observe(done: int, total: int, outcome) -> None:
        recorder.observe(done, total, outcome)
        if outcome.status == "failed":
            source = f"FAILED after {outcome.attempts} attempt(s)"
        elif outcome.cached:
            source = "journaled"
        else:
            source = f"{outcome.duration_s:.2f}s"
        log.info(
            "[%d/%d] epoch %s %s", done, total, outcome.point.scenario_hash[:12], source
        )

    result = run_lifecycle(
        plant,
        config,
        seed=seed,
        backend=args.backend,
        family=args.family,
        completed=completed,
        observer=observe,
        max_attempts=args.max_attempts,
    )
    manifest = recorder.finalize(runs_root=runs_root)
    log.info("manifest %s", manifest)

    print(
        f"lifecycle {args.family} ({plant.num_switches} switches, "
        f"{sum(plant.servers.values())} servers): {result.events_applied} events, "
        f"{len(result.epochs)} epoch(s), backend {result.backend}, seed {seed}"
    )
    header = ["epoch", "time_h", "throughput", "availability", "failed_links", "failed_switches"]
    print("  " + "  ".join(f"{name:>15s}" for name in header))
    for record in result.epochs:
        print(
            "  "
            + "  ".join(
                f"{record[name]:15.4f}"
                if isinstance(record[name], float)
                else f"{record[name]:15d}"
                for name in header
            )
        )
    print(
        "  time-averaged throughput "
        f"{result.time_average('throughput'):.4f}, availability "
        f"{result.time_average('availability'):.4f}"
    )
    print(f"  run {recorder.record.run_id} (resume with: lifecycle run --resume ...)")
    if result.failed_epochs:
        print(
            f"{result.failed_epochs} epoch(s) failed after retries; resume the "
            "run to retry them",
            file=sys.stderr,
        )
        return 1
    return 0


def _lifecycle_main(argv: List[str]) -> int:
    from repro.telemetry import configure_logging

    args = build_lifecycle_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", 0))
    return _lifecycle_run(args)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "lifecycle":
        return _lifecycle_main(argv[1:])
    if argv and argv[0] == "topo":
        return _topo_main(argv[1:])
    if argv and argv[0] == "sim":
        return _sim_main(argv[1:])
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.telemetry import configure_logging

    configure_logging(args.verbose)

    if args.list:
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0
    if not args.experiments:
        parser.error("no experiments given (use --list to see the available ids)")

    exit_code = 0
    for experiment_id in args.experiments:
        try:
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        except (KeyError, ValueError) as error:
            print(f"error: {experiment_id}: {error}", file=sys.stderr)
            exit_code = 2
            continue
        print(format_table(result))
        print()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
