"""Jellyfish topology: a random regular graph among top-of-rack switches.

Implements the construction of Section 3 (``RRG(N, k, r)``), the incremental
expansion procedures of Section 4.2 (adding a rack with servers, adding a
bare switch to boost capacity) and heterogeneous expansion with switches of
different port counts.

Construction is array-native: the random-graph constructors produce
index-space adjacency rows which back a
:class:`~repro.topologies.core.TopologyCore`, and the ``networkx`` view the
rest of the public API exposes is materialized lazily (bit-identical to the
historical eager construction, including adjacency insertion order).
Incremental expansion maintains the set of splice-eligible links in a
rank-selectable structure instead of rebuilding an O(E) candidate list per
splice; the historical quadratic loop is retained as
:meth:`JellyfishTopology._add_switch_reference` and pinned by the parity
suite in ``tests/test_topology_core.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.graphs.regular import (
    random_graph_with_degree_budget_rows,
    random_regular_graph,
    regular_rows,
)
from repro.topologies.base import Topology, TopologyError
from repro.topologies.core import TopologyCore
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_integer


class _SpliceCandidateSet:
    """Splice-eligible links for :meth:`JellyfishTopology.add_switch`.

    Holds the edge list captured when the new switch joins (every edge is
    initially eligible: the switch has no links yet) and supports the two
    operations the splice loop needs: uniform selection by rank over the
    surviving candidates (Fenwick-tree prefix sums, O(log E)) and removal of
    every candidate incident to a node that just became the new switch's
    neighbor (amortized O(degree log E)).  Candidate order is the captured
    ``graph.edges`` order, and removals preserve the relative order of
    survivors -- exactly the list the historical implementation re-filtered
    from scratch on every iteration, so ``randrange`` draws select the same
    edges.
    """

    __slots__ = ("_edges", "_alive", "_live", "_tree", "_size", "_step", "_incident")

    def __init__(self, edges: Sequence[Tuple[Hashable, Hashable]]) -> None:
        self._edges = list(edges)
        size = len(self._edges)
        self._size = size
        self._live = size
        self._alive = [True] * size
        # Fenwick tree initialized to all-ones in O(E).
        tree = [0] * (size + 1)
        for i in range(1, size + 1):
            tree[i] += 1
            parent = i + (i & -i)
            if parent <= size:
                tree[parent] += tree[i]
        self._tree = tree
        step = 1
        while step * 2 <= size:
            step *= 2
        self._step = step
        incident: Dict[Hashable, List[int]] = {}
        for index, (u, v) in enumerate(self._edges):
            incident.setdefault(u, []).append(index)
            incident.setdefault(v, []).append(index)
        self._incident = incident

    def __len__(self) -> int:
        return self._live

    def select(self, rank: int) -> Tuple[Hashable, Hashable]:
        """The ``rank``-th surviving candidate (0-based, candidate order)."""
        target = rank + 1
        position = 0
        step = self._step
        tree = self._tree
        while step:
            probe = position + step
            if probe <= self._size and tree[probe] < target:
                position = probe
                target -= tree[probe]
            step >>= 1
        return self._edges[position]

    def remove_incident_to(self, node: Hashable) -> None:
        """Drop every surviving candidate with ``node`` as an endpoint."""
        tree = self._tree
        size = self._size
        for index in self._incident.get(node, ()):
            if self._alive[index]:
                self._alive[index] = False
                self._live -= 1
                position = index + 1
                while position <= size:
                    tree[position] -= 1
                    position += position & -position


class JellyfishTopology(Topology):
    """A Jellyfish data-center network (random regular graph of ToR switches).

    Use :meth:`build` to construct ``RRG(N, k, r)`` from scratch, or
    :meth:`from_equipment` to build a Jellyfish using the same switching
    equipment as a fat-tree (the paper's standard comparison setup).
    """

    def __init__(
        self,
        graph: nx.Graph,
        ports: Dict[Hashable, int],
        servers: Optional[Dict[Hashable, int]] = None,
        name: str = "jellyfish",
    ) -> None:
        super().__init__(graph, ports, servers, name=name)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        num_switches: int,
        ports_per_switch: int,
        network_degree: int,
        rng: RngLike = None,
        servers_per_switch: Optional[int] = None,
        method: str = "sequential",
        name: str = "jellyfish",
    ) -> "JellyfishTopology":
        """Construct ``RRG(num_switches, ports_per_switch, network_degree)``.

        Each switch uses ``network_degree`` ports for the random interconnect
        and, by default, the remaining ``ports_per_switch - network_degree``
        ports for servers (override with ``servers_per_switch``).  The
        ``"sequential"`` and ``"stubs"`` methods build array-natively (no
        ``networkx`` graph until something needs it).
        """
        require_integer(num_switches, "num_switches")
        require_integer(ports_per_switch, "ports_per_switch")
        require_integer(network_degree, "network_degree")
        if network_degree > ports_per_switch:
            raise TopologyError(
                "network_degree cannot exceed ports_per_switch "
                f"({network_degree} > {ports_per_switch})"
            )
        if servers_per_switch is None:
            servers_per_switch = ports_per_switch - network_degree
        if servers_per_switch < 0:
            raise TopologyError("servers_per_switch must be non-negative")
        if network_degree + servers_per_switch > ports_per_switch:
            raise TopologyError(
                "network_degree + servers_per_switch exceeds ports_per_switch"
            )

        # When N * r is odd the exact regular graph does not exist; the
        # construction leaves one port free, matching the paper's remark
        # that "only a single unmatched port might remain".
        degree = network_degree
        if (num_switches * degree) % 2 != 0:
            degree -= 1

        if method in ("sequential", "stubs"):
            rows = regular_rows(num_switches, degree, rng, method=method)
            core = TopologyCore(
                range(num_switches),
                rows,
                [ports_per_switch] * num_switches,
                [servers_per_switch] * num_switches,
            )
            return cls.from_core(core, name=name)

        graph = random_regular_graph(num_switches, degree, rng, method=method)
        ports = {node: ports_per_switch for node in graph.nodes}
        servers = {node: servers_per_switch for node in graph.nodes}
        return cls(graph, ports, servers, name=name)

    @classmethod
    def from_equipment(
        cls,
        num_switches: int,
        ports_per_switch: int,
        num_servers: int,
        rng: RngLike = None,
        name: str = "jellyfish",
    ) -> "JellyfishTopology":
        """Build a Jellyfish from a switch pool while hosting ``num_servers``.

        Servers are spread as evenly as possible over the switches; every
        remaining port is used for the random interconnect, so switches with
        one server fewer get one extra network link (the graph is only
        near-regular, as in the paper's heterogeneous setting).  This is the
        configuration used when comparing against a fat-tree with the same
        switching equipment but a different number of servers.
        """
        require_integer(num_servers, "num_servers")
        if num_servers < 0:
            raise TopologyError("num_servers must be non-negative")
        if num_servers > num_switches * (ports_per_switch - 1):
            raise TopologyError(
                "too many servers: at least one port per switch must remain "
                "for the network"
            )
        base_servers = num_servers // num_switches
        extra = num_servers % num_switches
        if ports_per_switch - base_servers - (1 if extra else 0) < 1:
            raise TopologyError("no ports remain for the network")

        rand = ensure_rng(rng)
        servers = {}
        budgets = {}
        for node in range(num_switches):
            count = base_servers + (1 if node < extra else 0)
            servers[node] = count
            budgets[node] = min(ports_per_switch - count, num_switches - 1)
        rows, labels = random_graph_with_degree_budget_rows(budgets, rng=rand)
        core = TopologyCore(
            labels,
            rows,
            [ports_per_switch] * num_switches,
            [servers[label] for label in labels],
        )
        return cls.from_core(core, name=name)

    # ------------------------------------------------------------------ #
    # Incremental expansion (Section 4.2)
    # ------------------------------------------------------------------ #
    def add_switch(
        self,
        switch: Hashable,
        ports: int,
        servers: int = 0,
        rng: RngLike = None,
        validate: bool = True,
    ) -> None:
        """Incorporate a new switch by random link swaps.

        The new switch joins the interconnect with ``ports - servers``
        network ports.  While it has at least two free ports, a random
        existing link (v, w) with v, w not already adjacent to the new switch
        is removed and replaced by links (u, v) and (u, w).  A final odd free
        port is left unused, as in the paper.

        The splice-eligible link set is maintained incrementally (see
        :class:`_SpliceCandidateSet`); selected edges -- and therefore the
        resulting topology -- are identical to the historical per-iteration
        rebuild for the same seed.  ``validate=False`` defers the port-budget
        check to the caller (used by :meth:`expand` to validate once).
        """
        require_integer(ports, "ports")
        require_integer(servers, "servers")
        if switch in self.graph:
            raise TopologyError(f"switch {switch!r} already exists")
        if servers < 0 or servers > ports:
            raise TopologyError("servers must be between 0 and ports")
        rand = ensure_rng(rng)

        graph = self.graph
        self._core = None  # in-place mutation invalidates derived arrays
        graph.add_node(switch)
        self.ports[switch] = ports
        self.servers[switch] = servers

        if self.free_ports(switch) >= 2:
            candidates = _SpliceCandidateSet(graph.edges)
            while self.free_ports(switch) >= 2 and len(candidates):
                v, w = candidates.select(rand.randrange(len(candidates)))
                graph.remove_edge(v, w)
                graph.add_edge(switch, v)
                graph.add_edge(switch, w)
                candidates.remove_incident_to(v)
                candidates.remove_incident_to(w)
        if validate:
            self.validate()

    def _add_switch_reference(
        self,
        switch: Hashable,
        ports: int,
        servers: int = 0,
        rng: RngLike = None,
    ) -> None:
        """Historical quadratic splice loop (parity reference; do not modify).

        Rebuilds the full eligible-link list from ``graph.edges`` on every
        iteration.  Kept so the parity suite and the topology benchmarks can
        pin :meth:`add_switch` against the original draw-for-draw.
        """
        require_integer(ports, "ports")
        require_integer(servers, "servers")
        if switch in self.graph:
            raise TopologyError(f"switch {switch!r} already exists")
        if servers < 0 or servers > ports:
            raise TopologyError("servers must be between 0 and ports")
        rand = ensure_rng(rng)

        graph = self.graph
        self._core = None
        graph.add_node(switch)
        self.ports[switch] = ports
        self.servers[switch] = servers

        while self.free_ports(switch) >= 2:
            candidates = [
                (v, w)
                for v, w in graph.edges
                if switch not in (v, w)
                and not graph.has_edge(switch, v)
                and not graph.has_edge(switch, w)
            ]
            if not candidates:
                break
            v, w = candidates[rand.randrange(len(candidates))]
            graph.remove_edge(v, w)
            graph.add_edge(switch, v)
            graph.add_edge(switch, w)
        self.validate()

    def add_rack(
        self,
        switch: Hashable,
        ports: int,
        servers: int,
        rng: RngLike = None,
    ) -> None:
        """Add a rack: a new ToR switch with ``servers`` hosts attached."""
        if servers <= 0:
            raise TopologyError("a rack must contain at least one server")
        self.add_switch(switch, ports, servers=servers, rng=rng)

    def expand(
        self,
        new_switches: int,
        ports: int,
        servers_per_switch: int,
        rng: RngLike = None,
        prefix: str = "new",
    ) -> None:
        """Add ``new_switches`` racks in one expansion step.

        Switch identifiers are ``(prefix, i)`` with ``i`` continuing from the
        current switch count so repeated expansions never collide.  The port
        budget is validated once after the whole batch rather than after
        every added switch.
        """
        require_integer(new_switches, "new_switches")
        if new_switches < 0:
            raise ValueError("new_switches must be non-negative")
        rand = ensure_rng(rng)
        start = self.num_switches
        for offset in range(new_switches):
            self.add_switch(
                (prefix, start + offset),
                ports,
                servers=servers_per_switch,
                rng=rand,
                validate=False,
            )
        self.validate()

    def rewired_links_for_expansion(self, ports_added: int) -> int:
        """Number of existing cables that must be moved to absorb new ports.

        Every two new network ports require removing one existing link and
        adding two new cables (Section 6.2), so the count of moved cables is
        ``ports_added // 2``.
        """
        if ports_added < 0:
            raise ValueError("ports_added must be non-negative")
        return ports_added // 2
