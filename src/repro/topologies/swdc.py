"""Small-World Datacenter (SWDC) topologies [Shin, Wong, Sirer -- SoCC 2011].

SWDC arranges nodes on a regular lattice (a ring, a 2D torus or a 3D
hexagonal torus) and adds random "small-world" shortcut links until every
node reaches the target degree (6 in the paper's comparison).  The Jellyfish
paper compares against all three variants at ~484 switches with 1 server per
switch (then 2 servers to create oversubscription), Fig 4.

The lattice supplies the structured neighbours; the remaining ports are
filled with uniform-random shortcuts, avoiding duplicate links.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.topologies.base import Topology, TopologyError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_integer

RING = "ring"
TORUS_2D = "torus2d"
HEX_TORUS_3D = "hex3d"

_VARIANTS = (RING, TORUS_2D, HEX_TORUS_3D)


def _ring_lattice(num_nodes: int) -> nx.Graph:
    """Simple cycle: each node linked to its two ring neighbours."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    for node in range(num_nodes):
        graph.add_edge(node, (node + 1) % num_nodes)
    return graph


def _torus_2d_lattice(num_nodes: int) -> Tuple[nx.Graph, Tuple[int, int]]:
    """2D torus with wraparound; requires a (near-)square node count."""
    side = int(round(math.sqrt(num_nodes)))
    if side * side != num_nodes:
        raise TopologyError(
            f"2D torus requires a perfect-square node count, got {num_nodes}"
        )
    graph = nx.Graph()
    for x in range(side):
        for y in range(side):
            graph.add_node((x, y))
    for x in range(side):
        for y in range(side):
            graph.add_edge((x, y), ((x + 1) % side, y))
            graph.add_edge((x, y), (x, (y + 1) % side))
    return graph, (side, side)


def _hex_torus_3d_lattice(num_nodes: int) -> nx.Graph:
    """3D 'hex' torus: nodes on an L x M x 2 grid with 3 lattice links each.

    The SWDC paper's 3D hexagonal torus gives every node three lattice
    neighbours (so that with three random links the degree is six).  We model
    it as a prism over a 2D torus of dimensions L x M with alternating
    vertical links, which reproduces the degree-3 lattice structure.
    """
    if num_nodes % 2 != 0:
        raise TopologyError("3D hex torus requires an even node count")
    half = num_nodes // 2
    side = int(round(math.sqrt(half)))
    if side * side != half:
        raise TopologyError(
            "3D hex torus requires num_nodes = 2 * s^2 for integer s, "
            f"got {num_nodes}"
        )
    graph = nx.Graph()
    for layer in range(2):
        for x in range(side):
            for y in range(side):
                graph.add_node((x, y, layer))
    for x in range(side):
        for y in range(side):
            # Each node gets two in-layer links (a hexagonal tiling has
            # alternating link directions) and one inter-layer link.
            for layer in range(2):
                graph.add_edge((x, y, layer), ((x + 1) % side, y, layer))
            graph.add_edge((x, y, 0), (x, y, 1))
    return graph


class SmallWorldTopology(Topology):
    """SWDC topology: lattice links plus random shortcuts up to a target degree."""

    def __init__(self, graph, ports, servers, variant: str, name: str):
        super().__init__(graph, ports, servers, name=name)
        self.variant = variant

    @classmethod
    def build(
        cls,
        num_nodes: int,
        variant: str = RING,
        degree: int = 6,
        servers_per_switch: int = 1,
        ports_per_switch: int = None,
        rng: RngLike = None,
    ) -> "SmallWorldTopology":
        """Build an SWDC topology.

        ``degree`` is the total network degree (lattice plus random links);
        ``ports_per_switch`` defaults to ``degree + servers_per_switch``.
        """
        require_integer(num_nodes, "num_nodes")
        require_integer(degree, "degree")
        if variant not in _VARIANTS:
            raise TopologyError(
                f"unknown SWDC variant {variant!r}; expected one of {_VARIANTS}"
            )
        if num_nodes < 4:
            raise TopologyError("SWDC topologies need at least 4 nodes")
        rand = ensure_rng(rng)

        if variant == RING:
            graph = _ring_lattice(num_nodes)
        elif variant == TORUS_2D:
            graph, _ = _torus_2d_lattice(num_nodes)
        else:
            graph = _hex_torus_3d_lattice(num_nodes)

        lattice_degree = max(dict(graph.degree()).values())
        if degree < lattice_degree:
            raise TopologyError(
                f"target degree {degree} is below the lattice degree {lattice_degree}"
            )
        cls._add_random_shortcuts(graph, degree, rand)

        if ports_per_switch is None:
            ports_per_switch = degree + servers_per_switch
        ports = {node: ports_per_switch for node in graph.nodes}
        servers = {node: servers_per_switch for node in graph.nodes}
        return cls(
            graph,
            ports,
            servers,
            variant=variant,
            name=f"swdc-{variant}",
        )

    @staticmethod
    def _add_random_shortcuts(graph: nx.Graph, degree: int, rand) -> None:
        """Fill every node up to ``degree`` with uniform-random shortcut links."""
        def deficient_nodes() -> List[Hashable]:
            return [node for node in graph.nodes if graph.degree(node) < degree]

        stalled = 0
        while True:
            candidates = deficient_nodes()
            if len(candidates) < 2:
                break
            added = False
            attempts = 4 * len(candidates)
            for _ in range(attempts):
                u, v = rand.sample(candidates, 2)
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    added = True
                    break
            if not added:
                # Exhaustive check before giving up.
                for i, u in enumerate(candidates):
                    for v in candidates[i + 1:]:
                        if not graph.has_edge(u, v):
                            graph.add_edge(u, v)
                            added = True
                            break
                    if added:
                        break
            if not added:
                stalled += 1
                if stalled > 2:
                    break  # a couple of ports may remain free, as in Jellyfish

    def set_servers_per_switch(self, servers_per_switch: int) -> None:
        """Re-provision every switch with ``servers_per_switch`` servers.

        Used to oversubscribe the Fig 4 comparison (2 servers per switch).
        Port counts are grown if necessary so the budget stays valid.
        """
        require_integer(servers_per_switch, "servers_per_switch")
        if servers_per_switch < 0:
            raise TopologyError("servers_per_switch must be non-negative")
        for node in self.graph.nodes:
            needed = self.graph.degree(node) + servers_per_switch
            if self.ports[node] < needed:
                self.ports[node] = needed
            self.servers[node] = servers_per_switch
        self.validate()
