"""Degree-diameter benchmark graphs (paper Section 4.1, Fig 3).

The paper benchmarks Jellyfish against the *best known* degree-diameter
graphs from the Comellas-Delorme web table.  Those graph files are not
available offline, so this module provides:

* exact classical constructions where they exist and are optimal
  (:func:`petersen_graph` -- 10 nodes, degree 3, diameter 2;
  :func:`hoffman_singleton_graph` -- 50 nodes, degree 7, diameter 2), and
* :func:`optimized_low_diameter_graph` -- a local-search optimizer that,
  given a node count and degree, starts from a random regular graph and
  performs 2-opt edge swaps to minimize average path length (breaking ties
  on diameter).  This plays the same benchmarking role as the table graphs:
  a carefully optimized graph of identical size and degree against which the
  plain random graph is measured.

Both are wrapped into :class:`DegreeDiameterTopology` so they can carry
servers and enter the throughput harness.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from repro.graphs.properties import average_path_length, diameter
from repro.graphs.regular import random_regular_graph
from repro.topologies.base import Topology, TopologyError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_integer


def petersen_graph() -> nx.Graph:
    """The Petersen graph: 10 nodes, 3-regular, diameter 2 (Moore-optimal)."""
    return nx.petersen_graph()


def hoffman_singleton_graph() -> nx.Graph:
    """The Hoffman-Singleton graph: 50 nodes, 7-regular, diameter 2.

    This is the unique Moore graph of degree 7 and is the optimal
    degree-diameter graph for (degree=7, diameter=2); the paper's (50, 11, 7)
    configuration in Fig 3 is exactly this graph with 4 servers per switch.
    """
    return nx.hoffman_singleton_graph()


def _swap_edges(graph: nx.Graph, e1, e2) -> Optional[Tuple]:
    """Attempt a degree-preserving 2-opt swap of edges ``e1`` and ``e2``.

    Replaces (a, b), (c, d) with (a, c), (b, d) when that keeps the graph
    simple.  Returns the new edge pair, or None if the swap is not valid.
    """
    (a, b), (c, d) = e1, e2
    if len({a, b, c, d}) < 4:
        return None
    if graph.has_edge(a, c) or graph.has_edge(b, d):
        return None
    graph.remove_edge(a, b)
    graph.remove_edge(c, d)
    graph.add_edge(a, c)
    graph.add_edge(b, d)
    return (a, c), (b, d)


def optimized_low_diameter_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    iterations: int = 2000,
) -> nx.Graph:
    """Local-search approximation of a best-known degree-diameter graph.

    Starts from a random regular graph and repeatedly applies 2-opt edge
    swaps, keeping a swap whenever it reduces (average path length, diameter)
    lexicographically and preserves connectivity.  The result is a carefully
    optimized benchmark graph of the given size and degree.
    """
    require_integer(iterations, "iterations")
    rand = ensure_rng(rng)
    graph = random_regular_graph(num_nodes, degree, rand)
    if graph.number_of_edges() < 2:
        return graph

    best_score = (average_path_length(graph), diameter(graph))
    for _ in range(iterations):
        edges = list(graph.edges)
        e1 = edges[rand.randrange(len(edges))]
        e2 = edges[rand.randrange(len(edges))]
        swapped = _swap_edges(graph, e1, e2)
        if swapped is None:
            continue
        if not nx.is_connected(graph):
            score = None
        else:
            score = (average_path_length(graph), diameter(graph))
        if score is not None and score < best_score:
            best_score = score
            continue
        # Revert the swap.
        (a, c), (b, d) = swapped
        graph.remove_edge(a, c)
        graph.remove_edge(b, d)
        graph.add_edge(*e1)
        graph.add_edge(*e2)
    return graph


# Known exact constructions keyed by (num_nodes, degree).
_EXACT_CONSTRUCTIONS = {
    (10, 3): petersen_graph,
    (50, 7): hoffman_singleton_graph,
}


class DegreeDiameterTopology(Topology):
    """A benchmark topology built from a (near-)optimal degree-diameter graph."""

    @classmethod
    def build(
        cls,
        num_switches: int,
        ports_per_switch: int,
        network_degree: int,
        servers_per_switch: Optional[int] = None,
        rng: RngLike = None,
        iterations: int = 2000,
        name: str = "degree-diameter",
    ) -> "DegreeDiameterTopology":
        """Build the benchmark graph for (num_switches, network_degree).

        Uses an exact classical construction when one is known for the
        parameters, otherwise the local-search optimizer.  Servers per switch
        default to ``ports_per_switch - network_degree``.
        """
        require_integer(num_switches, "num_switches")
        require_integer(ports_per_switch, "ports_per_switch")
        require_integer(network_degree, "network_degree")
        if network_degree > ports_per_switch:
            raise TopologyError("network_degree cannot exceed ports_per_switch")
        if servers_per_switch is None:
            servers_per_switch = ports_per_switch - network_degree
        if servers_per_switch + network_degree > ports_per_switch:
            raise TopologyError(
                "network_degree + servers_per_switch exceeds ports_per_switch"
            )

        exact = _EXACT_CONSTRUCTIONS.get((num_switches, network_degree))
        if exact is not None:
            graph = exact()
        else:
            effective_degree = network_degree
            if (num_switches * network_degree) % 2 != 0:
                effective_degree -= 1
            graph = optimized_low_diameter_graph(
                num_switches, effective_degree, rng=rng, iterations=iterations
            )
        ports = {node: ports_per_switch for node in graph.nodes}
        servers = {node: servers_per_switch for node in graph.nodes}
        return cls(graph, ports, servers, name=name)
