"""Two-stage Clos (leaf-spine) topology.

The LEGUP comparison (paper Section 4.2, Fig 7) upgrades a Clos network
under a budget.  This module provides the rigid Clos structure that the
LEGUP-like planner in :mod:`repro.expansion.legup` starts from and expands:
``num_leaves`` leaf (ToR) switches, each connected to every spine switch by
``links_per_pair`` parallel cables, with servers only on the leaves.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.topologies.base import Topology, TopologyError
from repro.utils.validation import require_integer

LEAF = "leaf"
SPINE = "spine"


class LeafSpineTopology(Topology):
    """Leaf-spine Clos network with uniform leaf-to-spine connectivity."""

    def __init__(self, graph, ports, servers, links_per_pair: int, name: str):
        super().__init__(graph, ports, servers, name=name)
        self.links_per_pair = links_per_pair

    @classmethod
    def build(
        cls,
        num_leaves: int,
        num_spines: int,
        servers_per_leaf: int,
        leaf_ports: int,
        spine_ports: int,
        links_per_pair: int = 1,
        name: str = "leaf-spine",
    ) -> "LeafSpineTopology":
        """Build a leaf-spine network.

        Every leaf connects to every spine.  ``links_per_pair`` > 1 is modeled
        as a single link of that capacity (the capacity is stored as the edge
        attribute ``capacity`` consumed by the flow machinery).
        """
        for value, label in [
            (num_leaves, "num_leaves"),
            (num_spines, "num_spines"),
            (servers_per_leaf, "servers_per_leaf"),
            (leaf_ports, "leaf_ports"),
            (spine_ports, "spine_ports"),
            (links_per_pair, "links_per_pair"),
        ]:
            require_integer(value, label)
            if value < 0:
                raise TopologyError(f"{label} must be non-negative")
        if num_leaves == 0 or num_spines == 0:
            raise TopologyError("leaf-spine needs at least one leaf and one spine")
        if servers_per_leaf + num_spines * links_per_pair > leaf_ports:
            raise TopologyError(
                "leaf ports cannot host the requested servers and uplinks"
            )
        if num_leaves * links_per_pair > spine_ports:
            raise TopologyError("spine ports cannot host the requested downlinks")

        graph = nx.Graph()
        ports: Dict[Tuple, int] = {}
        servers: Dict[Tuple, int] = {}
        for leaf in range(num_leaves):
            node = (LEAF, leaf)
            graph.add_node(node)
            ports[node] = leaf_ports
            servers[node] = servers_per_leaf
        for spine in range(num_spines):
            node = (SPINE, spine)
            graph.add_node(node)
            ports[node] = spine_ports
            servers[node] = 0
        for leaf in range(num_leaves):
            for spine in range(num_spines):
                graph.add_edge(
                    (LEAF, leaf), (SPINE, spine), capacity=float(links_per_pair)
                )
        topo = cls(graph, ports, servers, links_per_pair=links_per_pair, name=name)
        return topo

    def validate(self) -> None:
        """Port budget check accounting for parallel links (edge capacities)."""
        for node in self.graph.nodes:
            if node not in self.ports:
                raise TopologyError(f"switch {node!r} has no port count")
            link_ports = sum(
                int(data.get("capacity", 1.0))
                for _, _, data in self.graph.edges(node, data=True)
            )
            used = link_ports + self.servers.get(node, 0)
            if used > self.ports[node]:
                raise TopologyError(
                    f"switch {node!r} uses {used} ports but only has "
                    f"{self.ports[node]}"
                )

    def leaves(self):
        return [node for node in self.graph.nodes if node[0] == LEAF]

    def spines(self):
        return [node for node in self.graph.nodes if node[0] == SPINE]

    def uplink_capacity_per_leaf(self) -> float:
        """Total leaf-to-spine capacity from one leaf."""
        leaves = self.leaves()
        if not leaves:
            return 0.0
        leaf = leaves[0]
        return sum(
            data.get("capacity", 1.0)
            for _, _, data in self.graph.edges(leaf, data=True)
        )

    def bisection_bandwidth_edges(self) -> float:
        """Bisection of a leaf-spine: half of the total leaf uplink capacity.

        Splitting the leaves into two equal halves cuts half of all
        leaf-to-spine capacity, which is the worst balanced cut for a
        non-blocking Clos.
        """
        total_uplink = sum(
            data.get("capacity", 1.0) for _, _, data in self.graph.edges(data=True)
        )
        return total_uplink / 2.0
