"""Array-native topology core.

A :class:`TopologyCore` is the columnar representation of a switch-level
topology: a node-label list, insertion-ordered adjacency rows in index
space, and aligned ``int32`` port/server vectors.  It is what the
constructors in :mod:`repro.graphs.regular` produce natively, what the
ensemble generator batches over, and what bridges straight into the CSR
kernels (:meth:`TopologyCore.csr`) without ever materializing a
``networkx`` graph.

Invariants (also documented in ``docs/engine.md``):

* ``labels[i]`` is the node at index ``i``; ``index_of`` is the exact
  inverse.  Label order is graph *insertion* order -- the order an
  equivalent ``nx.Graph`` would iterate its nodes.
* ``rows[i]`` lists the neighbors of node ``i`` as indices, in the exact
  adjacency insertion order the equivalent ``add_edge``/``remove_edge``
  history would have left in a live ``nx.Graph``.  CSR row order -- and
  therefore every discovery-order tie-break in BFS/KSP -- is defined by it.
* ``ports`` / ``servers`` are ``int32`` arrays aligned with ``labels``;
  ``ports[i] >= degree(i) + servers[i]`` (checked by :meth:`validate`).
* :attr:`content_hash` is canonical: it depends only on the labeled
  structure (which nodes, which edges, which port/server counts), not on
  construction history or adjacency order, so two cores describing the
  same topology hash identically even when their tie-break orders differ.
* Mutation happens by replacement (:meth:`without_edges`,
  :meth:`without_nodes` return new cores); the only sanctioned in-place
  mutation is :meth:`set_servers`, which drops the memoized hash.
"""

from __future__ import annotations

import hashlib
from itertools import chain
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.graphs.csr import CSRGraph, adopt_csr_view, index_dtype
from repro.graphs.regular import graph_from_rows


class TopologyError(ValueError):
    """Raised when a topology violates its own port budget or invariants."""


class TopologyCore:
    """Columnar switch-level topology: labels, adjacency rows, port vectors."""

    __slots__ = (
        "labels",
        "index_of",
        "rows",
        "ports",
        "servers",
        "num_nodes",
        "_degrees",
        "_csr",
        "_content_hash",
    )

    def __init__(
        self,
        labels: Iterable[Hashable],
        rows: List[Sequence[int]],
        ports,
        servers,
    ) -> None:
        self.labels = list(labels)
        self.rows = rows
        self.index_of: Dict[Hashable, int] = {
            label: i for i, label in enumerate(self.labels)
        }
        self.num_nodes = len(self.labels)
        self.ports = np.ascontiguousarray(ports, dtype=np.int32)
        self.servers = np.ascontiguousarray(servers, dtype=np.int32)
        if len(self.rows) != self.num_nodes:
            raise TopologyError(
                f"adjacency rows ({len(self.rows)}) do not match labels "
                f"({self.num_nodes})"
            )
        if self.ports.shape != (self.num_nodes,) or self.servers.shape != (
            self.num_nodes,
        ):
            raise TopologyError("ports/servers arrays must align with labels")
        self._degrees: Optional[np.ndarray] = None
        self._csr: Optional[CSRGraph] = None
        self._content_hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        ports: Dict[Hashable, int],
        servers: Optional[Dict[Hashable, int]] = None,
    ) -> "TopologyCore":
        """Derive a core from a live ``nx.Graph`` plus port/server dicts."""
        labels = list(graph.nodes)
        index_of = {label: i for i, label in enumerate(labels)}
        rows = [
            [index_of[neighbor] for neighbor in graph.adj[label]]
            for label in labels
        ]
        servers = servers or {}
        return cls(
            labels,
            rows,
            [ports[label] for label in labels],
            [servers.get(label, 0) for label in labels],
        )

    def copy(self) -> "TopologyCore":
        """Independent copy (rows and vectors are duplicated; order kept)."""
        clone = TopologyCore.__new__(TopologyCore)
        clone.labels = list(self.labels)
        clone.index_of = dict(self.index_of)
        clone.rows = [list(row) for row in self.rows]
        clone.ports = self.ports.copy()
        clone.servers = self.servers.copy()
        clone.num_nodes = self.num_nodes
        clone._degrees = None
        clone._csr = None
        clone._content_hash = self._content_hash
        return clone

    def copy_as_graph_copy(self) -> "TopologyCore":
        """Copy with adjacency rows reordered the way ``nx.Graph.copy`` would.

        ``nx.Graph.copy`` rebuilds adjacency by replaying ``add_edges_from``
        over the u-major edge iteration, which *changes* interleaved
        insertion order -- and the historical evaluation pipeline (failure
        injection copies the topology before routing) tie-breaks on that
        reordered adjacency.  :meth:`repro.topologies.base.Topology.copy`
        uses this variant so core-backed copies stay bit-identical to the
        graph-backed path.
        """
        clone = self.copy()
        rows: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for u, row in enumerate(self.rows):
            for v in row:
                if v > u:
                    rows[u].append(v)
                    rows[v].append(u)
        clone.rows = rows
        return clone

    # ------------------------------------------------------------------ #
    # Vectorized accounting
    # ------------------------------------------------------------------ #
    def degrees(self) -> np.ndarray:
        """Network degree of every node (``int32``, aligned with labels)."""
        if self._degrees is None:
            self._degrees = np.fromiter(
                (len(row) for row in self.rows), dtype=np.int32, count=self.num_nodes
            )
        return self._degrees

    @property
    def num_edges(self) -> int:
        return int(self.degrees().sum()) // 2

    def free_ports_array(self) -> np.ndarray:
        """Unused ports per node: ``ports - degree - servers``."""
        return self.ports - self.degrees() - self.servers

    def validate(self) -> None:
        """Vectorized port-budget check; raises :class:`TopologyError`."""
        overdrawn = np.flatnonzero(self.free_ports_array() < 0)
        if overdrawn.size:
            index = int(overdrawn[0])
            used = int(self.degrees()[index] + self.servers[index])
            raise TopologyError(
                f"switch {self.labels[index]!r} uses {used} ports but only has "
                f"{int(self.ports[index])}"
            )
        if np.any(self.servers < 0):
            index = int(np.flatnonzero(self.servers < 0)[0])
            raise TopologyError(f"negative server count on {self.labels[index]!r}")

    def set_servers(self, index: int, count: int) -> None:
        """In-place server-count update (invalidates the content hash)."""
        if count < 0:
            raise TopologyError(f"negative server count on {self.labels[index]!r}")
        self.servers[index] = count
        self._content_hash = None

    # ------------------------------------------------------------------ #
    # Edge arrays and derived structures
    # ------------------------------------------------------------------ #
    def edge_array(self) -> np.ndarray:
        """Undirected edges as an ``(E, 2) int32`` index array.

        Edge order and orientation follow ``nx.Graph.edges`` iteration of
        the equivalent graph: ordered by the lower endpoint's index, within
        a row by adjacency insertion order.  This is the order the
        mask-based failure injection samples over, matching the historical
        ``list(graph.edges)`` draw order exactly.
        """
        pairs = [
            (u, v) for u, row in enumerate(self.rows) for v in row if v > u
        ]
        if not pairs:
            return np.empty((0, 2), dtype=np.int32)
        return np.asarray(pairs, dtype=np.int32)

    def directed_arrays(self):
        """``(sources, targets)`` of every directed adjacency entry."""
        csr = self.csr()
        return csr.edge_sources(), csr.indices

    def csr(self, build: bool = True) -> Optional[CSRGraph]:
        """The :class:`CSRGraph` view of this core (built once, cached).

        Node order follows the CSR contract (sorted labels when orderable,
        insertion order otherwise); per-row adjacency order is taken from
        ``rows`` verbatim, so kernels tie-break exactly as they would on the
        materialized graph.
        """
        if self._csr is None:
            if not build:
                return None
            self._csr = self._build_csr()
        return self._csr

    def _build_csr(self) -> CSRGraph:
        try:
            nodes = sorted(self.labels)
            is_sorted = nodes == self.labels
        except TypeError:
            nodes = list(self.labels)
            is_sorted = True
        n = self.num_nodes
        # Promote to int64 before the cumulative sum when the directed edge
        # count could overflow int32 offsets (see repro.graphs.csr.index_dtype).
        dtype = index_dtype(n, int(self.degrees().sum(dtype=np.int64)))
        indptr = np.zeros(n + 1, dtype=dtype)
        np.cumsum(self.degrees(), out=indptr[1:])
        if is_sorted:
            total = int(indptr[-1])
            indices = np.fromiter(
                chain.from_iterable(self.rows), dtype=dtype, count=total
            )
            return CSRGraph.from_arrays(nodes, dict(self.index_of), indptr, indices)
        # Labels are orderable but not in sorted order: remap rows into the
        # CSR's sorted-index space, preserving per-row adjacency order.
        index_of = {node: i for i, node in enumerate(nodes)}
        perm = [index_of[label] for label in self.labels]
        inverse = [0] * n
        for original, csr_index in enumerate(perm):
            inverse[csr_index] = original
        flat: List[int] = []
        indptr = np.zeros(n + 1, dtype=dtype)
        for csr_index in range(n):
            row = self.rows[inverse[csr_index]]
            flat.extend(perm[j] for j in row)
            indptr[csr_index + 1] = indptr[csr_index] + len(row)
        indices = np.asarray(flat, dtype=dtype)
        return CSRGraph.from_arrays(nodes, index_of, indptr, indices)

    def to_networkx(self) -> nx.Graph:
        """Materialize the equivalent ``nx.Graph`` (exact adjacency order).

        If this core's CSR view was already built, the new graph adopts it
        (see :func:`repro.graphs.csr.adopt_csr_view`), so downstream
        ``csr_graph(graph)`` calls skip the rebuild.
        """
        graph = graph_from_rows(self.labels, self.rows)
        if self._csr is not None:
            adopt_csr_view(graph, self._csr)
        return graph

    # ------------------------------------------------------------------ #
    # Content addressing
    # ------------------------------------------------------------------ #
    @property
    def content_hash(self) -> str:
        """Canonical sha256 of the labeled structure (order-independent).

        Nodes are canonicalized by ``repr`` order and edges by their sorted
        canonical index pairs, so the hash is invariant under construction
        history and adjacency insertion order -- two topologies hash equal
        iff they have the same labeled nodes, port/server counts and edge
        set.
        """
        if self._content_hash is None:
            n = self.num_nodes
            order = sorted(range(n), key=lambda i: repr(self.labels[i]))
            rank = np.empty(max(n, 1), dtype=np.int64)
            rank[order] = np.arange(n, dtype=np.int64)
            digest = hashlib.sha256()
            digest.update(str(n).encode())
            digest.update(
                "\x1f".join(repr(self.labels[i]) for i in order).encode()
            )
            digest.update(self.ports[order].astype("<i4").tobytes())
            digest.update(self.servers[order].astype("<i4").tobytes())
            edges = self.edge_array()
            if len(edges):
                a = rank[edges[:, 0]]
                b = rank[edges[:, 1]]
                keys = np.minimum(a, b) * np.int64(n) + np.maximum(a, b)
                keys.sort()
                digest.update(keys.astype("<i8").tobytes())
            self._content_hash = digest.hexdigest()
        return self._content_hash

    # ------------------------------------------------------------------ #
    # Mask-based structural edits (used by failure injection / ensembles)
    # ------------------------------------------------------------------ #
    def without_edges(self, mask: np.ndarray) -> "TopologyCore":
        """New core with the masked edges removed (vectorized).

        ``mask`` is boolean over :meth:`edge_array` order.  Surviving
        adjacency rows keep their original insertion order -- exactly what
        removing the same edges from the materialized graph would leave --
        so downstream tie-breaking matches the remove-edge path
        bit-for-bit.
        """
        edges = self.edge_array()
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(edges),):
            raise ValueError(
                f"mask length {mask.shape} does not match edge count {len(edges)}"
            )
        if not mask.any():
            return self.copy()
        n = np.int64(self.num_nodes)
        csr = self.csr()
        # Everything below works in CSR index space (the directed arrays'
        # domain); remap the removed edges there first in case label order
        # and sorted CSR order differ.
        to_csr = np.asarray(
            [csr.index_of[label] for label in self.labels], dtype=np.int64
        )
        removed = to_csr[edges[mask].astype(np.int64)]
        removed_keys = np.minimum(removed[:, 0], removed[:, 1]) * n + np.maximum(
            removed[:, 0], removed[:, 1]
        )
        sources, targets = self.directed_arrays()
        src = sources.astype(np.int64)
        dst = targets.astype(np.int64)
        keys = np.minimum(src, dst) * n + np.maximum(src, dst)
        keep = ~np.isin(keys, removed_keys)
        kept_targets = targets[keep]
        counts = np.bincount(
            sources[keep], minlength=self.num_nodes
        ).astype(np.int64)
        offsets = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        flat = kept_targets.tolist()
        # CSR node order may differ from label order; map rows back.
        rows: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for csr_index in range(self.num_nodes):
            label = csr.nodes[csr_index]
            original = self.index_of[label]
            segment = flat[offsets[csr_index] : offsets[csr_index + 1]]
            rows[original] = [self.index_of[csr.nodes[j]] for j in segment]
        return TopologyCore(
            self.labels, rows, self.ports.copy(), self.servers.copy()
        )

    def without_nodes(self, node_mask: np.ndarray) -> "TopologyCore":
        """New core with masked nodes (and their incident edges) removed.

        ``node_mask`` is boolean over label order; surviving labels keep
        their relative order and surviving rows their adjacency order,
        matching ``graph.remove_node`` semantics.
        """
        node_mask = np.asarray(node_mask, dtype=bool)
        if node_mask.shape != (self.num_nodes,):
            raise ValueError("node mask must align with labels")
        keep = ~node_mask
        new_index = np.full(self.num_nodes, -1, dtype=np.int64)
        new_index[keep] = np.arange(int(keep.sum()), dtype=np.int64)
        labels = [label for label, k in zip(self.labels, keep) if k]
        remap = new_index.tolist()
        rows = [
            [remap[j] for j in self.rows[i] if remap[j] >= 0]
            for i in range(self.num_nodes)
            if keep[i]
        ]
        return TopologyCore(
            labels, rows, self.ports[keep].copy(), self.servers[keep].copy()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"<TopologyCore: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"{int(self.servers.sum())} servers>"
        )
