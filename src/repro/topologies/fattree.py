"""Three-level fat-tree (folded Clos) topology of Al-Fares et al. (SIGCOMM 2008).

A fat-tree built from ``k``-port switches (``k`` even) has ``k`` pods.  Each
pod holds ``k/2`` edge switches and ``k/2`` aggregation switches; there are
``(k/2)^2`` core switches.  Each edge switch hosts ``k/2`` servers, for a
total of ``k^3 / 4`` servers on ``5 k^2 / 4`` switches.  This is the paper's
primary baseline: every Jellyfish comparison uses a Jellyfish built from the
same switching equipment as a fat-tree of some ``k``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.topologies.base import Topology, TopologyError
from repro.utils.validation import require_integer

CORE = "core"
AGGREGATION = "agg"
EDGE = "edge"


def fattree_num_servers(k: int) -> int:
    """Servers supported by a full-bisection fat-tree of k-port switches."""
    return k**3 // 4


def fattree_num_switches(k: int) -> int:
    """Switches used by a fat-tree of k-port switches (edge + agg + core)."""
    return 5 * k**2 // 4


class FatTreeTopology(Topology):
    """k-ary fat-tree with node identifiers carrying their layer and position.

    Node identifiers:

    * core switches: ``("core", i, j)`` for i, j in [0, k/2)
    * aggregation switches: ``("agg", pod, i)``
    * edge switches: ``("edge", pod, i)``
    """

    def __init__(self, graph, ports, servers, k: int, name: str = "fat-tree"):
        super().__init__(graph, ports, servers, name=name)
        self.k = k

    @classmethod
    def build(cls, k: int, name: str = "fat-tree") -> "FatTreeTopology":
        """Build the standard 3-level fat-tree from ``k``-port switches."""
        require_integer(k, "k")
        if k < 2 or k % 2 != 0:
            raise TopologyError(f"fat-tree requires an even port count >= 2, got {k}")
        half = k // 2
        graph = nx.Graph()
        ports: Dict[Tuple, int] = {}
        servers: Dict[Tuple, int] = {}

        core_switches = [(CORE, i, j) for i in range(half) for j in range(half)]
        for switch in core_switches:
            graph.add_node(switch)
            ports[switch] = k
            servers[switch] = 0

        for pod in range(k):
            for i in range(half):
                agg = (AGGREGATION, pod, i)
                edge = (EDGE, pod, i)
                graph.add_node(agg)
                graph.add_node(edge)
                ports[agg] = k
                ports[edge] = k
                servers[agg] = 0
                servers[edge] = half

            # Edge <-> aggregation: full bipartite mesh within the pod.
            for i in range(half):
                for j in range(half):
                    graph.add_edge((EDGE, pod, i), (AGGREGATION, pod, j))

            # Aggregation <-> core: aggregation switch i in each pod connects
            # to core switches (i, 0) ... (i, k/2 - 1).
            for i in range(half):
                for j in range(half):
                    graph.add_edge((AGGREGATION, pod, i), (CORE, i, j))

        return cls(graph, ports, servers, k=k, name=name)

    # ------------------------------------------------------------------ #
    # Layer helpers
    # ------------------------------------------------------------------ #
    def layer(self, switch) -> str:
        """Return ``"core"``, ``"agg"`` or ``"edge"`` for a switch identifier."""
        return switch[0]

    def pod_of(self, switch) -> int:
        """Pod index of an edge or aggregation switch."""
        if self.layer(switch) == CORE:
            raise ValueError("core switches do not belong to a pod")
        return switch[1]

    def edge_switches(self):
        return [node for node in self.graph.nodes if node[0] == EDGE]

    def aggregation_switches(self):
        return [node for node in self.graph.nodes if node[0] == AGGREGATION]

    def core_switches(self):
        return [node for node in self.graph.nodes if node[0] == CORE]

    def bisection_bandwidth_edges(self) -> float:
        """Worst-case balanced-cut capacity of the full fat-tree.

        A full-bisection fat-tree supports all servers at line rate, so the
        bisection equals half of the server count (in server line-rate
        units): ``k^3 / 8`` links cross the bisection.
        """
        return self.k**3 / 8.0

    def normalized_bisection_bandwidth(self) -> float:
        """Bisection normalized by the servers in one partition (always 1.0)."""
        return self.bisection_bandwidth_edges() / (self.num_servers / 2.0)
