"""Topology ensembles: batches of seeded random-graph instances.

The paper's headline claims are ensemble statements -- Fig 2(c)'s scaling
and Fig 8's failure gracefulness hold for *almost every* random regular
graph, not one lucky sample -- and the related systems literature (Jyothi et
al., *High Throughput Data Center Topology Design*; Yu et al., *Space
Shuffle*) evaluates designs over hundreds of sampled instances per point.
This module generates those batches array-natively:

* :class:`EnsembleSpec` declares a batch: instance count, RRG parameters,
  construction method and a base seed from which per-instance seeds are
  spawned (:func:`repro.utils.rng.spawn_seeds`, so instance ``i`` is
  reproducible without building ``0..i-1``... the whole list derives from
  the base seed).
* :func:`generate_cores` / :func:`build_ensemble` produce
  :class:`~repro.topologies.core.TopologyCore` instances (no ``networkx``
  graph is ever materialized) sharing one construction scratch buffer
  across the batch.
* :func:`ensemble_summary` aggregates per-instance structural metrics.
* ``ensemble_*_point`` functions are picklable scenario targets, so
  ensemble sweeps shard across worker processes through the existing
  :class:`~repro.engine.runner.SweepRunner` like any other experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.graphs.regular import regular_rows, stub_matching_regular_rows
from repro.telemetry import trace
from repro.topologies.core import TopologyCore, TopologyError
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import RngLike, ensure_rng, spawn_seeds


@dataclass(frozen=True)
class EnsembleSpec:
    """A batch of seeded ``RRG(N, k, r)`` instances.

    ``servers_per_switch`` defaults to ``ports_per_switch - network_degree``
    (every non-network port hosts a server, as in
    :meth:`JellyfishTopology.build`).
    """

    num_instances: int
    num_switches: int
    ports_per_switch: int
    network_degree: int
    servers_per_switch: Optional[int] = None
    method: str = "sequential"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_instances < 0:
            raise ValueError("num_instances must be non-negative")
        if self.network_degree > self.ports_per_switch:
            raise TopologyError(
                "network_degree cannot exceed ports_per_switch "
                f"({self.network_degree} > {self.ports_per_switch})"
            )
        servers = self.resolved_servers_per_switch
        if servers < 0:
            raise TopologyError("servers_per_switch must be non-negative")
        if self.network_degree + servers > self.ports_per_switch:
            raise TopologyError(
                "network_degree + servers_per_switch exceeds ports_per_switch"
            )

    @property
    def resolved_servers_per_switch(self) -> int:
        if self.servers_per_switch is not None:
            return self.servers_per_switch
        return self.ports_per_switch - self.network_degree

    @property
    def effective_degree(self) -> int:
        """Construction degree (one lower when ``N * r`` is odd, as in the paper)."""
        degree = self.network_degree
        if (self.num_switches * degree) % 2 != 0:
            degree -= 1
        return degree

    def instance_seeds(self) -> List[int]:
        """Per-instance construction seeds spawned from the base seed."""
        return spawn_seeds(self.seed, self.num_instances)


def _build_core(spec: EnsembleSpec, instance_seed: int, scratch: dict, ports, servers):
    with trace(
        "ensemble.build_core",
        switches=spec.num_switches,
        degree=spec.effective_degree,
    ):
        return _build_core_inner(spec, instance_seed, scratch, ports, servers)


def _build_core_inner(
    spec: EnsembleSpec, instance_seed: int, scratch: dict, ports, servers
):
    if spec.method == "stubs":
        rows = stub_matching_regular_rows(
            spec.num_switches,
            spec.effective_degree,
            ensure_rng(instance_seed),
            scratch=scratch,
        )
    elif spec.method == "sequential":
        rows = regular_rows(
            spec.num_switches,
            spec.effective_degree,
            ensure_rng(instance_seed),
            method=spec.method,
        )
    else:
        # Ablation methods (pairing, networkx) have no rows-native path;
        # derive the core from the constructed graph, matching what the
        # sharded scenario points (JellyfishTopology.build) produce.
        from repro.graphs.regular import random_regular_graph

        graph = random_regular_graph(
            spec.num_switches,
            spec.effective_degree,
            ensure_rng(instance_seed),
            method=spec.method,
        )
        return TopologyCore.from_graph(
            graph,
            {node: spec.ports_per_switch for node in graph.nodes},
            {node: spec.resolved_servers_per_switch for node in graph.nodes},
        )
    return TopologyCore(range(spec.num_switches), rows, ports, servers)


def single_rrg_core(
    num_switches: int,
    ports_per_switch: int,
    network_degree: int,
    seed: RngLike = None,
    method: str = "stubs",
    servers_per_switch: Optional[int] = None,
) -> TopologyCore:
    """One seeded ``RRG(N, k, r)`` core, built array-natively.

    The single-instance entry point the hyperscale experiments use:
    defaults to the vectorized stub-matching constructor (the only one that
    is practical at 10k-100k switches) and never materializes a
    ``networkx`` graph.  Degree handling (odd ``N * r``) matches
    :class:`EnsembleSpec`.
    """
    spec = EnsembleSpec(
        num_instances=1,
        num_switches=num_switches,
        ports_per_switch=ports_per_switch,
        network_degree=network_degree,
        servers_per_switch=servers_per_switch,
        method=method,
        seed=0,
    )
    ports = [ports_per_switch] * num_switches
    servers = [spec.resolved_servers_per_switch] * num_switches
    rng = ensure_rng(seed)
    return _build_core(spec, rng, {}, ports, servers)


def generate_cores(spec: EnsembleSpec) -> Iterator[Tuple[int, TopologyCore]]:
    """Yield ``(instance_seed, core)`` pairs for every instance in the batch.

    One scratch dict (stub buffers) and one shared read-only ports template
    serve the whole batch; each core gets its own server vector so
    per-instance mutation stays isolated.
    """
    scratch: dict = {}
    ports = [spec.ports_per_switch] * spec.num_switches
    servers = [spec.resolved_servers_per_switch] * spec.num_switches
    for instance_seed in spec.instance_seeds():
        yield instance_seed, _build_core(spec, instance_seed, scratch, ports, servers)


def build_ensemble(spec: EnsembleSpec) -> List[JellyfishTopology]:
    """Materialize the batch as (lazy, core-backed) Jellyfish topologies."""
    return [
        JellyfishTopology.from_core(core, name=f"jellyfish-ens-{index}")
        for index, (_, core) in enumerate(generate_cores(spec))
    ]


def _mean_std(values: List[float]) -> Tuple[float, float]:
    if not values:
        return float("nan"), float("nan")
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return mean, math.sqrt(variance)


def _structural_metrics(topology: JellyfishTopology) -> dict:
    """Per-instance metric dict (shape shared with the scenario target)."""
    connected = topology.is_connected()
    metrics = {
        "content_hash": topology.content_hash(),
        "connected": bool(connected),
        "num_links": topology.num_links,
    }
    if connected and topology.num_switches >= 2:
        metrics["mean_path_length"] = topology.switch_average_path_length()
        metrics["diameter"] = topology.switch_diameter()
    return metrics


def summarize_instance_metrics(metrics: List[dict]) -> dict:
    """Aggregate per-instance structural metrics (JSON-friendly).

    Reports connectivity rate, mean/std of mean path length and diameter
    over the *connected* instances, and the number of distinct content
    hashes (collisions would indicate seed reuse).
    """
    connected = [m for m in metrics if m.get("connected")]
    path_lengths = [m["mean_path_length"] for m in connected if "mean_path_length" in m]
    diameters = [float(m["diameter"]) for m in connected if "diameter" in m]
    mean_path, std_path = _mean_std(path_lengths)
    mean_diameter, std_diameter = _mean_std(diameters)
    return {
        "num_instances": len(metrics),
        "connected_instances": len(connected),
        "distinct_hashes": len({m["content_hash"] for m in metrics}),
        "mean_path_length_mean": mean_path,
        "mean_path_length_std": std_path,
        "diameter_mean": mean_diameter,
        "diameter_std": std_diameter,
    }


def ensemble_summary(spec: EnsembleSpec) -> dict:
    """Structural statistics over the whole batch (serial, shared scratch)."""
    return summarize_instance_metrics(
        [
            _structural_metrics(JellyfishTopology.from_core(core))
            for _, core in generate_cores(spec)
        ]
    )


def ensemble_point_specs(spec: EnsembleSpec) -> list:
    """One :class:`~repro.engine.spec.ScenarioSpec` per instance.

    Each point carries its spawned instance seed explicitly (``shared``
    strategy), so running the specs through a sharded
    :class:`~repro.engine.runner.SweepRunner` computes exactly the
    instances :func:`generate_cores` would build serially -- and caches
    them content-addressed like any other scenario point.
    """
    from repro.engine.spec import ScenarioSpec

    return [
        ScenarioSpec.grid(
            "repro.topologies.ensemble:ensemble_instance_metrics",
            name=f"ensemble-{spec.method}-{spec.num_switches}-{index}",
            seed=instance_seed,
            seed_strategy="shared",
            num_switches=spec.num_switches,
            ports=spec.ports_per_switch,
            network_degree=spec.network_degree,
            servers_per_switch=spec.servers_per_switch,
            method=spec.method,
            instance=index,
        )
        for index, instance_seed in enumerate(spec.instance_seeds())
    ]


# --------------------------------------------------------------------------- #
# Picklable scenario targets (engine sweeps shard these across workers)
# --------------------------------------------------------------------------- #
def ensemble_instance_metrics(
    num_switches: int,
    ports: int,
    network_degree: int,
    instance: int = 0,
    method: str = "sequential",
    servers_per_switch: Optional[int] = None,
    seed: Optional[int] = None,
) -> dict:
    """Structural metrics of one ensemble instance (scenario target).

    ``instance`` is the grid axis that separates the per-point derived
    seeds; the construction itself only consumes ``seed``.
    """
    del instance  # axis only: distinguishes points so derived seeds differ
    topology = JellyfishTopology.build(
        num_switches,
        ports,
        network_degree,
        rng=seed,
        servers_per_switch=servers_per_switch,
        method=method,
    )
    return _structural_metrics(topology)


def ensemble_failure_point(
    num_switches: int,
    ports: int,
    num_servers: int,
    fraction: float,
    instance: int = 0,
    k: int = 8,
    seed: Optional[int] = None,
) -> dict:
    """Mask-based link failure throughput of one instance (scenario target).

    Builds an equipment-constrained Jellyfish, fails ``fraction`` of its
    links through the vectorized mask path (no graph copy, no edge-by-edge
    removal) and evaluates normalized permutation throughput, counting
    disconnected demand pairs as zero like Fig 8 does.
    """
    del instance
    from repro.failures.injection import (
        _throughput_with_disconnections,
        fail_random_links_core,
    )
    from repro.flow.throughput import normalized_throughput

    rng = ensure_rng(seed)
    topology = JellyfishTopology.from_equipment(
        num_switches, ports, num_servers, rng=rng
    )
    failed_core = fail_random_links_core(topology.core(), fraction, rng)
    failed = JellyfishTopology.from_core(
        failed_core, name=f"{topology.name}+{fraction:.0%}-link-failures"
    )
    if failed.is_connected():
        throughput = normalized_throughput(
            failed, engine="path", k=k, rng=rng
        ).normalized
    else:
        throughput = _throughput_with_disconnections(failed, "path", k, rng)
    return {
        "throughput": throughput,
        "connected": bool(failed.is_connected()),
        "failed_links": int(topology.core().num_edges - failed_core.num_edges),
    }


def ensemble_bisection_point(
    num_switches: int,
    ports: int,
    servers: int,
    trials: int = 3,
    instance: int = 0,
    seed: Optional[int] = None,
) -> dict:
    """Measured normalized bisection of one sampled RRG (scenario target).

    Samples the concrete graph behind Fig 2(a)'s analytic curve point and
    measures a Kernighan-Lin bisection estimate, normalized by the server
    bandwidth in one partition -- the ensemble check that the Bollobas
    lower bound used in the figure actually holds per instance.
    """
    del instance
    from repro.graphs.bisection import estimate_bisection_bandwidth

    servers_per_switch = servers / num_switches
    network_degree = ports - math.ceil(servers_per_switch)
    if network_degree <= 0:
        return {"normalized_bisection": 0.0, "network_degree": 0}
    rng = ensure_rng(seed)
    topology = JellyfishTopology.build(
        num_switches,
        ports,
        network_degree,
        rng=rng,
        servers_per_switch=0,
    )
    cut = estimate_bisection_bandwidth(topology.graph, trials=trials, rng=rng)
    return {
        "normalized_bisection": cut / (servers / 2.0),
        "network_degree": network_degree,
    }
