"""Common topology abstraction.

A :class:`Topology` is a switch-level graph plus, for every switch, the
number of ports it has and the number of servers attached to it.  All of the
evaluation machinery (traffic matrices, LP throughput, routing, the fluid
simulator, cabling) operates on this abstraction, so Jellyfish, fat-trees,
small-world data centers and Clos networks are interchangeable everywhere.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.graphs.properties import (
    average_path_length,
    diameter,
    is_connected,
    path_length_cdf,
)


class TopologyError(ValueError):
    """Raised when a topology violates its own port budget or invariants."""


@dataclass(frozen=True)
class EquipmentSummary:
    """Switching equipment used by a topology (the paper's cost unit is ports)."""

    num_switches: int
    total_ports: int
    num_servers: int
    num_links: int

    def as_dict(self) -> dict:
        return {
            "num_switches": self.num_switches,
            "total_ports": self.total_ports,
            "num_servers": self.num_servers,
            "num_links": self.num_links,
        }


class Topology:
    """Switch-level topology with per-switch port budgets and attached servers.

    Parameters
    ----------
    graph:
        Undirected switch interconnection graph.  Node identifiers may be any
        hashable value.
    ports:
        Mapping from switch to its total port count.  Every switch in
        ``graph`` must appear.
    servers:
        Mapping from switch to the number of directly attached servers.
        Switches may be omitted (interpreted as zero servers).
    name:
        Human-readable topology name used in experiment reports.
    """

    def __init__(
        self,
        graph: nx.Graph,
        ports: Dict[Hashable, int],
        servers: Optional[Dict[Hashable, int]] = None,
        name: str = "topology",
    ) -> None:
        self.graph = graph
        self.ports = dict(ports)
        self.servers = {node: 0 for node in graph.nodes}
        if servers:
            for node, count in servers.items():
                if node not in self.servers:
                    raise TopologyError(f"server host {node!r} is not a switch")
                if count < 0:
                    raise TopologyError(f"negative server count on {node!r}")
                self.servers[node] = count
        self.name = name
        self.validate()

    # ------------------------------------------------------------------ #
    # Invariants and accounting
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check that every switch respects its port budget."""
        for node in self.graph.nodes:
            if node not in self.ports:
                raise TopologyError(f"switch {node!r} has no port count")
            used = self.graph.degree(node) + self.servers.get(node, 0)
            if used > self.ports[node]:
                raise TopologyError(
                    f"switch {node!r} uses {used} ports but only has "
                    f"{self.ports[node]}"
                )
        for node in self.ports:
            if node not in self.graph.nodes:
                raise TopologyError(f"port count given for unknown switch {node!r}")

    def free_ports(self, node: Hashable) -> int:
        """Unused ports on ``node`` (ports minus network links minus servers)."""
        return self.ports[node] - self.graph.degree(node) - self.servers.get(node, 0)

    @property
    def num_switches(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self.graph.number_of_edges()

    @property
    def num_servers(self) -> int:
        return sum(self.servers.values())

    @property
    def total_ports(self) -> int:
        return sum(self.ports.values())

    def equipment(self) -> EquipmentSummary:
        """Summary of the switching equipment this topology consumes."""
        return EquipmentSummary(
            num_switches=self.num_switches,
            total_ports=self.total_ports,
            num_servers=self.num_servers,
            num_links=self.num_links,
        )

    def server_hosts(self) -> List[Hashable]:
        """Switches that host at least one server."""
        return [node for node, count in self.servers.items() if count > 0]

    def server_list(self) -> List[Tuple[Hashable, int]]:
        """All servers as (host switch, index-on-switch) pairs."""
        return [
            (node, index)
            for node, count in sorted(self.servers.items(), key=lambda kv: str(kv[0]))
            for index in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Derived graphs and metrics
    # ------------------------------------------------------------------ #
    def host_graph(self) -> nx.Graph:
        """Graph containing both switches and servers (servers as leaf nodes).

        Server nodes are tuples ``("server", switch, index)`` so they never
        collide with switch identifiers.
        """
        combined = self.graph.copy()
        for switch, index in self.server_list():
            server = ("server", switch, index)
            combined.add_edge(server, switch)
        return combined

    def server_nodes(self) -> List[Tuple]:
        """Server node identifiers as used by :meth:`host_graph`."""
        return [("server", switch, index) for switch, index in self.server_list()]

    def is_connected(self) -> bool:
        return is_connected(self.graph)

    def switch_average_path_length(self) -> float:
        return average_path_length(self.graph)

    def switch_diameter(self) -> int:
        return diameter(self.graph)

    def server_path_length_cdf(self) -> Dict[int, float]:
        """CDF of server-to-server path lengths (Fig 1(c))."""
        hosts = self.host_graph()
        return path_length_cdf(hosts, self.server_nodes())

    # ------------------------------------------------------------------ #
    # Mutation helpers
    # ------------------------------------------------------------------ #
    def copy(self) -> "Topology":
        """Deep copy (graph, ports and servers are all copied)."""
        clone = _copy.copy(self)
        clone.graph = self.graph.copy()
        clone.ports = dict(self.ports)
        clone.servers = dict(self.servers)
        return clone

    def remove_links(self, links: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Remove the given switch-to-switch links (used by failure injection)."""
        for u, v in links:
            if self.graph.has_edge(u, v):
                self.graph.remove_edge(u, v)

    def attach_servers(self, switch: Hashable, count: int) -> None:
        """Attach ``count`` additional servers to ``switch`` (port budget permitting)."""
        if count < 0:
            raise TopologyError("count must be non-negative")
        if self.free_ports(switch) < count:
            raise TopologyError(
                f"switch {switch!r} has only {self.free_ports(switch)} free ports, "
                f"cannot attach {count} servers"
            )
        self.servers[switch] = self.servers.get(switch, 0) + count

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"<{type(self).__name__} {self.name!r}: {self.num_switches} switches, "
            f"{self.num_servers} servers, {self.num_links} links>"
        )
