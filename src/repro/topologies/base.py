"""Common topology abstraction.

A :class:`Topology` is a switch-level graph plus, for every switch, the
number of ports it has and the number of servers attached to it.  All of the
evaluation machinery (traffic matrices, LP throughput, routing, the fluid
simulator, cabling) operates on this abstraction, so Jellyfish, fat-trees,
small-world data centers and Clos networks are interchangeable everywhere.

Internally a topology is backed by either a live ``nx.Graph`` (the
historical representation, still the construction path for the structured
baselines) or an array-native :class:`~repro.topologies.core.TopologyCore`
(the path the random-graph constructors and the ensemble generator use).
``Topology.graph`` stays the public API: core-backed topologies materialize
the graph lazily on first access -- with adjacency insertion order
bit-identical to the historical construction, and the core's CSR view
adopted by the new graph so kernels never rebuild adjacency.  Metric
helpers (:meth:`Topology.csr` and everything built on it) work directly on
the CSR bridge, so path statistics never require the ``networkx`` view at
all.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.graphs.csr import CSRGraph, _graph_fingerprint, csr_graph
from repro.graphs.properties import (
    average_path_length_csr,
    csr_is_connected,
    diameter_csr,
    is_connected,
    server_path_length_cdf_csr,
)
from repro.topologies.core import TopologyCore, TopologyError

__all__ = ["EquipmentSummary", "Topology", "TopologyError"]


@dataclass(frozen=True)
class EquipmentSummary:
    """Switching equipment used by a topology (the paper's cost unit is ports)."""

    num_switches: int
    total_ports: int
    num_servers: int
    num_links: int

    def as_dict(self) -> dict:
        return {
            "num_switches": self.num_switches,
            "total_ports": self.total_ports,
            "num_servers": self.num_servers,
            "num_links": self.num_links,
        }


class Topology:
    """Switch-level topology with per-switch port budgets and attached servers.

    Parameters
    ----------
    graph:
        Undirected switch interconnection graph.  Node identifiers may be any
        hashable value.
    ports:
        Mapping from switch to its total port count.  Every switch in
        ``graph`` must appear.
    servers:
        Mapping from switch to the number of directly attached servers.
        Switches may be omitted (interpreted as zero servers).
    name:
        Human-readable topology name used in experiment reports.

    Use :meth:`from_core` to construct array-natively (no ``nx.Graph`` is
    built until something touches :attr:`graph`).
    """

    def __init__(
        self,
        graph: nx.Graph,
        ports: Dict[Hashable, int],
        servers: Optional[Dict[Hashable, int]] = None,
        name: str = "topology",
    ) -> None:
        self.graph = graph
        self.ports = dict(ports)
        self.servers = {node: 0 for node in graph.nodes}
        if servers:
            for node, count in servers.items():
                if node not in self.servers:
                    raise TopologyError(f"server host {node!r} is not a switch")
                if count < 0:
                    raise TopologyError(f"negative server count on {node!r}")
                self.servers[node] = count
        self.name = name
        self.validate()

    # ------------------------------------------------------------------ #
    # Array-native backing
    # ------------------------------------------------------------------ #
    @classmethod
    def from_core(cls, core: TopologyCore, name: str = "topology") -> "Topology":
        """Wrap a :class:`TopologyCore` without materializing a graph.

        The public dict attributes (``ports``/``servers``) are populated
        from the core's vectors; :attr:`graph` materializes lazily on first
        access.  The core is validated once, vectorized.
        """
        topology = cls.__new__(cls)
        topology._graph = None
        topology._core = core
        topology._core_fingerprint = None
        topology.ports = dict(zip(core.labels, core.ports.tolist()))
        topology.servers = dict(zip(core.labels, core.servers.tolist()))
        topology.name = name
        core.validate()
        return topology

    @property
    def graph(self) -> nx.Graph:
        if self._graph is None:
            self._graph = self._core.to_networkx()
            # The freshly materialized graph matches the core exactly;
            # recording its fingerprint keeps core() from rebuilding.
            self._core_fingerprint = _graph_fingerprint(self._graph)
        return self._graph

    @graph.setter
    def graph(self, value: nx.Graph) -> None:
        self._graph = value
        self._core = None
        self._core_fingerprint = None

    @property
    def has_materialized_graph(self) -> bool:
        """True once the ``networkx`` view exists (False for fresh cores)."""
        return self._graph is not None

    def core(self) -> TopologyCore:
        """The array-native core describing the current structure.

        For core-backed topologies this is the backing object.  For
        graph-backed topologies a core is derived from the live graph and
        cached, revalidated against the graph's structural fingerprint so
        in-place mutations (failure injection, expansion) are detected and
        trigger a rebuild rather than returning stale arrays.
        """
        if self._graph is None and self._core is not None:
            return self._core
        fingerprint = _graph_fingerprint(self.graph)
        if self._core is not None and self._core_fingerprint == fingerprint:
            return self._core
        self._core = TopologyCore.from_graph(self.graph, self.ports, self.servers)
        self._core_fingerprint = fingerprint
        return self._core

    def csr(self) -> CSRGraph:
        """CSR view of the switch graph (array bridge; no graph required).

        Core-backed topologies get the core's view; materialized topologies
        go through the fingerprint-revalidated per-graph cache, which the
        core's view seeds at materialization time.
        """
        if self._graph is None and self._core is not None:
            return self._core.csr()
        return csr_graph(self.graph)

    # ------------------------------------------------------------------ #
    # Invariants and accounting
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check that every switch respects its port budget."""
        if self._graph is None and self._core is not None:
            self._core.validate()
            return
        for node in self.graph.nodes:
            if node not in self.ports:
                raise TopologyError(f"switch {node!r} has no port count")
            used = self.graph.degree(node) + self.servers.get(node, 0)
            if used > self.ports[node]:
                raise TopologyError(
                    f"switch {node!r} uses {used} ports but only has "
                    f"{self.ports[node]}"
                )
        for node in self.ports:
            if node not in self.graph.nodes:
                raise TopologyError(f"port count given for unknown switch {node!r}")

    def free_ports(self, node: Hashable) -> int:
        """Unused ports on ``node`` (ports minus network links minus servers)."""
        if self._graph is None and self._core is not None:
            degree = len(self._core.rows[self._core.index_of[node]])
        else:
            degree = self.graph.degree(node)
        return self.ports[node] - degree - self.servers.get(node, 0)

    @property
    def num_switches(self) -> int:
        if self._graph is None and self._core is not None:
            return self._core.num_nodes
        return self.graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        if self._graph is None and self._core is not None:
            return self._core.num_edges
        return self.graph.number_of_edges()

    @property
    def num_servers(self) -> int:
        return sum(self.servers.values())

    @property
    def total_ports(self) -> int:
        return sum(self.ports.values())

    def content_hash(self) -> str:
        """Canonical structural hash (see ``TopologyCore.content_hash``)."""
        return self.core().content_hash

    def equipment(self) -> EquipmentSummary:
        """Summary of the switching equipment this topology consumes."""
        return EquipmentSummary(
            num_switches=self.num_switches,
            total_ports=self.total_ports,
            num_servers=self.num_servers,
            num_links=self.num_links,
        )

    def server_hosts(self) -> List[Hashable]:
        """Switches that host at least one server."""
        return [node for node, count in self.servers.items() if count > 0]

    def server_list(self) -> List[Tuple[Hashable, int]]:
        """All servers as (host switch, index-on-switch) pairs."""
        return [
            (node, index)
            for node, count in sorted(self.servers.items(), key=lambda kv: str(kv[0]))
            for index in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Derived graphs and metrics
    # ------------------------------------------------------------------ #
    def host_graph(self) -> nx.Graph:
        """Graph containing both switches and servers (servers as leaf nodes).

        Server nodes are tuples ``("server", switch, index)`` so they never
        collide with switch identifiers.
        """
        combined = self.graph.copy()
        for switch, index in self.server_list():
            server = ("server", switch, index)
            combined.add_edge(server, switch)
        return combined

    def server_nodes(self) -> List[Tuple]:
        """Server node identifiers as used by :meth:`host_graph`."""
        return [("server", switch, index) for switch, index in self.server_list()]

    def is_connected(self) -> bool:
        if self._graph is None and self._core is not None:
            return csr_is_connected(self.csr())
        return is_connected(self.graph)

    def switch_average_path_length(self) -> float:
        return average_path_length_csr(self.csr())

    def switch_diameter(self) -> int:
        return diameter_csr(self.csr())

    def server_path_length_cdf(self) -> Dict[int, float]:
        """CDF of server-to-server path lengths (Fig 1(c)).

        Computed at the switch level (weighting each switch pair by its
        server pairs) instead of BFS-ing the combined host graph; the
        resulting fractions are bit-identical to the historical host-graph
        path.
        """
        csr = self.csr()
        counts = [self.servers.get(node, 0) for node in csr.nodes]
        return server_path_length_cdf_csr(csr, counts)

    # ------------------------------------------------------------------ #
    # Mutation helpers
    # ------------------------------------------------------------------ #
    def copy(self) -> "Topology":
        """Deep copy (graph or core, ports and servers are all copied).

        Core-backed copies reorder adjacency exactly like ``nx.Graph.copy``
        (see :meth:`TopologyCore.copy_as_graph_copy`), so evaluation on a
        copy tie-breaks identically whichever backing the original had.
        """
        clone = _copy.copy(self)
        if self._graph is None and self._core is not None:
            clone._core = self._core.copy_as_graph_copy()
        else:
            clone.graph = self.graph.copy()
        clone.ports = dict(self.ports)
        clone.servers = dict(self.servers)
        return clone

    def remove_links(self, links: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Remove the given switch-to-switch links (used by failure injection)."""
        graph = self.graph
        self._core = None  # in-place mutation invalidates any derived core
        for u, v in links:
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)

    def attach_servers(self, switch: Hashable, count: int) -> None:
        """Attach ``count`` additional servers to ``switch`` (port budget permitting)."""
        if count < 0:
            raise TopologyError("count must be non-negative")
        if self.free_ports(switch) < count:
            raise TopologyError(
                f"switch {switch!r} has only {self.free_ports(switch)} free ports, "
                f"cannot attach {count} servers"
            )
        self.servers[switch] = self.servers.get(switch, 0) + count
        if self._core is not None:
            self._core.set_servers(
                self._core.index_of[switch], self.servers[switch]
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"<{type(self).__name__} {self.name!r}: {self.num_switches} switches, "
            f"{self.num_servers} servers, {self.num_links} links>"
        )
