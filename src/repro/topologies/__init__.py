"""Data-center topologies: Jellyfish and the baselines it is compared against."""

from repro.topologies.base import Topology, TopologyError
from repro.topologies.clos import LeafSpineTopology
from repro.topologies.core import TopologyCore
from repro.topologies.degree_diameter import (
    hoffman_singleton_graph,
    optimized_low_diameter_graph,
    petersen_graph,
)
from repro.topologies.ensemble import EnsembleSpec, build_ensemble, ensemble_summary
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.topologies.swdc import SmallWorldTopology

__all__ = [
    "Topology",
    "TopologyCore",
    "TopologyError",
    "EnsembleSpec",
    "build_ensemble",
    "ensemble_summary",
    "LeafSpineTopology",
    "FatTreeTopology",
    "JellyfishTopology",
    "SmallWorldTopology",
    "hoffman_singleton_graph",
    "optimized_low_diameter_graph",
    "petersen_graph",
]
