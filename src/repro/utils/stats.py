"""Statistics helpers used by the evaluation harness.

The paper reports averages, minimum/maximum envelopes (Fig 12), percentiles
of path lengths (Section 4.1) and Jain's fairness index (Fig 13).  The
helpers here implement exactly those summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""
    items = list(values)
    if not items:
        raise ValueError("mean() of empty sequence")
    return sum(items) / len(items)


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) via linear interpolation."""
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be within [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def jains_fairness_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2).

    Equals 1.0 when all rates are equal and approaches 1/n when a single
    flow captures all of the bandwidth.  The paper reports ~0.99 for both
    Jellyfish and the fat-tree (Fig 13).
    """
    if not rates:
        raise ValueError("jains_fairness_index() of empty sequence")
    if any(r < 0 for r in rates):
        raise ValueError("rates must be non-negative")
    total = sum(rates)
    if total == 0:
        return 1.0
    square_sum = sum(r * r for r in rates)
    if square_sum == 0:
        # r*r underflows to 0.0 for denormal rates even though their sum is
        # positive; rescaling by the peak keeps the index well defined.
        peak = max(rates)
        scaled = [r / peak for r in rates]
        total = sum(scaled)
        square_sum = sum(r * r for r in scaled)
    return (total * total) / (len(rates) * square_sum)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary used when reporting experiment series."""

    mean: float
    minimum: float
    maximum: float
    p50: float
    p99: float
    count: int

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p99": self.p99,
            "count": self.count,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` for a non-empty sequence of values."""
    if not values:
        raise ValueError("summarize() of empty sequence")
    return Summary(
        mean=mean(values),
        minimum=min(values),
        maximum=max(values),
        p50=percentile(values, 50),
        p99=percentile(values, 99),
        count=len(values),
    )
