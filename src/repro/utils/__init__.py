"""Shared utilities: seeded RNG handling, argument validation, statistics."""

from repro.utils.rng import ensure_rng
from repro.utils.stats import jains_fairness_index, mean, percentile, summarize
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "ensure_rng",
    "jains_fairness_index",
    "mean",
    "percentile",
    "summarize",
    "require_non_negative",
    "require_positive",
]
