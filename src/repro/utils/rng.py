"""Random-number-generator plumbing.

Every stochastic routine in this package accepts an optional ``rng``
argument.  ``ensure_rng`` normalizes the accepted forms (``None``, an integer
seed, or an existing ``random.Random``) into a ``random.Random`` instance so
experiments are reproducible when a seed is supplied and independent when it
is not.
"""

from __future__ import annotations

import random
from typing import Optional, Union

RngLike = Union[None, int, random.Random]


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Return a ``random.Random`` for ``rng``.

    Accepts ``None`` (fresh, OS-seeded generator), an ``int`` seed, or an
    existing ``random.Random`` (returned unchanged so callers can share
    state across composed routines).
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("rng must be None, an int seed, or random.Random")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(
        f"rng must be None, an int seed, or random.Random, got {type(rng).__name__}"
    )


def spawn_seeds(rng: RngLike, count: int) -> list:
    """Derive ``count`` independent integer seeds from ``rng``.

    Useful for running repeated trials whose individual seeds should be
    reproducible given the parent seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    return [parent.randrange(2**63) for _ in range(count)]
