"""Small argument-validation helpers used across the package.

These keep constructor bodies readable and error messages consistent.
"""

from __future__ import annotations

from numbers import Real


def require_positive(value, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a real number > 0."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a real number >= 0."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_integer(value, name: str) -> None:
    """Raise unless ``value`` is an ``int`` (bools rejected)."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")


def require_fraction(value, name: str) -> None:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    require_non_negative(value, name)
    if value > 1:
        raise ValueError(f"{name} must be at most 1, got {value!r}")
