"""Deterministic test harnesses for the scenario engine.

:mod:`repro.testing.chaos` is the fault-injection harness the robustness
suite (``tests/test_runner_faults.py``) and the CI chaos-smoke job use to
prove the sweep engine's recovery paths: worker crashes, hangs, transient
exceptions and torn cache writes, injected on a deterministic schedule via
the ``REPRO_FAULTS`` environment variable so ``multiprocessing`` pool
workers inherit the plan with no extra plumbing.

:mod:`repro.testing.targets` ships tiny scenario targets (importable by
dotted path from worker processes) for exercising the engine without the
cost of real experiments.

See ``docs/robustness.md`` for the fault-plan spec format.
"""

from repro.testing.chaos import (
    FAULTS_ENV,
    ChaosError,
    FaultPlan,
    FaultRule,
    active_plan,
)

__all__ = [
    "FAULTS_ENV",
    "ChaosError",
    "FaultPlan",
    "FaultRule",
    "active_plan",
]
