"""Tiny scenario targets for engine tests (importable from worker processes).

Real experiments cost seconds per point; the robustness suite needs dozens
of points per test, so these targets do trivial, deterministic work.  They
live inside the installed package (not under ``tests/``) so
``resolve_target`` can import them by dotted path in spawned workers.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional


def echo_point(x: int = 0, tag: str = "", seed: Optional[int] = None) -> Dict[str, Any]:
    """Return the inputs verbatim -- the cheapest possible scenario point."""
    return {"x": x, "tag": tag, "seed": seed}


def slow_point(x: int = 0, sleep_s: float = 0.0, seed: Optional[int] = None) -> Dict[str, Any]:
    """Sleep ``sleep_s`` then echo -- a point with a controllable duration."""
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    return {"x": x, "sleep_s": sleep_s, "seed": seed}
