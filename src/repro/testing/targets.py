"""Tiny scenario targets for engine tests (importable from worker processes).

Real experiments cost seconds per point; the robustness suite needs dozens
of points per test, so these targets do trivial, deterministic work.  They
live inside the installed package (not under ``tests/``) so
``resolve_target`` can import them by dotted path in spawned workers.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional


def echo_point(x: int = 0, tag: str = "", seed: Optional[int] = None) -> Dict[str, Any]:
    """Return the inputs verbatim -- the cheapest possible scenario point."""
    return {"x": x, "tag": tag, "seed": seed}


def slow_point(x: int = 0, sleep_s: float = 0.0, seed: Optional[int] = None) -> Dict[str, Any]:
    """Sleep ``sleep_s`` then echo -- a point with a controllable duration."""
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    return {"x": x, "sleep_s": sleep_s, "seed": seed}


def profile_point(
    x: int = 0, num_nodes: int = 1000, seed: Optional[int] = None
) -> Dict[str, Any]:
    """Echo the active execution profile -- the degradation ladder made visible.

    Returns the rung the point actually ran at plus what the profile's
    planners would do to a ``num_nodes``-node exact request, so ladder tests
    can assert rung sequences and bit-identical degraded values without any
    graph work.
    """
    from repro.resources import active_profile

    profile = active_profile()
    return {
        "x": x,
        "seed": seed,
        "level": profile.level,
        "sampled": profile.sampled,
        "planned_sources": profile.plan_sources(num_nodes, None),
        "planned_trials": profile.plan_trials(10),
    }


def hungry_point(
    x: int = 0, mb: float = 96.0, seed: Optional[int] = None
) -> Dict[str, Any]:
    """Allocate ``mb`` megabytes scaled by the active profile's scratch scale.

    Under a tight ``memory_mb`` budget the full-fidelity attempt overruns
    the rlimit (raising ``MemoryError`` -> an ``oom`` fault), while a
    degraded re-dispatch allocates proportionally less and fits -- the
    memory-pressure path of the ladder, end to end, without real kernels.
    """
    from repro.resources import active_profile

    profile = active_profile()
    want = int(mb * 1024 * 1024 * profile.bfs_scratch_scale)
    block = bytearray(want)
    block[::4096] = b"x" * len(block[::4096])  # touch pages so the VSZ is real
    size = len(block)
    del block
    return {"x": x, "seed": seed, "level": profile.level, "allocated": size}
