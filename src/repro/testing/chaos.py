"""Deterministic fault injection for the sweep engine.

The chaos harness turns the failure modes a long sweep actually meets --
OOM-killed workers, hung LP solves, transient exceptions, torn cache writes
-- into *scheduled, reproducible* events, so the supervised runner's
recovery paths (retry, backoff, timeout, quarantine, corruption detection)
can be proven by ordinary tests instead of hoped for.

Activation mirrors the tracer's: the ``REPRO_FAULTS`` environment variable
holds a JSON *fault plan* (or ``@/path/to/plan.json``), checked lazily on
every injection site, so ``multiprocessing`` pool workers -- fork or spawn
-- inherit the plan from the parent's environment with no plumbing.  When
the variable is unset every hook is a cheap no-op.

A plan is ``{"seed": <int>, "faults": [<rule>, ...]}``.  Each rule::

    {"kind": "crash" | "hang" | "error" | "oom" | "torn_write",
     "rate": 1.0,                # injection probability (seeded, per attempt)
     "attempts": [1],            # attempt numbers hit (omit = every attempt)
     "indices": [0, 3],          # executing point's input index (omit = any)
     "hash_prefix": "ab12",      # scenario hash prefix (omit = any)
     "target": "pkg.mod:fn",     # exact target match (omit = any)
     "hang_s": 3600.0,           # "hang" only: how long to sleep
     "exit_code": 17,            # "crash" only: worker exit code
     "signum": 9,                # "crash" only: die by signal instead
     "message": "..."}           # "error" only: exception text

The first matching rule fires.  ``crash`` calls ``os._exit`` (a worker
death the supervisor must detect via its sentinel) -- or, with ``signum``
set, kills itself with that signal (``"signum": 9`` simulates the kernel
OOM killer's SIGKILL; the supervisor classifies the negative exitcode as
a ``signal`` fault).  ``hang`` sleeps past any sane per-point timeout,
``error`` raises :class:`ChaosError` (a transient exception the runner
retries), ``oom`` deterministically allocates until the worker's
``RLIMIT_AS`` budget raises :class:`MemoryError` (so the degradation
ladder is testable without real memory pressure; with no finite soft cap
active it *synthesizes* the ``MemoryError`` rather than racing the real
OOM killer), and ``torn_write`` makes
:class:`~repro.engine.cache.ResultCache` write a truncated entry straight
to its final path -- the corruption the checksum pass must catch later.

Determinism: probabilistic rules draw from
``sha256(seed:kind:scenario_hash:attempt)``, a pure function of the plan
seed and the point's identity -- never from wall clock or scheduling order
-- so the same plan over the same grid injects the same faults whatever
the worker count or completion order.  ``torn_write`` rules are matched by
hash/target only (the cache has no grid index in scope).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Environment variable holding the fault plan (JSON, or ``@<path>``).
FAULTS_ENV = "REPRO_FAULTS"

FAULT_KINDS = ("crash", "hang", "error", "oom", "torn_write")


class ChaosError(RuntimeError):
    """The injected transient exception (``kind: "error"``)."""


def _allocate_until_oom(block_bytes: int = 16 * 1024 * 1024) -> MemoryError:
    """Exhaust the worker's memory budget; returns the ``MemoryError``.

    With a finite ``RLIMIT_AS`` soft cap active (the runner's
    ``memory_mb`` budget), allocates ``block_bytes`` chunks until the cap
    genuinely raises ``MemoryError`` -- the real failure path, end to end.
    Without a cap it *synthesizes* the error instead: allocating unboundedly
    would fight the kernel OOM killer for the whole machine, which is
    exactly what the budget machinery exists to avoid.
    """
    capped = False
    try:
        import resource

        soft, _ = resource.getrlimit(resource.RLIMIT_AS)
        capped = soft != resource.RLIM_INFINITY
    except (ImportError, OSError, ValueError):  # pragma: no cover - non-Unix
        capped = False
    if not capped:
        return MemoryError("injected oom (no RLIMIT_AS cap active)")
    blocks = []
    try:
        while True:
            blocks.append(bytearray(block_bytes))
    except MemoryError:
        count = len(blocks)
        del blocks
        return MemoryError(f"injected oom after {count} x {block_bytes} byte blocks")


def _draw(seed: int, kind: str, scenario_hash: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for probabilistic rules."""
    digest = hashlib.sha256(
        f"{seed}:{kind}:{scenario_hash}:{attempt}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault; see the module docstring for field semantics."""

    kind: str
    rate: float = 1.0
    attempts: Optional[Tuple[int, ...]] = None
    indices: Optional[Tuple[int, ...]] = None
    hash_prefix: Optional[str] = None
    target: Optional[str] = None
    hang_s: float = 3600.0
    exit_code: int = 17
    signum: Optional[int] = None
    message: str = "injected transient fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    def matches(
        self,
        seed: int,
        index: Optional[int],
        scenario_hash: str,
        target: str,
        attempt: int,
    ) -> bool:
        if self.indices is not None and (index is None or index not in self.indices):
            return False
        if self.hash_prefix and not scenario_hash.startswith(self.hash_prefix):
            return False
        if self.target and target != self.target:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.rate < 1.0 and _draw(seed, self.kind, scenario_hash, attempt) >= self.rate:
            return False
        return True

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        known = {
            "kind", "rate", "attempts", "indices", "hash_prefix", "target",
            "hang_s", "exit_code", "signum", "message",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault rule keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = dict(payload)
        for field_name in ("attempts", "indices"):
            if kwargs.get(field_name) is not None:
                kwargs[field_name] = tuple(int(v) for v in kwargs[field_name])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` plan: a seed plus ordered fault rules."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a plan from the env-var value (inline JSON or ``@<path>``)."""
        text = spec.strip()
        if text.startswith("@"):
            text = Path(text[1:]).expanduser().read_text(encoding="utf-8")
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        rules = tuple(
            FaultRule.from_dict(rule) for rule in payload.get("faults", [])
        )
        return cls(seed=int(payload.get("seed", 0)), rules=rules)

    # -- injection sites -------------------------------------------------
    def on_execute(
        self, index: Optional[int], scenario_hash: str, target: str, attempt: int
    ) -> None:
        """Runs in the worker just before a point executes; may not return.

        ``crash`` exits the process, ``hang`` sleeps, ``error`` raises
        :class:`ChaosError`; a non-matching plan returns immediately.
        """
        for rule in self.rules:
            if rule.kind == "torn_write":
                continue
            if not rule.matches(self.seed, index, scenario_hash, target, attempt):
                continue
            if rule.kind == "crash":
                if rule.signum is not None:
                    os.kill(os.getpid(), rule.signum)
                    # A blockable signal may be delivered asynchronously;
                    # give it a beat, then fall back to a plain exit so the
                    # rule always kills the process one way or the other.
                    time.sleep(5.0)
                os._exit(rule.exit_code)
            if rule.kind == "hang":
                time.sleep(rule.hang_s)
                return
            if rule.kind == "oom":
                raise _allocate_until_oom()
            raise ChaosError(
                f"{rule.message} ({scenario_hash[:12]} attempt {attempt})"
            )

    def torn_write(self, scenario_hash: str, target: str) -> bool:
        """Should the cache tear the write for this scenario's entry?"""
        for rule in self.rules:
            if rule.kind != "torn_write":
                continue
            if rule.matches(self.seed, None, scenario_hash, target, attempt=1):
                return True
        return False


# --------------------------------------------------------------------------- #
# Lazy, env-keyed activation (cheap enough for per-point checks)
# --------------------------------------------------------------------------- #
_PLAN_SPEC: Optional[str] = None
_PLAN: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan in ``$REPRO_FAULTS``, or ``None``; re-parsed when it changes.

    The parsed plan is cached keyed on the raw variable value, so the
    fault-free cost per call is one ``os.environ`` lookup and a string
    compare -- negligible against any real scenario point.
    """
    global _PLAN_SPEC, _PLAN
    spec = os.environ.get(FAULTS_ENV) or ""
    if spec != _PLAN_SPEC:
        _PLAN_SPEC = spec
        _PLAN = FaultPlan.parse(spec) if spec else None
    return _PLAN
