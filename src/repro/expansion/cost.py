"""Cost model for network equipment and (re)wiring.

The LEGUP comparison (Fig 7) charges each expansion stage a budget covering
new switches, new cables and rewiring labour.  LEGUP's exact cost constants
are not public, so this model uses the constants the paper itself quotes in
Section 6: roughly $5-6 per metre of cable, ~$200 for an optical
transceiver pair when a run exceeds the 10 m electrical limit, and labour at
about 10% of cabling cost.  Switch prices default to a simple per-port rate.
All constants are configurable so sensitivity studies are easy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_non_negative


@dataclass(frozen=True)
class CostModel:
    """Prices used when planning expansions.

    Attributes
    ----------
    cost_per_port:
        Switch cost is ``cost_per_port * port_count`` (a common first-order
        model: switch prices scale with radix).
    cable_cost_per_meter:
        Material cost of one metre of cable (electrical or optical).
    optical_transceiver_cost:
        Added to every cable longer than ``electrical_cable_limit_m``.
    electrical_cable_limit_m:
        Longest run an electrical cable can cover without repeaters.
    default_cable_length_m:
        Length assumed for a cable when the caller has no layout information.
    labor_fraction:
        Labour charged as a fraction of the cable material cost.
    rewiring_cost_per_cable:
        Cost of moving one existing cable during an expansion.
    """

    cost_per_port: float = 100.0
    cable_cost_per_meter: float = 5.5
    optical_transceiver_cost: float = 200.0
    electrical_cable_limit_m: float = 10.0
    default_cable_length_m: float = 5.0
    labor_fraction: float = 0.10
    rewiring_cost_per_cable: float = 10.0

    def __post_init__(self) -> None:
        for name in (
            "cost_per_port",
            "cable_cost_per_meter",
            "optical_transceiver_cost",
            "electrical_cable_limit_m",
            "default_cable_length_m",
            "labor_fraction",
            "rewiring_cost_per_cable",
        ):
            require_non_negative(getattr(self, name), name)

    # ------------------------------------------------------------------ #
    def switch_cost(self, port_count: int) -> float:
        """Price of one switch with ``port_count`` ports."""
        require_non_negative(port_count, "port_count")
        return self.cost_per_port * port_count

    def cable_cost(self, length_m: float = None) -> float:
        """Price of one installed cable of the given length (material + labour)."""
        if length_m is None:
            length_m = self.default_cable_length_m
        require_non_negative(length_m, "length_m")
        material = self.cable_cost_per_meter * length_m
        if length_m > self.electrical_cable_limit_m:
            material += self.optical_transceiver_cost
        return material * (1.0 + self.labor_fraction)

    def cables_cost(self, count: int, length_m: float = None) -> float:
        """Price of ``count`` cables of identical length."""
        require_non_negative(count, "count")
        return count * self.cable_cost(length_m)

    def rewiring_cost(self, cables_moved: int) -> float:
        """Labour cost of moving existing cables during an expansion."""
        require_non_negative(cables_moved, "cables_moved")
        return cables_moved * self.rewiring_cost_per_cable

    def expansion_cost(
        self,
        new_switch_ports: int,
        new_cables: int,
        cables_moved: int,
        cable_length_m: float = None,
    ) -> float:
        """Total cost of an expansion step."""
        return (
            self.cost_per_port * new_switch_ports
            + self.cables_cost(new_cables, cable_length_m)
            + self.rewiring_cost(cables_moved)
        )
