"""LEGUP-like budgeted Clos expansion planner.

LEGUP (Curtis et al., CoNEXT 2010) upgrades a Clos/fat-tree network under a
budget, buying aggregation capacity and deliberately reserving free ports to
ease later expansion steps.  Neither LEGUP's code nor its topologies are
publicly available, so this module implements a planner with the same
*shape* (see DESIGN.md, substitution 3):

* the network is a rigid leaf-spine Clos: every leaf connects to every spine
  with the same number of links;
* servers are added by buying new leaf switches (a fixed number of servers
  per leaf);
* network capacity is added by buying spine switches -- which requires a new
  cable to *every* leaf and a free uplink port on every leaf;
* a fraction of every leaf's ports is reserved for future spines, paid for
  up front (this is LEGUP's "keep some ports free" strategy);
* each stage spends at most its budget; whatever structure-induced spending
  (cables to every leaf, reserved ports, rewiring) is required comes out of
  the same budget.

The resulting bisection-bandwidth-per-dollar trajectory is compared against
the Jellyfish planner in Fig 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.expansion.cost import CostModel
from repro.topologies.clos import LeafSpineTopology
from repro.utils.validation import require_integer, require_non_negative


@dataclass
class ClosExpansionState:
    """Snapshot of the Clos network after an expansion stage."""

    stage: int
    num_leaves: int
    num_spines: int
    servers_per_leaf: int
    links_per_pair: int
    cumulative_cost: float
    budget_spent_this_stage: float

    @property
    def num_servers(self) -> int:
        return self.num_leaves * self.servers_per_leaf

    @property
    def uplinks_per_leaf(self) -> int:
        return self.num_spines * self.links_per_pair

    def normalized_bisection_bandwidth(self) -> float:
        """Bisection (half the total uplink capacity) over server bandwidth/2.

        For a leaf-spine Clos the worst balanced cut separates half of the
        leaves from the other half and cuts half of the leaf-to-spine
        capacity.
        """
        if self.num_servers == 0:
            return 0.0
        bisection_edges = self.num_leaves * self.uplinks_per_leaf / 2.0
        return bisection_edges / (self.num_servers / 2.0)

    def to_topology(self, leaf_ports: int, spine_ports: int) -> LeafSpineTopology:
        """Materialize the state as a concrete leaf-spine topology."""
        return LeafSpineTopology.build(
            num_leaves=self.num_leaves,
            num_spines=self.num_spines,
            servers_per_leaf=self.servers_per_leaf,
            leaf_ports=leaf_ports,
            spine_ports=spine_ports,
            links_per_pair=self.links_per_pair,
            name=f"clos-stage-{self.stage}",
        )


class ClosExpansionPlanner:
    """Greedy budgeted expansion of a leaf-spine Clos network."""

    def __init__(
        self,
        leaf_ports: int = 24,
        spine_ports: int = 48,
        servers_per_leaf: int = 15,
        reserved_ports_per_leaf: int = 4,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        require_integer(leaf_ports, "leaf_ports")
        require_integer(spine_ports, "spine_ports")
        require_integer(servers_per_leaf, "servers_per_leaf")
        require_integer(reserved_ports_per_leaf, "reserved_ports_per_leaf")
        if servers_per_leaf + reserved_ports_per_leaf >= leaf_ports:
            raise ValueError(
                "leaf ports must exceed servers_per_leaf + reserved_ports_per_leaf"
            )
        self.leaf_ports = leaf_ports
        self.spine_ports = spine_ports
        self.servers_per_leaf = servers_per_leaf
        self.reserved_ports_per_leaf = reserved_ports_per_leaf
        self.cost_model = cost_model or CostModel()

        self.num_leaves = 0
        self.num_spines = 0
        self.links_per_pair = 1
        self.cumulative_cost = 0.0
        self.stage = -1
        self.history: List[ClosExpansionState] = []

    # ------------------------------------------------------------------ #
    def _uplink_ports_available_per_leaf(self) -> int:
        return self.leaf_ports - self.servers_per_leaf - self.reserved_ports_per_leaf

    def _spine_capacity_remaining(self) -> int:
        """How many more leaves the current spines could accept."""
        if self.num_spines == 0:
            return 0
        return self.spine_ports // self.links_per_pair - self.num_leaves

    def _leaf_cost(self) -> float:
        """Cost of one new leaf: the switch, its server cabling and uplinks."""
        switch = self.cost_model.switch_cost(self.leaf_ports)
        server_cables = self.cost_model.cables_cost(self.servers_per_leaf)
        uplink_cables = self.cost_model.cables_cost(
            self.num_spines * self.links_per_pair
        )
        return switch + server_cables + uplink_cables

    def _spine_cost(self) -> float:
        """Cost of one new spine: the switch plus a cable to every leaf."""
        switch = self.cost_model.switch_cost(self.spine_ports)
        cables = self.cost_model.cables_cost(self.num_leaves * self.links_per_pair)
        # The rigid structure forces touching every leaf during installation.
        rewiring = self.cost_model.rewiring_cost(self.num_leaves)
        return switch + cables + rewiring

    # ------------------------------------------------------------------ #
    def expand(self, budget: float, new_servers: int = 0) -> ClosExpansionState:
        """Run one expansion stage.

        Servers are added first (they are the stage's requirement); the
        remaining budget buys spine switches while the Clos structure admits
        them.  Spending never exceeds ``budget``; if the server requirement
        alone exceeds the budget the stage spends what it must and reports
        the overrun in the returned state's cost fields.
        """
        require_non_negative(budget, "budget")
        require_integer(new_servers, "new_servers")
        if new_servers < 0:
            raise ValueError("new_servers must be non-negative")
        self.stage += 1
        spent = 0.0

        # 1. Add the required servers (whole leaves).
        new_leaves = -(-new_servers // self.servers_per_leaf) if new_servers else 0
        for _ in range(new_leaves):
            cost = self._leaf_cost()
            self.num_leaves += 1
            spent += cost

        # 2. Buy spines with the remaining budget while ports allow.
        while True:
            max_uplinks = self._uplink_ports_available_per_leaf()
            if (self.num_spines + 1) * self.links_per_pair > max_uplinks:
                break  # leaves have no free uplink ports: structure is maxed out
            if self.num_leaves * self.links_per_pair > self.spine_ports:
                break  # a new spine could not reach every leaf
            cost = self._spine_cost()
            if spent + cost > budget:
                break
            self.num_spines += 1
            spent += cost

        self.cumulative_cost += spent
        state = ClosExpansionState(
            stage=self.stage,
            num_leaves=self.num_leaves,
            num_spines=self.num_spines,
            servers_per_leaf=self.servers_per_leaf,
            links_per_pair=self.links_per_pair,
            cumulative_cost=self.cumulative_cost,
            budget_spent_this_stage=spent,
        )
        self.history.append(state)
        return state
