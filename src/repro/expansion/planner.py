"""Budgeted Jellyfish expansion planner (the paper's side of Fig 7).

At every stage the planner is given the same budget and the same new-server
requirement as the Clos planner.  It buys top-of-rack switches, attaches the
required servers, and randomly cables every remaining port into the existing
random graph using the paper's link-swap procedure -- paying for the new
switch, the new cables and the cables that have to be moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.expansion.cost import CostModel
from repro.graphs.bisection import estimate_bisection_bandwidth
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_integer, require_non_negative


@dataclass
class JellyfishExpansionState:
    """Snapshot of the Jellyfish network after an expansion stage."""

    stage: int
    num_switches: int
    num_servers: int
    cumulative_cost: float
    budget_spent_this_stage: float
    normalized_bisection: float


class JellyfishExpansionPlanner:
    """Greedy budgeted expansion of a Jellyfish network."""

    def __init__(
        self,
        switch_ports: int = 24,
        servers_per_switch: int = 15,
        cost_model: Optional[CostModel] = None,
        rng: RngLike = None,
        bisection_trials: int = 3,
    ) -> None:
        require_integer(switch_ports, "switch_ports")
        require_integer(servers_per_switch, "servers_per_switch")
        if servers_per_switch >= switch_ports:
            raise ValueError("servers_per_switch must leave ports for the network")
        self.switch_ports = switch_ports
        self.servers_per_switch = servers_per_switch
        self.cost_model = cost_model or CostModel()
        self.rng = ensure_rng(rng)
        self.bisection_trials = bisection_trials

        self.topology: Optional[JellyfishTopology] = None
        self.cumulative_cost = 0.0
        self.stage = -1
        self.history: List[JellyfishExpansionState] = []
        self._next_switch_id = 0

    # ------------------------------------------------------------------ #
    def _switch_addition_cost(self, servers: int) -> float:
        """Cost of buying and cabling in one new ToR switch."""
        network_ports = self.switch_ports - servers
        new_cables = network_ports  # every network port gets a new cable
        cables_moved = network_ports // 2  # each pair of ports splices one link
        return self.cost_model.expansion_cost(
            new_switch_ports=self.switch_ports,
            new_cables=new_cables + servers,
            cables_moved=cables_moved,
        )

    def _add_switch(self, servers: int) -> None:
        switch_id = ("jf", self._next_switch_id)
        self._next_switch_id += 1
        if self.topology is None:
            raise RuntimeError("seed topology missing; call expand() with servers first")
        self.topology.add_switch(
            switch_id, self.switch_ports, servers=servers, rng=self.rng
        )

    def _bootstrap(self, num_switches: int) -> None:
        """Build the initial network from scratch (stage 0).

        The network degree is clamped to ``num_switches - 1`` so very small
        seed networks (fewer racks than spare ports) are still valid; the
        unused ports stay free for later expansion.
        """
        network_degree = min(
            self.switch_ports - self.servers_per_switch, num_switches - 1
        )
        self.topology = JellyfishTopology.build(
            num_switches,
            self.switch_ports,
            network_degree,
            rng=self.rng,
            servers_per_switch=self.servers_per_switch,
            name="jellyfish-expansion",
        )
        self._next_switch_id = num_switches

    # ------------------------------------------------------------------ #
    def expand(self, budget: float, new_servers: int = 0) -> JellyfishExpansionState:
        """Run one expansion stage under ``budget``.

        The required servers are added first (as whole racks); any remaining
        budget buys bare switches that only add network capacity.
        """
        require_non_negative(budget, "budget")
        require_integer(new_servers, "new_servers")
        if new_servers < 0:
            raise ValueError("new_servers must be non-negative")
        self.stage += 1
        spent = 0.0

        racks_needed = (
            -(-new_servers // self.servers_per_switch) if new_servers else 0
        )

        if self.topology is None:
            if racks_needed < 3:
                raise ValueError("the initial stage must add at least three racks")
            self._bootstrap(racks_needed)
            spent += racks_needed * self._switch_addition_cost(self.servers_per_switch)
            racks_needed = 0
        else:
            for _ in range(racks_needed):
                cost = self._switch_addition_cost(self.servers_per_switch)
                self._add_switch(self.servers_per_switch)
                spent += cost

        # Remaining budget buys capacity-only switches (no servers attached).
        while True:
            cost = self._switch_addition_cost(0)
            if spent + cost > budget:
                break
            self._add_switch(0)
            spent += cost

        self.cumulative_cost += spent
        state = JellyfishExpansionState(
            stage=self.stage,
            num_switches=self.topology.num_switches,
            num_servers=self.topology.num_servers,
            cumulative_cost=self.cumulative_cost,
            budget_spent_this_stage=spent,
            normalized_bisection=self.normalized_bisection(),
        )
        self.history.append(state)
        return state

    def normalized_bisection(self) -> float:
        """Kernighan–Lin estimate of the bisection, normalized by server bandwidth."""
        if self.topology is None or self.topology.num_servers == 0:
            return 0.0
        bisection = estimate_bisection_bandwidth(
            self.topology.graph, trials=self.bisection_trials, rng=self.rng
        )
        return bisection / (self.topology.num_servers / 2.0)
