"""Incremental expansion: cost model, Clos (LEGUP-like) and Jellyfish planners."""

from repro.expansion.cost import CostModel
from repro.expansion.legup import ClosExpansionPlanner, ClosExpansionState
from repro.expansion.planner import JellyfishExpansionPlanner, JellyfishExpansionState

__all__ = [
    "CostModel",
    "ClosExpansionPlanner",
    "ClosExpansionState",
    "JellyfishExpansionPlanner",
    "JellyfishExpansionState",
]
