"""Sampled-pair estimators for hyperscale graph metrics.

The exact metric kernels in :mod:`repro.graphs.properties` are all-pairs:
they run one BFS per node and reduce the full ``N x N`` distance matrix.
That is the right tool up to a few thousand switches, but the paper's own
pitch — and ROADMAP item 1 — is warehouse scale, where ``N^2`` distances
(40 GB of rows at N=100k) are neither storable nor needed.  Deployed-scale
evaluations of random graphs (AWS's *RNG: Flat Datacenter Networks at
Scale*; Jyothi et al., *High Throughput Data Center Topology Design*)
estimate the same quantities from sampled pairs; this module does the same
on top of the streaming CSR kernels:

* :func:`sampled_path_length_stats` samples source nodes uniformly without
  replacement and streams their full BFS rows through
  :meth:`~repro.graphs.csr.CSRGraph.iter_hop_distance_blocks`, so memory
  stays bounded by the BFS scratch budget.  Because every source
  contributes its complete row, the per-source mean path length is an
  unbiased cluster sample of the pair mean, and the confidence interval
  comes from the between-source variance (with a finite-population
  correction).  Sampling all sources reproduces the exact kernels
  bit-for-bit — the parity the test suite pins.
* :func:`sampled_bisection_stats` evaluates random balanced partitions
  vectorized over the CSR edge arrays (O(E) per trial).  The minimum cut
  observed is an upper bound on the bisection width (the quantity
  Kernighan–Lin approaches at small N); the mean cut concentrates on the
  closed-form expectation ``E * N / (2 * (N - 1))``, which the recorded
  confidence interval is pinned against.
* :func:`throughput_upper_bound` is the capacity/path-length bound of
  Jyothi et al.: aggregate throughput cannot exceed total link capacity
  divided by (flows x mean path length).  Feeding it the sampled mean path
  length gives the scalable stand-in for the LP throughput harness.

Every estimator is a pure function of ``(graph structure, seed)``: the
sample is drawn from ``numpy.random.default_rng(seed)``, so results are
reproducible and cache cleanly through the scenario engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.resources import active_profile
from repro.telemetry import trace


def _z_score(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


@dataclass(frozen=True)
class SampledPathStats:
    """Path-length estimates from a source sample (see module docstring).

    ``mean`` estimates the mean shortest-path length over distinct
    reachable pairs; ``[ci_low, ci_high]`` is the ``confidence``-level
    normal interval from the between-source variance.  ``exact`` is True
    when every node was sampled, in which case ``mean`` equals
    :func:`repro.graphs.properties.average_path_length_csr` bit-for-bit
    and the interval collapses to the point.  ``diameter_lower_bound`` is
    the largest distance observed (equal to the diameter when exact);
    ``histogram`` counts sampled *ordered* pairs per hop count.
    """

    num_nodes: int
    num_sources: int
    num_pairs: int
    exact: bool
    mean: float
    std_error: float
    ci_low: float
    ci_high: float
    confidence: float
    diameter_lower_bound: int
    unreachable_pairs: int
    histogram: Dict[int, int]

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def cdf(self) -> Dict[int, float]:
        """Cumulative fraction of sampled pairs within each hop count."""
        total = sum(self.histogram.values())
        if total == 0:
            raise ValueError("no reachable sampled pairs")
        cdf: Dict[int, float] = {}
        running = 0
        for hops in sorted(self.histogram):
            running += self.histogram[hops]
            cdf[hops] = running / total
        return cdf


def sampled_path_length_stats(
    csr: CSRGraph,
    num_sources: Optional[int] = None,
    seed: int = 0,
    confidence: float = 0.95,
    scratch_bytes: Optional[int] = None,
) -> SampledPathStats:
    """Estimate path-length statistics from a uniform source sample.

    ``num_sources`` of ``None`` (or anything >= the node count) runs every
    source — the exact regime.  Distance rows are streamed in scratch-budget
    blocks and reduced on the fly, so this never materializes more than one
    block of the distance matrix regardless of ``N``.

    The estimator targets connected graphs (every RRG this repo evaluates);
    on a disconnected graph each source averages over the pairs it can
    reach and ``unreachable_pairs`` counts what was skipped.

    The active execution profile (degradation ladder, see
    :mod:`repro.resources`) re-plans ``num_sources`` deterministically:
    deep rungs demote exact requests to a minority sample and shrink
    sampled requests, so a degraded re-dispatch genuinely costs less.  The
    returned ``num_sources`` records what actually ran.
    """
    n = csr.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes to sample pairs")
    num_sources = active_profile().plan_sources(n, num_sources)
    z = _z_score(confidence)
    exact = num_sources is None or num_sources >= n
    if exact:
        sources = None
        m = n
    else:
        if num_sources < 1:
            raise ValueError("num_sources must be positive")
        m = int(num_sources)
        rng = np.random.default_rng(seed)
        sources = np.sort(rng.choice(n, size=m, replace=False))

    hist = np.zeros(1, dtype=np.int64)
    source_means = []
    max_hops = 0
    unreachable = 0
    with trace("sampling.path_stats", nodes=n, sources=m) as span:
        for _, block in csr.iter_hop_distance_blocks(sources, scratch_bytes):
            positive = block > 0
            sums = np.where(positive, block, 0).sum(axis=1, dtype=np.int64)
            counts = positive.sum(axis=1)
            unreachable += int((block < 0).sum())
            reached = counts > 0
            source_means.extend((sums[reached] / counts[reached]).tolist())
            flat = block[positive]
            if flat.size:
                block_hist = np.bincount(flat)
                if len(block_hist) > len(hist):
                    block_hist[: len(hist)] += hist
                    hist = block_hist
                else:
                    hist[: len(block_hist)] += block_hist
                max_hops = max(max_hops, len(block_hist) - 1)
        span.add(sampled_pairs=int(hist.sum()), unreachable_pairs=unreachable)

    num_pairs = int(hist.sum())
    if num_pairs == 0:
        raise ValueError("no sampled source reaches any other node")
    if exact:
        # Reduce from the integer histogram exactly like
        # average_path_length_csr does (the ordered histogram is 2x the
        # unordered one, so the ratio is bit-identical).
        weighted = sum(hops * int(count) for hops, count in enumerate(hist.tolist()))
        mean = weighted / num_pairs
        std_error = 0.0
    else:
        means = np.asarray(source_means, dtype=np.float64)
        mean = float(means.mean())
        if len(means) > 1:
            # Cluster (between-source) variance with finite-population
            # correction: sampling all sources must shrink the interval to 0.
            variance = float(means.var(ddof=1))
            fpc = (n - len(means)) / (n - 1)
            std_error = float(np.sqrt(variance / len(means) * fpc))
        else:
            std_error = float("inf")
    halfwidth = z * std_error
    return SampledPathStats(
        num_nodes=n,
        num_sources=m,
        num_pairs=num_pairs,
        exact=exact,
        mean=float(mean),
        std_error=std_error,
        ci_low=float(mean - halfwidth),
        ci_high=float(mean + halfwidth),
        confidence=confidence,
        diameter_lower_bound=max_hops,
        unreachable_pairs=unreachable,
        histogram={
            hops: int(count)
            for hops, count in enumerate(hist.tolist())
            if count and hops > 0
        },
    )


@dataclass(frozen=True)
class SampledCutStats:
    """Random balanced-cut statistics (see :func:`sampled_bisection_stats`).

    ``min_cut`` is the smallest cut over the trials — an upper bound on the
    true bisection width.  ``mean_cut`` with ``[ci_low, ci_high]`` is the
    sample mean of the trial cuts; for a uniform balanced partition its
    expectation has the closed form ``expected_cut = E * ceil(N/2) *
    floor(N/2) / (N * (N-1) / 2) / ... `` reduced below, which the parity
    tests require the interval to cover.
    """

    num_nodes: int
    num_edges: int
    trials: int
    mean_cut: float
    std_error: float
    ci_low: float
    ci_high: float
    confidence: float
    min_cut: int
    expected_cut: float


def expected_balanced_cut(num_nodes: int, num_edges: int) -> float:
    """Expected edges cut by a uniformly random balanced partition.

    For a partition into halves of ``ceil(N/2)`` and ``floor(N/2)`` nodes,
    an edge's endpoints land on opposite sides with probability
    ``2 * ceil(N/2) * floor(N/2) / (N * (N-1))``; linearity of expectation
    gives the cut.  This is the exact value the sampled mean concentrates
    on, used to parity-pin :func:`sampled_bisection_stats` at small N.
    """
    if num_nodes < 2:
        return 0.0
    half_hi = (num_nodes + 1) // 2
    half_lo = num_nodes // 2
    probability = 2.0 * half_hi * half_lo / (num_nodes * (num_nodes - 1))
    return num_edges * probability


def sampled_bisection_stats(
    csr: CSRGraph,
    trials: int = 9,
    seed: int = 0,
    confidence: float = 0.95,
) -> SampledCutStats:
    """Cut statistics of ``trials`` random balanced partitions.

    Each trial draws a uniformly random balanced partition (via one
    permutation) and counts crossing edges with one vectorized comparison
    over the directed CSR edge arrays — O(E) per trial, no N x N anything —
    so it runs at 100k switches in seconds.  Replaces the Kernighan–Lin
    search (quadratic-ish per pass) in the hyperscale regime; at small N
    the two are cross-checked by the test suite.

    The active execution profile may deterministically shrink ``trials``
    (degradation-ladder rung 3 halves it, floor 1); the returned ``trials``
    records what actually ran.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    trials = active_profile().plan_trials(trials)
    n = csr.num_nodes
    if n < 2 or len(csr.indices) == 0:
        zero = 0.0
        return SampledCutStats(
            num_nodes=n,
            num_edges=csr.num_edges,
            trials=trials,
            mean_cut=zero,
            std_error=0.0,
            ci_low=zero,
            ci_high=zero,
            confidence=confidence,
            min_cut=0,
            expected_cut=0.0,
        )
    z = _z_score(confidence)
    rng = np.random.default_rng(seed)
    heads = csr.edge_sources()
    tails = csr.indices
    half = (n + 1) // 2
    cuts = np.empty(trials, dtype=np.int64)
    with trace("sampling.bisection", nodes=n, trials=trials):
        for trial in range(trials):
            side = np.zeros(n, dtype=bool)
            side[rng.permutation(n)[:half]] = True
            cuts[trial] = np.count_nonzero(side[heads] != side[tails]) // 2
    mean = float(cuts.mean())
    if trials > 1:
        std_error = float(cuts.std(ddof=1) / np.sqrt(trials))
    else:
        std_error = 0.0
    halfwidth = z * std_error
    return SampledCutStats(
        num_nodes=n,
        num_edges=csr.num_edges,
        trials=trials,
        mean_cut=mean,
        std_error=std_error,
        ci_low=mean - halfwidth,
        ci_high=mean + halfwidth,
        confidence=confidence,
        min_cut=int(cuts.min()),
        expected_cut=expected_balanced_cut(n, csr.num_edges),
    )


def throughput_upper_bound(
    num_links: int,
    num_flows: int,
    mean_path_length: float,
    capacity: float = 1.0,
) -> float:
    """Per-flow throughput upper bound from capacity over path length.

    Jyothi et al. (*High Throughput Data Center Topology Design*): total
    flow throughput is at most ``num_links * capacity / mean_path_length``
    because every unit of flow consumes ``mean_path_length`` units of link
    capacity on average; dividing by the flow count bounds the uniform
    per-flow rate.  Survives sampling: any mean-path-length estimate slots
    in, and the CI maps through monotonically (higher path length, lower
    bound).
    """
    if num_links < 0 or num_flows <= 0:
        raise ValueError("need non-negative links and positive flows")
    if mean_path_length <= 0:
        raise ValueError("mean_path_length must be positive")
    return num_links * capacity / (num_flows * mean_path_length)


def sampled_throughput_bound(
    csr: CSRGraph,
    num_flows: int,
    path_stats: SampledPathStats,
    capacity: float = 1.0,
) -> Tuple[float, float, float]:
    """``(bound, bound_low, bound_high)`` from sampled path statistics.

    The bound is anti-monotone in the mean path length, so the interval
    endpoints swap: the low bound comes from ``ci_high`` and vice versa.
    """
    bound = throughput_upper_bound(csr.num_edges, num_flows, path_stats.mean, capacity)
    high = throughput_upper_bound(
        csr.num_edges, num_flows, max(path_stats.ci_low, 1e-12), capacity
    )
    low = throughput_upper_bound(csr.num_edges, num_flows, path_stats.ci_high, capacity)
    return bound, low, high
