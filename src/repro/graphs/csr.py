"""Array-native graph kernels: CSR adjacency, batched BFS, CSR-native Yen.

Every figure in the paper reduces to two primitives — all-pairs hop
distances (Figs 1c and 5) and k-shortest-path enumeration (Table 1, Fig 9).
This module provides both as kernels over an immutable compressed-sparse-row
(:class:`CSRGraph`) view of a ``networkx`` graph:

* :func:`csr_graph` builds (and weakly caches) a :class:`CSRGraph` per
  ``nx.Graph`` object, revalidated against an order-insensitive structural
  fingerprint so in-place mutations (including edge-count-preserving
  rewires) are detected.
* :meth:`CSRGraph.hop_distance_matrix` / :func:`batched_hop_distances` run a
  frontier-synchronous multi-source BFS where the per-source frontier and
  visited sets are bit-packed into ``uint64`` words, so one numpy pass over
  the edge array advances BFS for 64 sources at once.
* :func:`k_shortest_path_indices` is Yen's algorithm over the CSR arrays:
  integer node ids, stamped visited/parent scratch arrays reused across spur
  computations, and integer edge keys instead of per-spur tuple sets.

Neighbor order within each CSR row preserves the ``networkx`` adjacency
(insertion) order, so BFS parent trees — and therefore every tie broken by
discovery order — match the historical pure-Python implementations exactly.
Node *indices* are assigned in sorted node order whenever the node set is
orderable, which makes index-tuple comparisons equivalent to native
node-tuple comparisons for deterministic tie-breaking.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import sys
import weakref
from collections import OrderedDict
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.resources import active_profile
from repro.telemetry import count, trace

IndexPath = Tuple[int, ...]

#: Hard cap on the number of bit-planes per BFS chunk.  The effective chunk
#: is the smaller of this and what the scratch budget allows
#: (:func:`bfs_source_chunk`); 4096 sources over a 3200-switch fig05 graph
#: stays under ~60 MB of transient arrays, while a 100k-switch hyperscale
#: graph drops to a few hundred sources per chunk under the default budget.
_BFS_SOURCE_CHUNK = 4096

#: Default scratch budget for one BFS chunk's transient arrays (the
#: ``(edges+1) x words`` gather plus frontier/visited bit-planes and the
#: chunk's distance rows).  Override per call via ``scratch_bytes`` or
#: globally with ``REPRO_BFS_SCRATCH_MB``.
DEFAULT_BFS_SCRATCH_BYTES = 256 * 1024 * 1024


def _env_mb(name: str, default_bytes: int) -> int:
    """Resolve an ``<NAME>``-in-megabytes env override to bytes."""
    raw = os.environ.get(name)
    if not raw:
        return default_bytes
    try:
        return max(1, int(float(raw) * 1024 * 1024))
    except ValueError:
        return default_bytes


def default_bfs_scratch_bytes() -> int:
    """The active BFS scratch budget (env-overridable, read per call).

    The active :class:`~repro.resources.ExecutionProfile` scales the result
    (degradation-ladder rungs halve the scratch budget), so a degraded
    re-dispatch genuinely allocates less transient memory per BFS chunk.
    """
    profile = active_profile()
    budget = _env_mb("REPRO_BFS_SCRATCH_MB", DEFAULT_BFS_SCRATCH_BYTES)
    return profile.scale_bytes(budget, profile.bfs_scratch_scale)


def bfs_source_chunk(
    num_nodes: int, num_directed_edges: int, scratch_bytes: Optional[int] = None
) -> int:
    """Sources per BFS chunk so transient arrays fit the scratch budget.

    One 64-source bit-plane word costs ``8 * (E + 1)`` bytes of gather
    table, ``2 * 8 * N`` bytes of frontier/visited planes, and ``64 * 4 * N``
    bytes of output distance rows.  The chunk is the largest multiple of 64
    whose total stays within the budget, floored at 64 sources (one word is
    the minimum the bit-parallel kernel can run with) and capped at the
    historical ``4096``.
    """
    budget = scratch_bytes if scratch_bytes is not None else default_bfs_scratch_bytes()
    per_word = 8 * (num_directed_edges + 1) + 16 * max(num_nodes, 1) + 256 * max(num_nodes, 1)
    words = max(1, int(budget) // per_word)
    return int(min(_BFS_SOURCE_CHUNK, words * 64))


#: Largest index representable without promoting CSR arrays to ``int64``.
_INT32_LIMIT = np.iinfo(np.int32).max


def index_dtype(num_nodes: int, num_directed_edges: int) -> np.dtype:
    """The narrowest index dtype safe for a CSR of this size.

    ``indptr`` stores directed-edge offsets (up to ``num_directed_edges``)
    and ``indices`` stores node ids (up to ``num_nodes - 1``); both arrays
    share one dtype so kernels never mix widths.  Beyond ``int32`` range the
    arrays promote to ``int64`` instead of silently wrapping.
    """
    if max(num_nodes, num_directed_edges) > _INT32_LIMIT:
        return np.dtype(np.int64)
    return np.dtype(np.int32)

#: Size guards for the per-graph memos, mirroring the intent of
#: ``ALL_PAIRS_MEMO_NODE_LIMIT`` in :mod:`repro.graphs.properties`: an
#: all-pairs k-shortest-path sweep over a fig05-scale graph must not retain
#: the whole result set for the graph's lifetime.  Hitting a cap evicts the
#: cache wholesale (generation-style), which keeps the steady-state regimes
#: — repeated queries over a bounded working set — fully cached.
_RESULT_CACHE_MAX_ENTRIES = 65536
_PARENT_TREE_CACHE_MAX = 256

#: Stand-in hash for node ``-1`` (CPython hashes -1 and -2 identically).
_MINUS_ONE_SURROGATE = 0x2545F4914F6CDD1D

#: Per-source distance rows are memoized only for graphs at most this
#: large; beyond it the all-pairs table would dominate memory (paper-scale
#: fig05 builds 3200-switch graphs).  Re-exported by
#: :mod:`repro.graphs.properties` as ``ALL_PAIRS_MEMO_NODE_LIMIT``.
DIST_ROW_MEMO_NODE_LIMIT = 1500

#: Byte budget for the global distance-row memo (env ``REPRO_DIST_MEMO_MB``).
DEFAULT_DIST_MEMO_BYTES = 64 * 1024 * 1024


class _DistanceRowMemo:
    """Content-hash-keyed LRU of memoized BFS distance rows.

    Keys are ``(csr.content_hash, source_index)``, so structurally equal
    graphs — and successive CSR views of the same mutating graph — share
    rows, while any structural change produces fresh keys and the stale
    entries age out.  The memo is bounded by a byte budget: storing past it
    evicts least-recently-used rows (surfaced via
    :func:`distance_memo_stats` and the ``memo.dist_row_evictions``
    telemetry counter), so a week-long sweep over thousands of topologies
    can no longer grow the memo without limit.
    """

    __slots__ = ("entries", "bytes", "budget_bytes", "hits", "misses", "evictions")

    def __init__(self, budget_bytes: int) -> None:
        self.entries: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        self.bytes = 0
        self.budget_bytes = budget_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple[str, int]) -> Optional[np.ndarray]:
        row = self.entries.get(key)
        if row is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return row

    def effective_budget(self) -> int:
        """The byte budget scaled by the active execution profile."""
        profile = active_profile()
        return profile.scale_bytes(self.budget_bytes, profile.dist_memo_scale)

    def store(self, key: Tuple[str, int], row: np.ndarray) -> None:
        budget = self.effective_budget()
        if row.nbytes > budget or key in self.entries:
            return
        self.entries[key] = row
        self.bytes += row.nbytes
        evicted = 0
        while self.bytes > budget:
            _, dropped = self.entries.popitem(last=False)
            self.bytes -= dropped.nbytes
            evicted += 1
        if evicted:
            self.evictions += evicted
            count("memo.dist_row_evictions", evicted)

    def clear(self) -> None:
        self.entries.clear()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, int]:
        return {
            "rows": len(self.entries),
            "bytes": self.bytes,
            "budget_bytes": self.budget_bytes,
            "effective_budget_bytes": self.effective_budget(),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_DIST_ROW_MEMO = _DistanceRowMemo(_env_mb("REPRO_DIST_MEMO_MB", DEFAULT_DIST_MEMO_BYTES))


def dist_row_memo_get(content_hash: str, source: int) -> Optional[np.ndarray]:
    """Look up a memoized distance row by graph content hash and source."""
    return _DIST_ROW_MEMO.get((content_hash, source))


def dist_row_memo_store(content_hash: str, source: int, row: np.ndarray) -> None:
    """Store a distance row in the bounded global memo (LRU-evicting)."""
    _DIST_ROW_MEMO.store((content_hash, source), row)


def distance_memo_stats() -> Dict[str, int]:
    """Occupancy and hit/miss/eviction counters of the distance-row memo."""
    return _DIST_ROW_MEMO.stats()


def _graph_fingerprint(graph: nx.Graph) -> Tuple[int, int, int, int]:
    """Cheap, exact-in-practice structural fingerprint of an ``nx.Graph``.

    Order- and orientation-insensitive: a commutative hash over node hashes
    and two per-node neighbor terms — one bilinear (node hash times
    neighbor-hash sum), one nonlinear (node hash times the square of that
    sum) — accumulated in one pass over the adjacency dicts with the inner
    loops in C, unlike the frozenset-of-frozensets signature it replaces.

    The check is probabilistic, not exact: it distinguishes every single
    edge swap and, thanks to the nonlinear term, generic degree-preserving
    double swaps (a bilinear form alone cancels on those), but a contrived
    combination of node hash values can still collide.  Realistic mutations
    in this codebase (failure injection works on copies, expansion changes
    the node count) sit far from that surface.
    """
    adjacency = graph._adj
    node_acc = 0
    edge_acc = 0
    directed_degree = 0
    hash_ = hash
    sum_ = sum
    map_ = map
    if -1 in adjacency:
        # hash(-1) == hash(-2) in CPython, the one systematic collision a
        # commutative hash cannot see through; remap -1 to a surrogate so
        # rewires swapping -1 and -2 endpoints still change the fingerprint.
        def hash_(node, _h=hash):
            return _MINUS_ONE_SURROGATE if node == -1 else _h(node)

    square_acc = 0
    for u, neighbors in adjacency.items():
        hu = hash_(u) * 3 + 1
        node_acc ^= hu
        degree = len(neighbors)
        directed_degree += degree
        row_sum = 3 * sum_(map_(hash_, neighbors)) + degree
        edge_acc += hu * row_sum
        square_acc += hu * row_sum * row_sum
    return (
        len(adjacency),
        directed_degree,
        node_acc & 0xFFFFFFFFFFFFFFFF,
        (edge_acc ^ (square_acc * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF,
    )


class CSRGraph:
    """Immutable CSR view of an undirected ``nx.Graph``.

    ``indptr``/``indices`` are ``int32`` arrays storing both directions of
    every edge; ``nodes[i]`` maps index ``i`` back to the native node and
    ``index_of`` is the inverse.  ``content_hash`` is a stable
    (cross-process) SHA-1 identity of the node labels and adjacency
    structure — computed lazily on first access and cached for the view's
    lifetime, for callers that need a durable structural key (e.g. result
    stores or bench snapshots) without rehashing the edge set per use.
    """

    __slots__ = (
        "indptr",
        "indices",
        "nodes",
        "index_of",
        "num_nodes",
        "num_edges",
        "_content_hash",
        "fingerprint",
        "_adj_lists",
        "_edge_src",
        "_parent_trees",
        "result_cache",
        "_seen",
        "_parent",
        "_stamp",
        "__weakref__",
    )

    def __init__(self, graph: nx.Graph, fingerprint=None):
        try:
            nodes = sorted(graph.nodes)
        except TypeError:  # mixed unorderable node types: keep insertion order
            nodes = list(graph.nodes)
        index_of: Dict[Hashable, int] = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        dtype = index_dtype(n, 2 * graph.number_of_edges())
        indptr = np.zeros(n + 1, dtype=dtype)
        flat: List[int] = []
        adjacency = graph.adj
        for i, node in enumerate(nodes):
            row = [index_of[neighbor] for neighbor in adjacency[node]]
            flat.extend(row)
            indptr[i + 1] = indptr[i] + len(row)
        self.indptr = indptr
        self.indices = np.asarray(flat, dtype=dtype)
        self.nodes = nodes
        self.index_of = index_of
        self.num_nodes = n
        self.num_edges = graph.number_of_edges()
        self.fingerprint = (
            fingerprint if fingerprint is not None else _graph_fingerprint(graph)
        )
        self._content_hash: Optional[str] = None
        self._init_caches()

    def _init_caches(self) -> None:
        self._adj_lists: Optional[List[List[int]]] = None
        self._edge_src: Optional[np.ndarray] = None
        self._parent_trees: Dict[int, List[int]] = {}
        # Routing modules memoize query results here via store_result (e.g.
        # ("ksp", s, t, k)).  The cache lives and dies with this CSR view,
        # so any graph mutation — which forces a rebuild via the
        # fingerprint — drops it wholesale.
        self.result_cache: Dict = {}
        # Yen/BFS scratch arrays (lazy): visited stamps and parent pointers.
        self._seen: Optional[List[int]] = None
        self._parent: Optional[List[int]] = None
        self._stamp = 0

    @classmethod
    def from_arrays(
        cls,
        nodes: List[Hashable],
        index_of: Dict[Hashable, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        fingerprint=None,
    ) -> "CSRGraph":
        """Build a view directly from CSR arrays, with no ``nx.Graph``.

        The zero-copy bridge from :class:`repro.topologies.core.TopologyCore`:
        callers hand over ownership of ``nodes``/``indptr``/``indices`` (they
        are not copied).  ``nodes`` must already follow this class's node
        ordering contract (sorted when orderable, insertion order otherwise)
        and ``indices`` must preserve per-row adjacency insertion order so
        tie-breaking matches a graph-built view.  ``fingerprint`` may be
        ``None`` for views that are never registered in the per-graph cache;
        :func:`adopt_csr_view` fills it in when a materialized graph adopts
        the view.

        The arrays are validated against silent ``int32`` overflow: both are
        promoted to the dtype :func:`index_dtype` selects for the edge
        count, and an ``indptr`` whose final offset disagrees with
        ``len(indices)`` — the signature of a wrapped 32-bit cumulative sum
        in the builder — raises ``ValueError`` instead of producing a view
        that would index garbage.
        """
        view = cls.__new__(cls)
        indices = np.asarray(indices)
        dtype = index_dtype(len(nodes), len(indices))
        view.indptr = np.asarray(indptr, dtype=dtype)
        view.indices = np.asarray(indices, dtype=dtype)
        view.nodes = nodes
        view.index_of = index_of
        view.num_nodes = len(nodes)
        view.num_edges = len(view.indices) // 2
        if view.indptr.shape != (view.num_nodes + 1,):
            raise ValueError(
                f"indptr length {view.indptr.shape[0]} does not match "
                f"{view.num_nodes} nodes"
            )
        if view.num_nodes and int(view.indptr[-1]) != len(view.indices):
            raise ValueError(
                f"indptr[-1] = {int(view.indptr[-1])} does not match "
                f"{len(view.indices)} adjacency entries (int32 overflow in "
                "the builder?)"
            )
        view.fingerprint = fingerprint
        view._content_hash = None
        view._init_caches()
        return view

    @property
    def content_hash(self) -> str:
        """Stable SHA-1 of node labels + adjacency (lazily computed)."""
        if self._content_hash is None:
            digest = hashlib.sha1()
            digest.update("\x1f".join(repr(node) for node in self.nodes).encode())
            digest.update(self.indptr.tobytes())
            digest.update(self.indices.tobytes())
            self._content_hash = digest.hexdigest()
        return self._content_hash

    def store_result(self, key, value) -> None:
        """Memoize a routing query result, evicting wholesale at the cap."""
        if len(self.result_cache) >= _RESULT_CACHE_MAX_ENTRIES:
            self.result_cache.clear()
        self.result_cache[key] = value

    def adj_lists(self) -> List[List[int]]:
        """Adjacency as plain Python int lists (fastest for scalar BFS loops)."""
        if self._adj_lists is None:
            indices = self.indices.tolist()
            indptr = self.indptr.tolist()
            self._adj_lists = [
                indices[indptr[i] : indptr[i + 1]] for i in range(self.num_nodes)
            ]
        return self._adj_lists

    def edge_sources(self) -> np.ndarray:
        """Source index of every directed CSR edge (``np.repeat`` of rows)."""
        if self._edge_src is None:
            degrees = np.diff(self.indptr)
            self._edge_src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int32), degrees
            )
        return self._edge_src

    def hop_distance_matrix(
        self,
        source_indices: Optional[Sequence[int]] = None,
        scratch_bytes: Optional[int] = None,
    ) -> np.ndarray:
        """Hop distances from each source index to every node.

        Returns an ``int32`` array of shape ``(len(sources), num_nodes)``
        with ``-1`` for unreachable nodes; column ``i`` is ``self.nodes[i]``.
        Sources are processed in chunks sized by :func:`bfs_source_chunk`
        so the transient gather table respects ``scratch_bytes`` (default:
        the global budget); the chunking is invisible in the output.  For
        memory-bounded streaming over huge graphs — where even the output
        matrix would not fit — use :meth:`iter_hop_distance_blocks`.
        """
        if source_indices is None:
            source_indices = range(self.num_nodes)
        sources = np.asarray(list(source_indices), dtype=np.int64)
        dist = np.full((len(sources), self.num_nodes), -1, dtype=np.int32)
        chunk_size = bfs_source_chunk(self.num_nodes, len(self.indices), scratch_bytes)
        with trace(
            "bfs.batch", sources=len(sources), nodes=self.num_nodes
        ) as span:
            sweeps = 0
            for start in range(0, len(sources), chunk_size):
                chunk = sources[start : start + chunk_size]
                sweeps += self._bfs_chunk(chunk, dist[start : start + chunk_size])
            span.add(frontier_sweeps=sweeps, chunk_sources=chunk_size)
        return dist

    def iter_hop_distance_blocks(
        self,
        source_indices: Optional[Sequence[int]] = None,
        scratch_bytes: Optional[int] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Stream BFS results as ``(chunk_sources, dist_block)`` pairs.

        The memory-bounded entry point behind the sampled estimators
        (:mod:`repro.graphs.sampling`): each yielded block holds the
        distance rows of one source chunk only, so peak memory is set by
        the scratch budget instead of ``len(sources) * num_nodes``.  Blocks
        arrive in source order; ``dist_block[i]`` is the full distance row
        of ``chunk_sources[i]``.  The caller must finish with a block
        before advancing — rows are not retained.
        """
        if source_indices is None:
            sources = np.arange(self.num_nodes, dtype=np.int64)
        else:
            sources = np.asarray(list(source_indices), dtype=np.int64)
        chunk_size = bfs_source_chunk(self.num_nodes, len(self.indices), scratch_bytes)
        for start in range(0, len(sources), chunk_size):
            chunk = sources[start : start + chunk_size]
            dist = np.full((len(chunk), self.num_nodes), -1, dtype=np.int32)
            with trace(
                "bfs.block", sources=len(chunk), nodes=self.num_nodes
            ) as span:
                span.add(frontier_sweeps=self._bfs_chunk(chunk, dist))
            yield chunk, dist

    def _bfs_chunk(self, sources: np.ndarray, dist: np.ndarray) -> int:
        """Bit-parallel frontier BFS for one chunk of sources (writes ``dist``).

        Returns the number of frontier sweeps (BFS levels) executed.
        """
        n = self.num_nodes
        num_sources = len(sources)
        if n == 0 or num_sources == 0:
            return 0
        source_pos = np.arange(num_sources)
        dist[source_pos, sources] = 0
        num_edges = len(self.indices)
        if num_edges == 0:
            return 0
        words = (num_sources + 63) // 64
        frontier = np.zeros((n, words), dtype=np.uint64)
        bit = np.uint64(1) << (source_pos % 64).astype(np.uint64)
        np.bitwise_or.at(frontier, (sources, source_pos // 64), bit)
        visited = frontier.copy()
        starts = self.indptr[:-1]
        isolated = np.diff(self.indptr) == 0
        any_isolated = bool(isolated.any())
        # One trailing zero row keeps every reduceat segment in bounds (an
        # ``indptr`` value may equal num_edges when trailing nodes are
        # isolated); OR-ing the pad into the last segment is a no-op.
        gathered = np.zeros((num_edges + 1, words), dtype=np.uint64)
        little_endian = sys.byteorder == "little"
        level = 0
        while frontier.any():
            level += 1
            # One gather + segmented OR advances BFS for all sources at once.
            np.take(frontier, self.indices, axis=0, out=gathered[:num_edges])
            neighbor_bits = np.bitwise_or.reduceat(gathered, starts, axis=0)
            if any_isolated:
                # reduceat maps an empty segment to the row at its start
                # index, which belongs to another node; zero those out.
                neighbor_bits[isolated] = 0
            new = neighbor_bits & ~visited
            visited |= new
            node_idx, word_idx = new.nonzero()
            if len(node_idx) == 0:
                break
            values = new[node_idx, word_idx]
            if little_endian:
                bits = np.unpackbits(
                    values.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little"
                )
                entry, bit_pos = bits.nonzero()
                dist[word_idx[entry] * 64 + bit_pos, node_idx[entry]] = level
            else:  # pragma: no cover - big-endian fallback
                for b in range(64):
                    mask = (values >> np.uint64(b)) & np.uint64(1)
                    sel = mask != 0
                    if sel.any():
                        dist[word_idx[sel] * 64 + b, node_idx[sel]] = level
            frontier = new
        return level

    # ------------------------------------------------------------------
    # Scalar BFS helpers shared by Yen's algorithm and path enumeration.
    # ------------------------------------------------------------------

    def _scratch(self) -> Tuple[List[int], List[int], int]:
        """Visited-stamp and parent scratch lists, plus a fresh stamp value."""
        if self._seen is None or len(self._seen) < self.num_nodes:
            self._seen = [0] * self.num_nodes
            self._parent = [0] * self.num_nodes
            self._stamp = 0
        self._stamp += 1
        return self._seen, self._parent, self._stamp

    def distance_row(self, source: int) -> np.ndarray:
        """Hop distances from one source index, memoized globally.

        Shares the content-hash-keyed LRU memo the metric helpers in
        :mod:`repro.graphs.properties` populate, so e.g. repeated ECMP
        enumerations from one source reuse a single BFS sweep — including
        across structurally identical CSR views.  Rows are only retained
        for graphs within ``DIST_ROW_MEMO_NODE_LIMIT`` nodes, and the memo
        itself is byte-bounded with LRU eviction.
        """
        if self.num_nodes > DIST_ROW_MEMO_NODE_LIMIT:
            return self.hop_distance_matrix([source])[0]
        key = (self.content_hash, source)
        row = _DIST_ROW_MEMO.get(key)
        if row is None:
            row = self.hop_distance_matrix([source])[0]
            _DIST_ROW_MEMO.store(key, row)
        return row

    def bfs_parent_tree(self, source: int) -> List[int]:
        """Full BFS parent tree from ``source`` (``-1`` marks unreachable).

        Parent assignments follow CSR (= networkx adjacency) order, so the
        path extracted for any target equals the one an early-exit BFS to
        that target would have produced.  Trees are memoized per source
        (bounded; evicted wholesale at the cap), so repeated
        k-shortest-path queries from one source (or one pair) skip their
        initial full BFS.
        """
        cached = self._parent_trees.get(source)
        if cached is not None:
            return cached
        adj = self.adj_lists()
        seen, _, stamp = self._scratch()
        parents = [-1] * self.num_nodes
        seen[source] = stamp
        parents[source] = source
        queue = [source]
        for u in queue:
            for v in adj[u]:
                if seen[v] != stamp:
                    seen[v] = stamp
                    parents[v] = u
                    queue.append(v)
        if len(self._parent_trees) >= _PARENT_TREE_CACHE_MAX:
            self._parent_trees.clear()
        self._parent_trees[source] = parents
        return parents


def path_from_parent_tree(parents: Sequence[int], source: int, target: int) -> Optional[IndexPath]:
    """Extract the tree path ``source -> target``; None if unreachable."""
    if parents[target] < 0:
        return None
    if source == target:
        return (source,)
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    return tuple(reversed(path))


def _bfs_spur_path(
    csr: CSRGraph,
    source: int,
    target: int,
    banned_first_hops: Optional[set],
    blocked_nodes: Sequence[int],
) -> Optional[IndexPath]:
    """Shortest path by BFS avoiding removed edges/nodes; None if absent.

    In Yen's algorithm every removed edge is incident to the spur node — the
    BFS source — so instead of filtering every traversed edge the kernel
    only filters the source's own neighbor expansion (``banned_first_hops``).
    Any other traversal of a removed edge would re-enter the source, which
    the visited set forbids anyway.  Blocked nodes are pre-marked visited,
    which excludes them exactly like the historical ``removed_nodes`` set.
    """
    if source == target:
        return (source,)
    adj = csr.adj_lists()
    seen, parent, stamp = csr._scratch()
    for node in blocked_nodes:
        seen[node] = stamp
    if seen[source] == stamp or seen[target] == stamp:
        return None
    seen[source] = stamp
    parent[source] = source
    queue = []
    for v in adj[source]:
        if seen[v] == stamp or (banned_first_hops and v in banned_first_hops):
            continue
        parent[v] = source
        if v == target:
            return (source, v)
        seen[v] = stamp
        queue.append(v)
    # Plain stamped BFS from here on: iterating the list while appending to
    # it gives FIFO order without deque overhead.
    for u in queue:
        for v in adj[u]:
            if seen[v] != stamp:
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return tuple(reversed(path))
                seen[v] = stamp
                queue.append(v)
    return None


def k_shortest_path_indices(
    csr: CSRGraph,
    source: int,
    target: int,
    k: int,
    first_path: Optional[IndexPath] = None,
) -> List[IndexPath]:
    """Yen's k-shortest loopless paths over CSR index space.

    Uses Lawler's spur restriction: an accepted path only spurs from its own
    deviation index onward, since every earlier branch point was already
    spurred when the ancestor it copies that prefix from was processed.  The
    candidate stream per branch point is identical to classic Yen's, so
    results match the pre-CSR implementation path-for-path.

    Candidate ties are broken by ``(length, index tuple)``; because indices
    are assigned in sorted node order this matches native node ordering.
    ``first_path`` lets callers share one BFS tree across the targets of a
    common source (see :func:`repro.routing.ksp.all_pairs_k_shortest_paths`).
    """
    if first_path is None:
        first_path = _bfs_spur_path(csr, source, target, None, ())
    if first_path is None:
        return []
    paths: List[IndexPath] = [first_path]
    deviation_index = 0
    # Candidate heap entries: (length, path, deviation index of the path).
    candidates: List[Tuple[int, IndexPath, int]] = []
    seen_candidates = set()
    spur_attempts = 0

    while len(paths) < k:
        previous = paths[-1]
        for i in range(deviation_index, len(previous) - 1):
            spur_node = previous[i]
            root = previous[: i + 1]

            banned_first_hops = {
                path[i + 1]
                for path in paths
                if len(path) > i and path[: i + 1] == root
            }

            spur_attempts += 1
            spur = _bfs_spur_path(csr, spur_node, target, banned_first_hops, root[:-1])
            if spur is None:
                continue
            candidate = root[:-1] + spur
            if candidate in seen_candidates:
                continue
            seen_candidates.add(candidate)
            heapq.heappush(candidates, (len(candidate), candidate, i))

        if not candidates:
            break
        _, best, deviation_index = heapq.heappop(candidates)
        paths.append(best)
    if spur_attempts:
        count("yen.spur_candidates", spur_attempts)
    return paths


def all_shortest_path_indices(csr: CSRGraph, source: int, target: int) -> List[IndexPath]:
    """Every shortest path between two node indices, in sorted index order."""
    if source == target:
        return [(source,)]
    dist_s = csr.distance_row(source)
    dist_t = csr.distance_row(target)
    length = int(dist_s[target])
    if length < 0:
        return []
    adj = csr.adj_lists()
    ds = dist_s.tolist()
    dt = dist_t.tolist()
    results: List[IndexPath] = []
    path = [source]
    # Iterative DFS over shortest-path edges only (ds increases, dt
    # decreases); explicit iterator stack keeps arbitrarily long paths safe.
    iterators = [iter(adj[source])]
    while iterators:
        depth = len(iterators) - 1
        advanced = False
        for v in iterators[-1]:
            if ds[v] == depth + 1 and dt[v] == length - depth - 1:
                path.append(v)
                if v == target:
                    results.append(tuple(path))
                    path.pop()
                else:
                    iterators.append(iter(adj[v]))
                    advanced = True
                    break
        if not advanced:
            iterators.pop()
            path.pop()
    results.sort()
    return results


# ---------------------------------------------------------------------------
# Per-graph cache
# ---------------------------------------------------------------------------

_csr_cache: "weakref.WeakKeyDictionary[nx.Graph, CSRGraph]" = weakref.WeakKeyDictionary()


def csr_graph(graph: nx.Graph) -> CSRGraph:
    """CSR view of ``graph``, cached per graph object (weakly referenced).

    A cached entry is revalidated against :func:`_graph_fingerprint`, so
    mutating the graph in place — even preserving node and edge counts —
    triggers a rebuild.  Graph types that do not support weak references are
    rebuilt on every call.
    """
    fingerprint = _graph_fingerprint(graph)
    try:
        entry = _csr_cache.get(graph)
    except TypeError:
        return CSRGraph(graph, fingerprint)
    if entry is not None and entry.fingerprint == fingerprint:
        return entry
    csr = CSRGraph(graph, fingerprint)
    _csr_cache[graph] = csr
    return csr


def adopt_csr_view(graph: nx.Graph, view: CSRGraph) -> None:
    """Register ``view`` as the cached CSR of ``graph``.

    Used when a graph is materialized *from* array form (the
    ``TopologyCore`` bridge): the already-built view is stamped with the
    graph's structural fingerprint and seeded into the per-graph cache, so
    the first ``csr_graph(graph)`` call finds it instead of re-walking the
    adjacency dicts.  The caller guarantees the view describes ``graph``
    exactly (same node order contract, same per-row adjacency order).
    """
    view.fingerprint = _graph_fingerprint(graph)
    try:
        _csr_cache[graph] = view
    except TypeError:  # graph type without weakref support: nothing to seed
        pass


def clear_csr_cache() -> None:
    """Drop every cached CSR view and the global distance-row memo."""
    _csr_cache.clear()
    _DIST_ROW_MEMO.clear()


def batched_hop_distances(
    graph: nx.Graph, sources: Optional[Sequence[Hashable]] = None
) -> np.ndarray:
    """Hop-distance matrix from ``sources`` (default: all nodes) by node.

    Row ``i`` corresponds to ``sources[i]`` and column ``j`` to
    ``csr_graph(graph).nodes[j]``; unreachable entries are ``-1``.
    """
    csr = csr_graph(graph)
    if sources is None:
        indices = None
    else:
        try:
            indices = [csr.index_of[node] for node in sources]
        except KeyError as error:
            raise nx.NodeNotFound(f"source {error.args[0]!r} not in graph") from None
    return csr.hop_distance_matrix(indices)
