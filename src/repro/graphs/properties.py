"""Structural graph metrics used throughout the evaluation.

The paper's Figures 1(c) and 5 report server-to-server and switch-to-switch
path-length distributions, means and diameters.  The helpers here compute
them with plain BFS (all edges have unit length), which is exact and fast
enough for the scales the paper simulates.
"""

from __future__ import annotations

import weakref
from collections import Counter, deque
from typing import Dict, Iterable, Optional

import networkx as nx


def is_connected(graph: nx.Graph) -> bool:
    """True if ``graph`` is connected (an empty graph counts as connected)."""
    if graph.number_of_nodes() == 0:
        return True
    return nx.is_connected(graph)


def bfs_distances(graph: nx.Graph, source) -> Dict:
    """Hop distances from ``source`` to every reachable node (including itself)."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


#: Per-source BFS results are memoized only for graphs at most this large;
#: beyond it the all-pairs table would dominate memory (paper-scale fig05
#: builds 3200-switch graphs) and distances are recomputed transiently.
ALL_PAIRS_MEMO_NODE_LIMIT = 1500

# graph -> {"signature": (num_nodes, frozenset of edges), "distances": {src: {dst: hops}}}
_distance_memo: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _edges_signature(graph: nx.Graph):
    """Exact structural fingerprint: stale entries are detected even when a
    mutation (e.g. failure injection then repair) preserves the edge count."""
    return (graph.number_of_nodes(), frozenset(frozenset(edge) for edge in graph.edges()))


def clear_distance_memo() -> None:
    """Drop every memoized BFS result (mainly useful in tests)."""
    _distance_memo.clear()


def all_pairs_hop_distances(
    graph: nx.Graph,
    sources: Optional[Iterable] = None,
    memo_limit: int = ALL_PAIRS_MEMO_NODE_LIMIT,
) -> Dict:
    """Hop distances from each of ``sources`` (default: all nodes) to every
    reachable node, as ``{source: {node: hops}}``.

    Results are memoized per graph (weakly referenced) so the BFS sweep runs
    once per graph structure and is shared by :func:`average_path_length`,
    :func:`diameter` and :func:`path_length_cdf`.  The memo is invalidated
    whenever the graph's node/edge set changes, and is skipped entirely for
    graphs larger than ``memo_limit`` nodes.  Callers must treat the returned
    distance dicts as read-only.
    """
    wanted = list(graph.nodes) if sources is None else list(sources)
    distances: Dict = {}
    if graph.number_of_nodes() <= memo_limit:
        try:
            entry = _distance_memo.get(graph)
            signature = _edges_signature(graph)
            if entry is None or entry["signature"] != signature:
                entry = {"signature": signature, "distances": {}}
                _distance_memo[graph] = entry
            distances = entry["distances"]
        except TypeError:  # graph type does not support weak references
            distances = {}
    for source in wanted:
        if source not in distances:
            distances[source] = bfs_distances(graph, source)
    return {source: distances[source] for source in wanted}


def path_length_distribution(
    graph: nx.Graph, nodes: Optional[Iterable] = None
) -> Counter:
    """Histogram of pairwise shortest-path lengths between distinct nodes.

    ``nodes`` restricts the computation to ordered pairs drawn from that
    subset (e.g. only ToR switches that host servers).  Unreachable pairs are
    ignored.  Each unordered pair is counted once.
    """
    targets = set(graph.nodes) if nodes is None else set(nodes)
    distances = all_pairs_hop_distances(graph, targets)
    histogram: Counter = Counter()
    seen = set()
    for source in targets:
        seen.add(source)
        for destination, hops in distances[source].items():
            if destination in seen or destination not in targets:
                continue
            histogram[hops] += 1
    return histogram


def average_path_length(graph: nx.Graph, nodes: Optional[Iterable] = None) -> float:
    """Mean shortest-path length over distinct reachable node pairs."""
    histogram = path_length_distribution(graph, nodes)
    total_pairs = sum(histogram.values())
    if total_pairs == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    return sum(hops * count for hops, count in histogram.items()) / total_pairs


def diameter(graph: nx.Graph, nodes: Optional[Iterable] = None) -> int:
    """Longest shortest path among the requested nodes (graph must connect them)."""
    histogram = path_length_distribution(graph, nodes)
    if not histogram:
        raise ValueError("graph has no connected pair of the requested nodes")
    return max(histogram)


def path_length_cdf(graph: nx.Graph, nodes: Optional[Iterable] = None) -> Dict[int, float]:
    """Cumulative fraction of node pairs reachable within each hop count.

    This is the quantity plotted in Fig 1(c): fraction of server pairs with
    path length <= h, for each h.
    """
    histogram = path_length_distribution(graph, nodes)
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    cdf: Dict[int, float] = {}
    running = 0
    for hops in sorted(histogram):
        running += histogram[hops]
        cdf[hops] = running / total
    return cdf


def degree_histogram(graph: nx.Graph) -> Counter:
    """Histogram mapping degree -> number of nodes with that degree."""
    return Counter(dict(graph.degree()).values())


def node_connectivity_at_least(graph: nx.Graph, k: int) -> bool:
    """True if the graph is at least ``k``-connected.

    Random r-regular graphs are almost surely r-connected (Section 4.3); this
    check is used by the resilience tests.
    """
    if k <= 0:
        return True
    if graph.number_of_nodes() <= k:
        return False
    return nx.node_connectivity(graph) >= k
