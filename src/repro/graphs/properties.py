"""Structural graph metrics used throughout the evaluation.

The paper's Figures 1(c) and 5 report server-to-server and switch-to-switch
path-length distributions, means and diameters.  All edges have unit length,
so everything reduces to BFS hop distances; the heavy lifting runs on the
bit-parallel batched BFS kernel in :mod:`repro.graphs.csr` and pairwise
histograms are reduced with ``numpy`` straight from the distance matrix.

Per-source distance rows are memoized on the cached :class:`~repro.graphs.csr.CSRGraph`
(weakly referenced per graph object), so one BFS sweep is shared by
:func:`average_path_length`, :func:`diameter` and :func:`path_length_cdf`.
The cache is revalidated against the CSR structural fingerprint computed at
build time, so in-place mutations — including edge-count-preserving rewires
such as failure injection followed by repair — are detected without the old
frozenset-of-frozensets hashing on every memo hit.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.graphs.csr import (
    CSRGraph,
    DIST_ROW_MEMO_NODE_LIMIT,
    clear_csr_cache,
    csr_graph,
    dist_row_memo_get,
    dist_row_memo_store,
)
from repro.resources import PROFILE_SAMPLE_SEED, active_profile


def is_connected(graph: nx.Graph) -> bool:
    """True if ``graph`` is connected (an empty graph counts as connected)."""
    if graph.number_of_nodes() == 0:
        return True
    return nx.is_connected(graph)


def bfs_distances(graph: nx.Graph, source) -> Dict:
    """Hop distances from ``source`` to every reachable node (including itself).

    Pure-Python reference implementation; the batched CSR kernel is used for
    anything performance-sensitive, and the parity suite pins the two
    against each other.
    """
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


#: Per-source distance rows are memoized only for graphs at most this large;
#: beyond it the all-pairs table would dominate memory (paper-scale fig05
#: builds 3200-switch graphs) and distances are recomputed transiently.
#: (Single source of truth lives in :mod:`repro.graphs.csr`.)
ALL_PAIRS_MEMO_NODE_LIMIT = DIST_ROW_MEMO_NODE_LIMIT


def _indices_of(csr: CSRGraph, nodes: Iterable) -> List[int]:
    """Resolve nodes to CSR indices, raising ``NodeNotFound`` on a miss."""
    try:
        return [csr.index_of[node] for node in nodes]
    except KeyError as error:
        raise nx.NodeNotFound(f"node {error.args[0]!r} not in graph") from None


def _bfs_matrix(csr: CSRGraph, source_indices: List[int]) -> np.ndarray:
    """Kernel seam: batched BFS rows for the given source indices.

    Kept as a module-level indirection so tests can count BFS sweeps.
    """
    return csr.hop_distance_matrix(source_indices)


def clear_distance_memo() -> None:
    """Drop every memoized BFS result (mainly useful in tests)."""
    clear_csr_cache()


def _distance_rows(
    graph: nx.Graph,
    sources: Optional[Iterable] = None,
    memo_limit: int = ALL_PAIRS_MEMO_NODE_LIMIT,
) -> Tuple[CSRGraph, List[int], List[np.ndarray]]:
    """CSR view plus one distance row per requested source (memoized)."""
    csr = csr_graph(graph)
    if sources is None:
        wanted = list(range(csr.num_nodes))
    else:
        wanted = _indices_of(csr, sources)
    return csr, wanted, _rows_for_indices(csr, wanted, memo_limit)


def _rows_for_indices(
    csr: CSRGraph, wanted: List[int], memo_limit: int = ALL_PAIRS_MEMO_NODE_LIMIT
) -> List[np.ndarray]:
    """Distance rows for ``wanted``, via the bounded content-hash LRU memo.

    Rows live in the global memo in :mod:`repro.graphs.csr` — keyed by the
    CSR ``content_hash``, byte-bounded, LRU-evicting — rather than on the
    view, so structurally equal graphs share sweeps and a long sweep over
    many topologies cannot grow the memo without limit.  Graphs beyond
    ``memo_limit`` nodes bypass the memo entirely (recomputed per call).
    """
    if csr.num_nodes <= memo_limit:
        content = csr.content_hash
        rows: Dict[int, np.ndarray] = {}
        missing = []
        for index in wanted:
            row = dist_row_memo_get(content, index)
            if row is None:
                missing.append(index)
            else:
                rows[index] = row
        if missing:
            matrix = _bfs_matrix(csr, missing)
            for position, index in enumerate(missing):
                rows[index] = matrix[position]
                dist_row_memo_store(content, index, matrix[position])
        return [rows[index] for index in wanted]
    return list(_bfs_matrix(csr, wanted))


def all_pairs_hop_distances(
    graph: nx.Graph,
    sources: Optional[Iterable] = None,
    memo_limit: int = ALL_PAIRS_MEMO_NODE_LIMIT,
) -> Dict:
    """Hop distances from each of ``sources`` (default: all nodes) to every
    reachable node, as ``{source: {node: hops}}``.

    The underlying BFS rows are memoized per graph (weakly referenced, see
    :func:`_distance_rows`); the dict-of-dicts view is rebuilt per call for
    API compatibility, so hot paths should use the array kernels directly.
    """
    csr, wanted, rows = _distance_rows(graph, sources, memo_limit)
    nodes = csr.nodes
    table: Dict = {}
    for index, row in zip(wanted, rows):
        reachable = np.nonzero(row >= 0)[0]
        table[nodes[index]] = {
            nodes[target]: int(row[target]) for target in reachable.tolist()
        }
    return table


def path_length_distribution(
    graph: nx.Graph, nodes: Optional[Iterable] = None
) -> Counter:
    """Histogram of pairwise shortest-path lengths between distinct nodes.

    ``nodes`` restricts the computation to ordered pairs drawn from that
    subset (e.g. only ToR switches that host servers).  Unreachable pairs are
    ignored.  Each unordered pair is counted once.
    """
    csr = csr_graph(graph)
    if nodes is None:
        target_indices = None
    else:
        target_indices = sorted(set(_indices_of(csr, nodes)))
    return path_length_distribution_csr(csr, target_indices)


def path_length_distribution_csr(
    csr: CSRGraph, target_indices: Optional[List[int]] = None
) -> Counter:
    """:func:`path_length_distribution` on a CSR view directly.

    The array-native entry point used by :meth:`repro.topologies.base.Topology`
    metrics so core-built topologies never materialize a ``networkx`` graph
    for path statistics.  ``target_indices`` must be sorted and duplicate-free.
    """
    if target_indices is None:
        target_indices = list(range(csr.num_nodes))
    if len(target_indices) < 2:
        return Counter()
    rows = _rows_for_indices(csr, target_indices)
    submatrix = np.stack(rows)[:, target_indices]
    upper = submatrix[np.triu_indices(len(target_indices), k=1)]
    upper = upper[upper > 0]  # drops unreachable (-1); 0 only occurs on the diagonal
    counts = np.bincount(upper)
    return Counter(
        {hops: int(count) for hops, count in enumerate(counts.tolist()) if count}
    )


def csr_is_connected(csr: CSRGraph) -> bool:
    """True if the CSR view describes a connected graph (empty counts)."""
    if csr.num_nodes == 0:
        return True
    return bool((csr.distance_row(0) >= 0).all())


def csr_component_labels(csr: CSRGraph) -> np.ndarray:
    """Connected-component label per node, in discovery order.

    Labels are dense ints starting at 0; component 0 contains node 0 (when
    the graph is non-empty).  Every degradation-safe kernel shares this
    labeling -- the :class:`~repro.failures.degradation.DegradationReport`
    of a partitioned topology is derived from it -- so "same component"
    means the same thing everywhere.
    """
    labels = np.full(csr.num_nodes, -1, dtype=np.int64)
    indptr = csr.indptr
    indices = csr.indices
    next_label = 0
    for start in range(csr.num_nodes):
        if labels[start] >= 0:
            continue
        labels[start] = next_label
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in indices[indptr[node] : indptr[node + 1]].tolist():
                if labels[neighbor] < 0:
                    labels[neighbor] = next_label
                    stack.append(neighbor)
        next_label += 1
    return labels


def connected_components_csr(csr: CSRGraph) -> List[np.ndarray]:
    """Node-index arrays of each connected component (discovery order)."""
    labels = csr_component_labels(csr)
    if csr.num_nodes == 0:
        return []
    count = int(labels.max()) + 1
    return [np.flatnonzero(labels == label) for label in range(count)]


def average_path_length_csr(csr: CSRGraph) -> float:
    """Mean shortest-path length over distinct reachable pairs (CSR entry).

    Under a ``sampled`` execution profile (degradation-ladder rung 2+, see
    :mod:`repro.resources`) this delegates to the source-sampled streaming
    estimator with a fixed seed -- a deterministic, memory-bounded estimate
    instead of the all-pairs reduction.  Tiny graphs, where the planner
    cannot demote below "all sources", stay exact.
    """
    profile = active_profile()
    if profile.sampled:
        from repro.graphs.sampling import sampled_path_length_stats

        stats = sampled_path_length_stats(
            csr,
            num_sources=profile.plan_sources(csr.num_nodes, None),
            seed=PROFILE_SAMPLE_SEED,
        )
        if not stats.exact:
            return stats.mean
    histogram = path_length_distribution_csr(csr)
    total_pairs = sum(histogram.values())
    if total_pairs == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    return sum(hops * count for hops, count in histogram.items()) / total_pairs


def diameter_csr(csr: CSRGraph) -> int:
    """Longest shortest path over a CSR view (must connect some pair)."""
    histogram = path_length_distribution_csr(csr)
    if not histogram:
        raise ValueError("graph has no connected pair of the requested nodes")
    return max(histogram)


def server_path_length_cdf_csr(csr: CSRGraph, server_counts) -> Dict[int, float]:
    """Server-to-server path-length CDF computed at the switch level.

    Equivalent to building the combined host graph (servers as leaves) and
    running :func:`path_length_cdf` over its server nodes -- every
    server-to-server path goes leaf -> switch ... switch -> leaf, so a pair
    on switches ``u != v`` is ``hops(u, v) + 2`` apart and a pair sharing a
    switch is 2 apart -- but runs BFS only over the switch graph and weights
    each switch pair by its number of server pairs.  ``server_counts`` is
    aligned with ``csr.nodes``.  Produces bit-identical fractions to the
    host-graph path (same integer histogram, same divisions).
    """
    counts = np.asarray(server_counts, dtype=np.int64)
    if counts.shape != (csr.num_nodes,):
        raise ValueError("server_counts must align with csr.nodes")
    hosts = np.flatnonzero(counts > 0)
    histogram: Counter = Counter()
    same_switch_pairs = int((counts[hosts] * (counts[hosts] - 1) // 2).sum())
    if same_switch_pairs:
        histogram[2] = same_switch_pairs
    if len(hosts) >= 2:
        host_counts = counts[hosts]
        rows = _rows_for_indices(csr, hosts.tolist())
        submatrix = np.stack(rows)[:, hosts]
        upper_i, upper_j = np.triu_indices(len(hosts), k=1)
        dists = submatrix[upper_i, upper_j]
        reachable = dists >= 0
        if reachable.any():
            weights = host_counts[upper_i[reachable]] * host_counts[upper_j[reachable]]
            binned = np.bincount(
                dists[reachable] + 2, weights=weights.astype(np.float64)
            )
            for hops, weight in enumerate(binned.tolist()):
                if weight:
                    histogram[hops] += int(weight)
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    cdf: Dict[int, float] = {}
    running = 0
    for hops in sorted(histogram):
        running += histogram[hops]
        cdf[hops] = running / total
    return cdf


def average_path_length(graph: nx.Graph, nodes: Optional[Iterable] = None) -> float:
    """Mean shortest-path length over distinct reachable node pairs."""
    histogram = path_length_distribution(graph, nodes)
    total_pairs = sum(histogram.values())
    if total_pairs == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    return sum(hops * count for hops, count in histogram.items()) / total_pairs


def diameter(graph: nx.Graph, nodes: Optional[Iterable] = None) -> int:
    """Longest shortest path among the requested nodes (graph must connect them)."""
    histogram = path_length_distribution(graph, nodes)
    if not histogram:
        raise ValueError("graph has no connected pair of the requested nodes")
    return max(histogram)


def path_length_cdf(graph: nx.Graph, nodes: Optional[Iterable] = None) -> Dict[int, float]:
    """Cumulative fraction of node pairs reachable within each hop count.

    This is the quantity plotted in Fig 1(c): fraction of server pairs with
    path length <= h, for each h.
    """
    histogram = path_length_distribution(graph, nodes)
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    cdf: Dict[int, float] = {}
    running = 0
    for hops in sorted(histogram):
        running += histogram[hops]
        cdf[hops] = running / total
    return cdf


def degree_histogram(graph: nx.Graph) -> Counter:
    """Histogram mapping degree -> number of nodes with that degree."""
    return Counter(dict(graph.degree()).values())


def node_connectivity_at_least(graph: nx.Graph, k: int) -> bool:
    """True if the graph is at least ``k``-connected.

    Random r-regular graphs are almost surely r-connected (Section 4.3); this
    check is used by the resilience tests.
    """
    if k <= 0:
        return True
    if graph.number_of_nodes() <= k:
        return False
    return nx.node_connectivity(graph) >= k
