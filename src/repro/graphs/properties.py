"""Structural graph metrics used throughout the evaluation.

The paper's Figures 1(c) and 5 report server-to-server and switch-to-switch
path-length distributions, means and diameters.  The helpers here compute
them with plain BFS (all edges have unit length), which is exact and fast
enough for the scales the paper simulates.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, Iterable, Optional

import networkx as nx


def is_connected(graph: nx.Graph) -> bool:
    """True if ``graph`` is connected (an empty graph counts as connected)."""
    if graph.number_of_nodes() == 0:
        return True
    return nx.is_connected(graph)


def bfs_distances(graph: nx.Graph, source) -> Dict:
    """Hop distances from ``source`` to every reachable node (including itself)."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def path_length_distribution(
    graph: nx.Graph, nodes: Optional[Iterable] = None
) -> Counter:
    """Histogram of pairwise shortest-path lengths between distinct nodes.

    ``nodes`` restricts the computation to ordered pairs drawn from that
    subset (e.g. only ToR switches that host servers).  Unreachable pairs are
    ignored.  Each unordered pair is counted once.
    """
    targets = set(graph.nodes) if nodes is None else set(nodes)
    histogram: Counter = Counter()
    seen = set()
    for source in targets:
        seen.add(source)
        distances = bfs_distances(graph, source)
        for destination, hops in distances.items():
            if destination in seen or destination not in targets:
                continue
            histogram[hops] += 1
    return histogram


def average_path_length(graph: nx.Graph, nodes: Optional[Iterable] = None) -> float:
    """Mean shortest-path length over distinct reachable node pairs."""
    histogram = path_length_distribution(graph, nodes)
    total_pairs = sum(histogram.values())
    if total_pairs == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    return sum(hops * count for hops, count in histogram.items()) / total_pairs


def diameter(graph: nx.Graph, nodes: Optional[Iterable] = None) -> int:
    """Longest shortest path among the requested nodes (graph must connect them)."""
    histogram = path_length_distribution(graph, nodes)
    if not histogram:
        raise ValueError("graph has no connected pair of the requested nodes")
    return max(histogram)


def path_length_cdf(graph: nx.Graph, nodes: Optional[Iterable] = None) -> Dict[int, float]:
    """Cumulative fraction of node pairs reachable within each hop count.

    This is the quantity plotted in Fig 1(c): fraction of server pairs with
    path length <= h, for each h.
    """
    histogram = path_length_distribution(graph, nodes)
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("graph has no connected pair of the requested nodes")
    cdf: Dict[int, float] = {}
    running = 0
    for hops in sorted(histogram):
        running += histogram[hops]
        cdf[hops] = running / total
    return cdf


def degree_histogram(graph: nx.Graph) -> Counter:
    """Histogram mapping degree -> number of nodes with that degree."""
    return Counter(dict(graph.degree()).values())


def node_connectivity_at_least(graph: nx.Graph, k: int) -> bool:
    """True if the graph is at least ``k``-connected.

    Random r-regular graphs are almost surely r-connected (Section 4.3); this
    check is used by the resilience tests.
    """
    if k <= 0:
        return True
    if graph.number_of_nodes() <= k:
        return False
    return nx.node_connectivity(graph) >= k
