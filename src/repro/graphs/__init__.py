"""Graph-level building blocks: random regular graphs, metrics, bisection."""

from repro.graphs.bisection import (
    bollobas_bisection_lower_bound,
    estimate_bisection_bandwidth,
    exact_bisection_bandwidth,
)
from repro.graphs.csr import (
    CSRGraph,
    batched_hop_distances,
    bfs_source_chunk,
    csr_graph,
    distance_memo_stats,
    index_dtype,
)
from repro.graphs.properties import (
    average_path_length,
    degree_histogram,
    diameter,
    is_connected,
    path_length_distribution,
)
from repro.graphs.regular import (
    random_regular_graph,
    sequential_random_regular_graph,
)
from repro.graphs.sampling import (
    SampledCutStats,
    SampledPathStats,
    sampled_bisection_stats,
    sampled_path_length_stats,
    throughput_upper_bound,
)

__all__ = [
    "CSRGraph",
    "batched_hop_distances",
    "bfs_source_chunk",
    "csr_graph",
    "distance_memo_stats",
    "index_dtype",
    "bollobas_bisection_lower_bound",
    "estimate_bisection_bandwidth",
    "exact_bisection_bandwidth",
    "average_path_length",
    "degree_histogram",
    "diameter",
    "is_connected",
    "path_length_distribution",
    "random_regular_graph",
    "sequential_random_regular_graph",
    "SampledCutStats",
    "SampledPathStats",
    "sampled_bisection_stats",
    "sampled_path_length_stats",
    "throughput_upper_bound",
]
