"""Bisection bandwidth computations.

Three tools matching the paper's evaluation methodology:

* :func:`bollobas_bisection_lower_bound` -- the analytic lower bound of
  Bollobás (1988) used for Fig 2(a) and 2(b): in almost every r-regular
  graph on N nodes, every set of N/2 nodes is joined to the rest by at least
  ``N * (r/4 - sqrt(r * ln 2) / 2)`` edges.
* :func:`estimate_bisection_bandwidth` -- a Kernighan–Lin-style heuristic
  that searches for a small balanced cut in a concrete graph (upper bound on
  the true bisection width); used for the LEGUP comparison (Fig 7) where
  concrete expanded topologies are measured.
* :func:`exact_bisection_bandwidth` -- brute-force over all balanced
  partitions, only feasible for tiny graphs; used by the test suite to
  validate the heuristic.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.graphs.csr import csr_graph
from repro.utils.rng import RngLike, ensure_rng


def bollobas_bisection_lower_bound(num_nodes: int, degree: int) -> float:
    """Bollobás' lower bound on the bisection width of an r-regular graph.

    Returns the minimum number of edges crossing any balanced partition, for
    almost every ``degree``-regular graph on ``num_nodes`` nodes:
    ``N * (r/4 - sqrt(r * ln 2) / 2)``.  The bound can be negative for very
    small degrees, in which case it is clamped to zero.
    """
    if num_nodes < 0 or degree < 0:
        raise ValueError("num_nodes and degree must be non-negative")
    bound = num_nodes * (degree / 4.0 - math.sqrt(degree * math.log(2)) / 2.0)
    return max(0.0, bound)


def cut_size(graph: nx.Graph, partition: Set) -> int:
    """Number of edges with exactly one endpoint inside ``partition``.

    Evaluated on the cached CSR view: a boolean side vector indexed by the
    directed edge arrays counts mismatched endpoints in one vectorized
    pass.  The exhaustive search below batches partitions over the same
    edge arrays directly instead of calling this per partition.
    """
    csr = csr_graph(graph)
    if csr.num_edges == 0:
        return 0
    side = np.zeros(csr.num_nodes, dtype=bool)
    inside = [csr.index_of[node] for node in partition if node in csr.index_of]
    side[inside] = True
    crossings = np.count_nonzero(side[csr.edge_sources()] != side[csr.indices])
    return int(crossings) // 2


def exact_bisection_bandwidth(graph: nx.Graph) -> int:
    """Exact bisection width by exhaustive search (tiny graphs only).

    The graph must have an even number of nodes.  Complexity is
    C(n, n/2) cut evaluations, so this is reserved for validation tests.
    Partitions are evaluated in vectorized batches over the CSR edge
    arrays: one membership matrix per chunk, one comparison per edge
    endpoint, instead of a per-partition edge loop.
    """
    num_nodes = graph.number_of_nodes()
    if num_nodes % 2 != 0:
        raise ValueError("exact bisection requires an even number of nodes")
    if num_nodes == 0:
        return 0
    if num_nodes > 20:
        raise ValueError("exact bisection is only supported for <= 20 nodes")
    csr = csr_graph(graph)
    if csr.num_edges == 0:
        return 0
    half = num_nodes // 2
    heads = csr.edge_sources()
    tails = csr.indices
    best = None
    combos = itertools.combinations(range(1, num_nodes), half - 1)
    chunk_size = 16384
    while True:
        chunk = list(itertools.islice(combos, chunk_size))
        if not chunk:
            break
        side = np.zeros((len(chunk), num_nodes), dtype=bool)
        side[:, 0] = True  # node index 0 anchors one half
        if half > 1:
            rows = np.repeat(np.arange(len(chunk)), half - 1)
            side[rows, np.asarray(chunk, dtype=np.intp).ravel()] = True
        crossings = (side[:, heads] != side[:, tails]).sum(axis=1)
        chunk_best = int(crossings.min()) // 2
        if best is None or chunk_best < best:
            best = chunk_best
    return best if best is not None else 0


def _kernighan_lin_once(graph: nx.Graph, rng) -> Tuple[Set, int]:
    """One randomized Kernighan–Lin bisection refinement pass."""
    nodes = list(graph.nodes)
    rng.shuffle(nodes)
    half = len(nodes) // 2
    side_a = set(nodes[:half])
    partition = nx.algorithms.community.kernighan_lin_bisection(
        graph, partition=(side_a, set(nodes[half:])), seed=rng.randrange(2**32)
    )
    best_side = set(partition[0])
    return best_side, cut_size(graph, best_side)


def estimate_bisection_bandwidth(
    graph: nx.Graph,
    trials: int = 5,
    rng: RngLike = None,
    weight_per_edge: float = 1.0,
) -> float:
    """Heuristic (upper-bound) estimate of the bisection bandwidth.

    Runs ``trials`` randomized Kernighan–Lin bisections and returns the
    smallest cut found, scaled by ``weight_per_edge`` (link capacity).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if graph.number_of_nodes() < 2:
        return 0.0
    rand = ensure_rng(rng)
    best: Optional[int] = None
    for _ in range(trials):
        _, size = _kernighan_lin_once(graph, rand)
        if best is None or size < best:
            best = size
    return float(best) * weight_per_edge if best is not None else 0.0


def normalized_bisection_bandwidth(
    bisection_edges: float, num_servers: int, server_line_rate: float = 1.0
) -> float:
    """Normalize a bisection width by the server bandwidth in one partition.

    The paper divides the bisection bandwidth by the total line-rate
    bandwidth of the servers in one partition (values > 1 indicate
    overprovisioning).
    """
    if num_servers <= 0:
        raise ValueError("num_servers must be positive")
    one_side = num_servers / 2.0
    return bisection_edges / (one_side * server_line_rate)


def jellyfish_normalized_bisection(
    num_switches: int, ports_per_switch: int, network_degree: int
) -> float:
    """Normalized bisection bandwidth of RRG(N, k, r) via the Bollobás bound.

    Servers per switch is ``k - r``; the bound is normalized by the servers
    in one partition, i.e. ``N * (k - r) / 2``.
    """
    servers = num_switches * (ports_per_switch - network_degree)
    if servers <= 0:
        raise ValueError("topology has no servers (k - r must be positive)")
    bound = bollobas_bisection_lower_bound(num_switches, network_degree)
    return normalized_bisection_bandwidth(bound, servers)
