"""Retained pre-vectorization graph constructors (parity references).

These are the original ``networkx``-native implementations of the paper's
random-graph procedures, kept verbatim so the array-native rewrites in
:mod:`repro.graphs.regular` can be pinned against them: the hypothesis suite
in ``tests/test_topology_core.py`` asserts that, for the same seed, the fast
constructors consume the rng stream identically and produce the same edge
set *and* the same adjacency insertion order (which downstream CSR kernels
use for deterministic tie-breaking).

Do not modify the algorithmic bodies here: they define the rng-stream
contract the production constructors must honor.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx
import numpy as np

from repro.graphs.regular import GraphConstructionError, _validate_regular_params
from repro.utils.rng import RngLike, ensure_rng


def complete_by_splicing_reference(
    graph: nx.Graph,
    free: Dict,
    rand,
    max_stall_rounds: int = 1000,
    error="could not complete regular graph construction",
) -> None:
    """The paper's construction loop on a (possibly partial) ``nx.Graph``.

    Joins random pairs of non-adjacent nodes with free ports; when stuck,
    splices a node with >= 2 free ports into a random existing link, and
    finishes the all-single-port end-game by rewiring one edge.  This is the
    historical loop shared by the sequential and degree-budget constructors,
    extracted so the stub-matching reference can reuse it for its repair
    phase.  Mutates ``graph`` and ``free`` in place.
    """
    open_nodes = [node for node in graph.nodes if free[node] > 0]

    def prune_open_nodes() -> None:
        open_nodes[:] = [node for node in open_nodes if free[node] > 0]

    def try_add_random_edge() -> bool:
        prune_open_nodes()
        if len(open_nodes) < 2:
            return False
        attempts = 4 * len(open_nodes)
        for _ in range(attempts):
            u, v = rand.sample(open_nodes, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                free[u] -= 1
                free[v] -= 1
                return True
        for i, u in enumerate(open_nodes):
            for v in open_nodes[i + 1:]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    free[u] -= 1
                    free[v] -= 1
                    return True
        return False

    stall_rounds = 0
    while True:
        if try_add_random_edge():
            continue
        prune_open_nodes()
        stuck = [node for node in open_nodes if free[node] >= 2]
        if not stuck:
            if not _repair_single_port_pair_reference(graph, free, open_nodes, rand):
                break
            continue
        node = rand.choice(stuck)
        edge_list = list(graph.edges)
        rand.shuffle(edge_list)
        spliced = False
        for x, y in edge_list:
            if node in (x, y) or graph.has_edge(node, x) or graph.has_edge(node, y):
                continue
            graph.remove_edge(x, y)
            graph.add_edge(node, x)
            graph.add_edge(node, y)
            free[node] -= 2
            spliced = True
            break
        if not spliced:
            stall_rounds += 1
            if stall_rounds > max_stall_rounds:
                raise GraphConstructionError(error() if callable(error) else error)


def _repair_single_port_pair_reference(graph: nx.Graph, free, open_nodes, rand) -> bool:
    """End-game repair: two adjacent single-free-port nodes rewire one edge."""
    singles = [node for node in open_nodes if free[node] == 1]
    if len(singles) < 2:
        return False
    rand.shuffle(singles)
    for i, u in enumerate(singles):
        for v in singles[i + 1:]:
            edge_list = list(graph.edges)
            rand.shuffle(edge_list)
            for x, y in edge_list:
                if u in (x, y) or v in (x, y):
                    continue
                for first, second in ((x, y), (y, x)):
                    if not graph.has_edge(u, first) and not graph.has_edge(v, second):
                        graph.remove_edge(x, y)
                        graph.add_edge(u, first)
                        graph.add_edge(v, second)
                        free[u] -= 1
                        free[v] -= 1
                        return True
    return False


def sequential_random_regular_graph_reference(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Original per-edge Python implementation of the paper's construction."""
    _validate_regular_params(num_nodes, degree)
    rand = ensure_rng(rng)

    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    if num_nodes == 0 or degree == 0:
        return graph

    free = {node: degree for node in graph.nodes}
    complete_by_splicing_reference(
        graph,
        free,
        rand,
        max_stall_rounds,
        error=(
            "could not complete regular graph construction "
            f"(num_nodes={num_nodes}, degree={degree})"
        ),
    )
    return graph


def random_graph_with_degree_budget_reference(
    budgets: Dict,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Original heterogeneous-degree construction (per-edge Python loop)."""
    rand = ensure_rng(rng)
    graph = nx.Graph()
    graph.add_nodes_from(budgets)
    for node, budget in budgets.items():
        if budget < 0:
            raise ValueError(f"negative degree budget for node {node!r}")
        if budget >= len(budgets) and budget > 0:
            raise ValueError(
                f"degree budget for node {node!r} ({budget}) is not realizable "
                f"with {len(budgets)} nodes"
            )

    free = dict(budgets)
    complete_by_splicing_reference(
        graph,
        free,
        rand,
        max_stall_rounds,
        error=lambda: (
            "could not satisfy the degree budgets "
            f"(remaining: { {n: f for n, f in free.items() if f > 0} })"
        ),
    )
    return graph


def stub_matching_regular_graph_reference(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Scalar stub-matching construction (the vectorized kernel's reference).

    Draws one 64-bit seed from ``rng`` for a numpy ``Generator``, permutes
    the stub multiset once, then walks consecutive stub pairs in order,
    skipping self-loops and pairs that duplicate an earlier edge.  Leftover
    free ports are completed with the paper's splice-repair loop (driven by
    the *Python* rng, exactly like the sequential construction).
    """
    _validate_regular_params(num_nodes, degree)
    rand = ensure_rng(rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    if num_nodes == 0 or degree == 0:
        return graph

    np_rng = np.random.default_rng(rand.getrandbits(64))
    stubs = np.repeat(np.arange(num_nodes, dtype=np.int64), degree)
    paired = stubs[np_rng.permutation(stubs.shape[0])].tolist()
    for i in range(0, len(paired) - 1, 2):
        u = int(paired[i])
        v = int(paired[i + 1])
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)

    free = {node: degree - graph.degree(node) for node in graph.nodes}
    if any(count > 0 for count in free.values()):
        complete_by_splicing_reference(
            graph,
            free,
            rand,
            max_stall_rounds,
            error=(
                "could not complete stub-matching construction "
                f"(num_nodes={num_nodes}, degree={degree})"
            ),
        )
    return graph
