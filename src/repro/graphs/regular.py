"""Random regular graph construction.

The Jellyfish paper (Section 3) does not require exactly-uniform sampling of
r-regular graphs: it uses a simple sequential procedure -- repeatedly join a
uniform-random pair of non-adjacent switches that still have free ports, and
when the process gets stuck with a switch holding two or more free ports,
"open up" a random existing link and splice the stuck switch into it.

This module implements that procedure (``sequential_random_regular_graph``),
the classical configuration/pairing model (``pairing_model_regular_graph``)
used as an ablation baseline, and a thin dispatcher
(``random_regular_graph``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_integer


class GraphConstructionError(RuntimeError):
    """Raised when a random graph cannot be constructed for the parameters."""


def _validate_regular_params(num_nodes: int, degree: int) -> None:
    require_integer(num_nodes, "num_nodes")
    require_integer(degree, "degree")
    if num_nodes < 0:
        raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
    if degree < 0:
        raise ValueError(f"degree must be non-negative, got {degree}")
    if degree >= num_nodes and num_nodes > 0 and degree > 0:
        raise ValueError(
            f"degree ({degree}) must be smaller than num_nodes ({num_nodes})"
        )
    if (num_nodes * degree) % 2 != 0:
        raise ValueError(
            "num_nodes * degree must be even for a regular graph "
            f"(got {num_nodes} * {degree})"
        )


def free_port_counts(graph: nx.Graph, degree: int) -> Dict:
    """Map each node to the number of unused (free) ports at target ``degree``."""
    return {node: degree - graph.degree(node) for node in graph.nodes}


def sequential_random_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Build an (approximately uniform) random ``degree``-regular graph.

    This is the construction procedure from the Jellyfish paper: join random
    pairs of non-adjacent nodes that both have free ports; when no such pair
    exists but some node still has >= 2 free ports, remove a random existing
    link (x, y) not incident to that node and add links to both x and y.

    The result is connected and exactly regular for all parameter choices
    used in the paper (it may leave a single free port when ``degree`` is odd
    and an odd number of stubs remains, matching the paper's description).
    """
    _validate_regular_params(num_nodes, degree)
    rand = ensure_rng(rng)

    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    if num_nodes == 0 or degree == 0:
        return graph

    free = {node: degree for node in graph.nodes}
    open_nodes = list(graph.nodes)  # nodes that still have free ports

    def prune_open_nodes() -> None:
        open_nodes[:] = [node for node in open_nodes if free[node] > 0]

    def try_add_random_edge() -> bool:
        """Attempt to add one edge between random open nodes.

        Uses rejection sampling first; if a bounded number of random draws
        all hit already-adjacent pairs, fall back to an exhaustive scan so
        we never falsely conclude the phase is finished.
        """
        prune_open_nodes()
        if len(open_nodes) < 2:
            return False
        attempts = 4 * len(open_nodes)
        for _ in range(attempts):
            u, v = rand.sample(open_nodes, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                free[u] -= 1
                free[v] -= 1
                return True
        # Exhaustive fallback: look for any addable pair.
        for i, u in enumerate(open_nodes):
            for v in open_nodes[i + 1:]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    free[u] -= 1
                    free[v] -= 1
                    return True
        return False

    stall_rounds = 0
    while True:
        if try_add_random_edge():
            continue
        prune_open_nodes()
        # Stuck: no addable pair.  Splice nodes with >= 2 free ports into a
        # random existing edge (the paper's repair step).
        stuck = [node for node in open_nodes if free[node] >= 2]
        if not stuck:
            # Only nodes with a single free port remain, and they are all
            # mutual neighbours.  If there are at least two of them the graph
            # can still be completed by rewiring one existing edge.
            if not _repair_single_port_pair(graph, free, open_nodes, rand):
                break
            continue
        node = rand.choice(stuck)
        edge_list = list(graph.edges)
        rand.shuffle(edge_list)
        spliced = False
        for x, y in edge_list:
            if node in (x, y) or graph.has_edge(node, x) or graph.has_edge(node, y):
                continue
            graph.remove_edge(x, y)
            graph.add_edge(node, x)
            graph.add_edge(node, y)
            free[node] -= 2
            spliced = True
            break
        if not spliced:
            stall_rounds += 1
            if stall_rounds > max_stall_rounds:
                raise GraphConstructionError(
                    "could not complete regular graph construction "
                    f"(num_nodes={num_nodes}, degree={degree})"
                )

    return graph


def _repair_single_port_pair(graph: nx.Graph, free, open_nodes, rand) -> bool:
    """Resolve the end-game where several adjacent nodes each have one free port.

    Picks two such nodes u and v and an existing edge (x, y) disjoint from
    them with x not adjacent to u and y not adjacent to v; replaces (x, y)
    with (u, x) and (v, y).  Returns True if a repair was applied.
    """
    singles = [node for node in open_nodes if free[node] == 1]
    if len(singles) < 2:
        return False
    rand.shuffle(singles)
    for i, u in enumerate(singles):
        for v in singles[i + 1:]:
            edge_list = list(graph.edges)
            rand.shuffle(edge_list)
            for x, y in edge_list:
                if u in (x, y) or v in (x, y):
                    continue
                for first, second in ((x, y), (y, x)):
                    if not graph.has_edge(u, first) and not graph.has_edge(v, second):
                        graph.remove_edge(x, y)
                        graph.add_edge(u, first)
                        graph.add_edge(v, second)
                        free[u] -= 1
                        free[v] -= 1
                        return True
    return False


def random_graph_with_degree_budget(
    budgets: Dict,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Random graph where node ``v`` gets (up to) ``budgets[v]`` links.

    This generalizes the paper's construction to heterogeneous degrees (used
    when servers are spread unevenly over switches, or when switches have
    different port counts): join random pairs of non-adjacent nodes that both
    have unused budget, then splice stuck nodes (>= 2 free ports) into random
    existing links.  As in the regular case, at most one free port may remain
    unmatched per stuck node when the graph becomes saturated.
    """
    rand = ensure_rng(rng)
    graph = nx.Graph()
    graph.add_nodes_from(budgets)
    for node, budget in budgets.items():
        if budget < 0:
            raise ValueError(f"negative degree budget for node {node!r}")
        if budget >= len(budgets) and budget > 0:
            raise ValueError(
                f"degree budget for node {node!r} ({budget}) is not realizable "
                f"with {len(budgets)} nodes"
            )

    free = dict(budgets)
    open_nodes = [node for node in graph.nodes if free[node] > 0]

    def prune_open_nodes() -> None:
        open_nodes[:] = [node for node in open_nodes if free[node] > 0]

    def try_add_random_edge() -> bool:
        prune_open_nodes()
        if len(open_nodes) < 2:
            return False
        attempts = 4 * len(open_nodes)
        for _ in range(attempts):
            u, v = rand.sample(open_nodes, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                free[u] -= 1
                free[v] -= 1
                return True
        for i, u in enumerate(open_nodes):
            for v in open_nodes[i + 1:]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    free[u] -= 1
                    free[v] -= 1
                    return True
        return False

    stall_rounds = 0
    while True:
        if try_add_random_edge():
            continue
        prune_open_nodes()
        stuck = [node for node in open_nodes if free[node] >= 2]
        if not stuck:
            # Same end-game as the regular construction: adjacent nodes each
            # holding one free port can be finished by rewiring one edge.
            if not _repair_single_port_pair(graph, free, open_nodes, rand):
                break
            continue
        node = rand.choice(stuck)
        edge_list = list(graph.edges)
        rand.shuffle(edge_list)
        spliced = False
        for x, y in edge_list:
            if node in (x, y) or graph.has_edge(node, x) or graph.has_edge(node, y):
                continue
            graph.remove_edge(x, y)
            graph.add_edge(node, x)
            graph.add_edge(node, y)
            free[node] -= 2
            spliced = True
            break
        if not spliced:
            stall_rounds += 1
            if stall_rounds > max_stall_rounds:
                raise GraphConstructionError(
                    "could not satisfy the degree budgets "
                    f"(remaining: { {n: f for n, f in free.items() if f > 0} })"
                )

    return graph


def pairing_model_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_attempts: int = 200,
) -> nx.Graph:
    """Sample a random regular graph via the configuration (pairing) model.

    Stubs are matched uniformly at random.  When the next stub pair would
    create a self-loop or a parallel edge, a compatible partner is searched
    among the remaining stubs (a standard practical repair of the pairing
    model); only if no compatible partner exists is the sample rejected and
    retried.  Provided as an ablation baseline against the paper's sequential
    construction.
    """
    _validate_regular_params(num_nodes, degree)
    rand = ensure_rng(rng)

    if num_nodes == 0 or degree == 0:
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        return graph

    for _ in range(max_attempts):
        stubs = [node for node in range(num_nodes) for _ in range(degree)]
        rand.shuffle(stubs)
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        simple = True
        while stubs:
            u = stubs.pop()
            partner_index = None
            for index in range(len(stubs) - 1, -1, -1):
                v = stubs[index]
                if v != u and not graph.has_edge(u, v):
                    partner_index = index
                    break
            if partner_index is None:
                simple = False
                break
            v = stubs.pop(partner_index)
            graph.add_edge(u, v)
        if simple:
            return graph
    raise GraphConstructionError(
        f"pairing model failed after {max_attempts} attempts "
        f"(num_nodes={num_nodes}, degree={degree})"
    )


def random_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    method: str = "sequential",
) -> nx.Graph:
    """Build a random ``degree``-regular graph on ``num_nodes`` nodes.

    ``method`` selects the construction: ``"sequential"`` (the paper's
    procedure, default), ``"pairing"`` (configuration model), or
    ``"networkx"`` (delegate to :func:`networkx.random_regular_graph`).
    """
    if method == "sequential":
        return sequential_random_regular_graph(num_nodes, degree, rng)
    if method == "pairing":
        return pairing_model_regular_graph(num_nodes, degree, rng)
    if method == "networkx":
        _validate_regular_params(num_nodes, degree)
        if num_nodes == 0 or degree == 0:
            graph = nx.Graph()
            graph.add_nodes_from(range(num_nodes))
            return graph
        rand = ensure_rng(rng)
        return nx.random_regular_graph(degree, num_nodes, seed=rand.randrange(2**32))
    raise ValueError(f"unknown construction method: {method!r}")


def is_regular(graph: nx.Graph, degree: Optional[int] = None) -> bool:
    """Return True if every node of ``graph`` has the same degree.

    If ``degree`` is given, additionally require that common degree to equal
    it.
    """
    degrees = {d for _, d in graph.degree()}
    if not degrees:
        return True
    if len(degrees) != 1:
        return False
    if degree is None:
        return True
    return degrees.pop() == degree
