"""Random regular graph construction (array-native).

The Jellyfish paper (Section 3) does not require exactly-uniform sampling of
r-regular graphs: it uses a simple sequential procedure -- repeatedly join a
uniform-random pair of non-adjacent switches that still have free ports, and
when the process gets stuck with a switch holding two or more free ports,
"open up" a random existing link and splice the stuck switch into it.

This module implements that procedure over index-space adjacency rows
instead of an ``nx.Graph``: plain insertion-ordered dicts replicate the
networkx adjacency bookkeeping exactly (same insertion *and* deletion
order), the open-node list is maintained incrementally instead of being
re-filtered per added edge (the historical implementation spent >80% of a
fig05-scale build in that ``prune_open_nodes`` list comprehension), and the
rng stream is consumed identically -- every ``sample``/``shuffle``/``choice``
draw the original made is reproduced draw-for-draw, so the produced graph is
bit-identical for the same seed.  The historical implementations are
retained in :mod:`repro.graphs._reference` and the parity is pinned by the
hypothesis suite in ``tests/test_topology_core.py``.

Three constructions are provided:

* :func:`sequential_random_regular_graph` -- the paper's procedure (default);
* :func:`stub_matching_regular_graph` -- a vectorized configuration-model
  pass (one numpy permutation pairs every stub at once; self-loops and
  duplicate pairs are dropped first-occurrence-first) followed by the
  paper's splice repair for the leftover ports.  This is the fast
  constructor used for large topology ensembles;
* :func:`pairing_model_regular_graph` -- the classical rejection-sampling
  configuration model, kept as an ablation baseline.

``random_regular_graph`` dispatches between them, and
:func:`random_graph_with_degree_budget` generalizes the sequential
construction to heterogeneous per-node degree budgets.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.telemetry import count, trace
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_integer


class GraphConstructionError(RuntimeError):
    """Raised when a random graph cannot be constructed for the parameters."""


def _validate_regular_params(num_nodes: int, degree: int) -> None:
    require_integer(num_nodes, "num_nodes")
    require_integer(degree, "degree")
    if num_nodes < 0:
        raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
    if degree < 0:
        raise ValueError(f"degree must be non-negative, got {degree}")
    if degree >= num_nodes and num_nodes > 0 and degree > 0:
        raise ValueError(
            f"degree ({degree}) must be smaller than num_nodes ({num_nodes})"
        )
    if (num_nodes * degree) % 2 != 0:
        raise ValueError(
            "num_nodes * degree must be even for a regular graph "
            f"(got {num_nodes} * {degree})"
        )


def free_port_counts(graph: nx.Graph, degree: int) -> Dict:
    """Map each node to the number of unused (free) ports at target ``degree``."""
    return {node: degree - graph.degree(node) for node in graph.nodes}


# --------------------------------------------------------------------------- #
# RNG-stream-compatible draw helpers
# --------------------------------------------------------------------------- #
def _sample_pair(rand, population: Sequence[int]):
    """Two distinct elements, drawing exactly like ``rand.sample(seq, 2)``.

    Replicates CPython's ``random.Random.sample`` draw pattern for ``k == 2``
    (pool-copy path for ``len <= 21``, rejection path above) through the same
    ``_randbelow`` the library method would call, skipping the per-call
    isinstance/ABC overhead that dominates the hot loop.  Any ``Random``
    subclass falls back to the genuine ``sample`` so overridden generators
    keep their own stream.
    """
    n = len(population)
    if type(rand) is not random.Random:
        pair = rand.sample(population, 2)
        return pair[0], pair[1]
    randbelow = rand._randbelow
    if n <= 21:  # random.sample's setsize threshold for k == 2
        pool = list(population)
        j = randbelow(n)
        first = pool[j]
        pool[j] = pool[n - 1]
        return first, pool[randbelow(n - 1)]
    j = randbelow(n)
    k = randbelow(n)
    while k == j:
        k = randbelow(n)
    return population[j], population[k]


# --------------------------------------------------------------------------- #
# Index-space construction core
# --------------------------------------------------------------------------- #
def _edges_in_iteration_order(rows: List[dict]) -> list:
    """Every edge exactly as ``nx.Graph.edges`` would iterate the graph.

    With nodes inserted in index order, networkx yields each edge once as
    ``(u, v)`` with ``u < v``, ordered by ``u`` and, within a row, by the
    adjacency insertion order -- which the row dicts preserve bit-for-bit.
    """
    return [(u, v) for u, row in enumerate(rows) for v in row if v > u]


def _complete_by_splicing(
    rows: List[dict],
    free: List[int],
    open_nodes: List[int],
    rand,
    max_stall_rounds: int,
    error,
) -> None:
    """The paper's construction loop over index-space adjacency rows.

    ``open_nodes`` must hold exactly the indices with ``free > 0`` in node
    order; it is maintained incrementally (a node is removed the moment its
    last port is consumed), which keeps it equal to what the historical
    implementation's per-edge ``prune_open_nodes`` pass would produce at
    the cost of one C-level ``list.remove`` scan per *retired node* instead
    of a Python-level O(open) re-filter per *added edge*.
    """

    def consume_port(u: int) -> None:
        free[u] -= 1
        if free[u] == 0:
            open_nodes.remove(u)

    def try_add_random_edge() -> bool:
        if len(open_nodes) < 2:
            return False
        attempts = 4 * len(open_nodes)
        for _ in range(attempts):
            u, v = _sample_pair(rand, open_nodes)
            if v not in rows[u]:
                rows[u][v] = True
                rows[v][u] = True
                consume_port(u)
                consume_port(v)
                return True
        # Exhaustive fallback: look for any addable pair.
        for i, u in enumerate(open_nodes):
            row_u = rows[u]
            for v in open_nodes[i + 1:]:
                if v not in row_u:
                    rows[u][v] = True
                    rows[v][u] = True
                    consume_port(u)
                    consume_port(v)
                    return True
        return False

    stall_rounds = 0
    while True:
        if try_add_random_edge():
            continue
        # Stuck: no addable pair.  Splice nodes with >= 2 free ports into a
        # random existing edge (the paper's repair step).
        stuck = [u for u in open_nodes if free[u] >= 2]
        if not stuck:
            # Only nodes with a single free port remain, and they are all
            # mutual neighbours.  If there are at least two of them the graph
            # can still be completed by rewiring one existing edge.
            if not _repair_single_port_pair(rows, free, open_nodes, rand):
                break
            continue
        node = rand.choice(stuck)
        edge_list = _edges_in_iteration_order(rows)
        rand.shuffle(edge_list)
        spliced = False
        node_row = rows[node]
        for x, y in edge_list:
            if node == x or node == y or x in node_row or y in node_row:
                continue
            del rows[x][y]
            del rows[y][x]
            node_row[x] = True
            rows[x][node] = True
            node_row[y] = True
            rows[y][node] = True
            free[node] -= 2
            if free[node] == 0:
                open_nodes.remove(node)
            spliced = True
            count("rrg.splice_repairs")
            break
        if not spliced:
            stall_rounds += 1
            if stall_rounds > max_stall_rounds:
                raise GraphConstructionError(error() if callable(error) else error)


def _repair_single_port_pair(
    rows: List[dict], free: List[int], open_nodes: List[int], rand
) -> bool:
    """Resolve the end-game where several adjacent nodes each have one free port.

    Picks two such nodes u and v and an existing edge (x, y) disjoint from
    them with x not adjacent to u and y not adjacent to v; replaces (x, y)
    with (u, x) and (v, y).  Returns True if a repair was applied.
    """
    singles = [u for u in open_nodes if free[u] == 1]
    if len(singles) < 2:
        return False
    rand.shuffle(singles)
    for i, u in enumerate(singles):
        row_u = rows[u]
        for v in singles[i + 1:]:
            row_v = rows[v]
            edge_list = _edges_in_iteration_order(rows)
            rand.shuffle(edge_list)
            for x, y in edge_list:
                if u == x or u == y or v == x or v == y:
                    continue
                for first, second in ((x, y), (y, x)):
                    if first not in row_u and second not in row_v:
                        del rows[x][y]
                        del rows[y][x]
                        row_u[first] = True
                        rows[first][u] = True
                        row_v[second] = True
                        rows[second][v] = True
                        consume = free[u] = free[u] - 1
                        if consume == 0:
                            open_nodes.remove(u)
                        consume = free[v] = free[v] - 1
                        if consume == 0:
                            open_nodes.remove(v)
                        count("rrg.single_port_repairs")
                        return True
    return False


def graph_from_rows(labels: Iterable[Hashable], rows: List[dict]) -> nx.Graph:
    """Materialize an ``nx.Graph`` whose adjacency order equals ``rows``.

    ``rows[i]`` holds the neighbors of ``labels[i]`` as index keys in the
    exact insertion order the equivalent sequence of
    ``add_edge``/``remove_edge`` calls would have left in a live
    ``nx.Graph``.  Replaying ``add_edge`` row-by-row cannot reproduce that
    interleaved order (it would fill each row completely before the next),
    so the rows are written into ``graph._adj`` directly, with one shared
    attribute dict per undirected edge exactly as ``add_edge`` would create.
    A parity test pins this materialization against a chronological
    ``add_edge`` replay.
    """
    labels = list(labels)
    graph = nx.Graph()
    graph.add_nodes_from(labels)
    adj = graph._adj
    make_attrs = graph.edge_attr_dict_factory
    edge_attrs: dict = {}
    for i, label in enumerate(labels):
        target = adj[label]
        for j in rows[i]:
            key = (i, j) if i < j else (j, i)
            data = edge_attrs.get(key)
            if data is None:
                data = edge_attrs[key] = make_attrs()
            target[labels[j]] = data
    return graph


# --------------------------------------------------------------------------- #
# Public constructors
# --------------------------------------------------------------------------- #
def sequential_random_regular_rows(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> List[dict]:
    """Index-space adjacency rows of the paper's sequential construction.

    This is the array-native entry point used by
    :class:`repro.topologies.core.TopologyCore`; the rng stream and the
    resulting adjacency (including insertion order) are bit-identical to the
    retained reference implementation.
    """
    _validate_regular_params(num_nodes, degree)
    rand = ensure_rng(rng)
    rows: List[dict] = [{} for _ in range(num_nodes)]
    if num_nodes == 0 or degree == 0:
        return rows
    free = [degree] * num_nodes
    open_nodes = list(range(num_nodes))
    with trace("rrg.sequential", nodes=num_nodes, degree=degree):
        _complete_by_splicing(
            rows,
            free,
            open_nodes,
            rand,
            max_stall_rounds,
            error=(
                "could not complete regular graph construction "
                f"(num_nodes={num_nodes}, degree={degree})"
            ),
        )
    return rows


def sequential_random_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Build an (approximately uniform) random ``degree``-regular graph.

    This is the construction procedure from the Jellyfish paper: join random
    pairs of non-adjacent nodes that both have free ports; when no such pair
    exists but some node still has >= 2 free ports, remove a random existing
    link (x, y) not incident to that node and add links to both x and y.

    The result is connected and exactly regular for all parameter choices
    used in the paper (it may leave a single free port when ``degree`` is odd
    and an odd number of stubs remains, matching the paper's description).
    """
    rows = sequential_random_regular_rows(num_nodes, degree, rng, max_stall_rounds)
    return graph_from_rows(range(num_nodes), rows)


def random_graph_with_degree_budget(
    budgets: Dict,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Random graph where node ``v`` gets (up to) ``budgets[v]`` links.

    This generalizes the paper's construction to heterogeneous degrees (used
    when servers are spread unevenly over switches, or when switches have
    different port counts): join random pairs of non-adjacent nodes that both
    have unused budget, then splice stuck nodes (>= 2 free ports) into random
    existing links.  As in the regular case, at most one free port may remain
    unmatched per stuck node when the graph becomes saturated.
    """
    rows, labels = random_graph_with_degree_budget_rows(
        budgets, rng, max_stall_rounds
    )
    return graph_from_rows(labels, rows)


def random_graph_with_degree_budget_rows(
    budgets: Dict,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
):
    """Index-space rows + label list of the degree-budget construction."""
    rand = ensure_rng(rng)
    labels = list(budgets)
    num_nodes = len(labels)
    for node, budget in budgets.items():
        if budget < 0:
            raise ValueError(f"negative degree budget for node {node!r}")
        if budget >= num_nodes and budget > 0:
            raise ValueError(
                f"degree budget for node {node!r} ({budget}) is not realizable "
                f"with {num_nodes} nodes"
            )

    rows: List[dict] = [{} for _ in range(num_nodes)]
    free = [budgets[label] for label in labels]
    open_nodes = [i for i in range(num_nodes) if free[i] > 0]

    def describe_remaining() -> str:
        remaining = {
            labels[i]: free[i] for i in range(num_nodes) if free[i] > 0
        }
        return f"could not satisfy the degree budgets (remaining: {remaining})"

    with trace("rrg.degree_budget", nodes=num_nodes):
        _complete_by_splicing(
            rows, free, open_nodes, rand, max_stall_rounds, error=describe_remaining
        )
    return rows, labels


def stub_matching_regular_rows(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
    scratch: Optional[dict] = None,
) -> List[dict]:
    """Vectorized stub matching with the paper's splice repair (rows form).

    One numpy permutation pairs all ``num_nodes * degree`` stubs at once;
    self-loop pairs and pairs duplicating an earlier edge are dropped in a
    single vectorized pass (first occurrence wins, matching the scalar
    reference's scan order), and whatever free ports remain are completed
    with the same splice-repair loop the sequential construction uses.  The
    numpy ``Generator`` is seeded with one 64-bit draw from ``rng``, so the
    whole construction is a pure function of the Python seed and is pinned
    bit-identical to :func:`repro.graphs._reference.stub_matching_regular_graph_reference`.

    ``scratch`` is an optional dict reused across calls with the same
    ``(num_nodes, degree)`` (the ensemble generator passes one per batch):
    it keeps the stub multiset and the identity permutation template so
    per-instance construction does no re-allocation for them.  Shuffling the
    reused index buffer draws from the ``Generator`` exactly like
    ``permutation`` (which is an arange + shuffle internally), so scratch
    reuse does not change results.
    """
    _validate_regular_params(num_nodes, degree)
    rand = ensure_rng(rng)
    rows: List[dict] = [{} for _ in range(num_nodes)]
    if num_nodes == 0 or degree == 0:
        return rows

    with trace("rrg.stub_matching", nodes=num_nodes, degree=degree):
        return _stub_matching_rows(
            rows, num_nodes, degree, rand, max_stall_rounds, scratch
        )


def _stub_matching_rows(
    rows: List[dict],
    num_nodes: int,
    degree: int,
    rand,
    max_stall_rounds: int,
    scratch: Optional[dict],
) -> List[dict]:
    np_rng = np.random.default_rng(rand.getrandbits(64))
    key = (num_nodes, degree)
    if scratch is not None and scratch.get("key") == key:
        stubs = scratch["stubs"]
        order = scratch["order"]
        np.copyto(order, scratch["identity"])
    else:
        stubs = np.repeat(np.arange(num_nodes, dtype=np.int64), degree)
        identity = np.arange(stubs.shape[0])
        order = identity.copy()
        if scratch is not None:
            scratch.update(key=key, stubs=stubs, identity=identity, order=order)
    np_rng.shuffle(order)
    paired = stubs[order]
    u = paired[0::2]
    v = paired[1::2]
    # First-occurrence dedup of undirected pairs, excluding self-loops: the
    # scalar scan adds pair i iff u != v and no earlier pair had the same
    # endpoints.  np.unique's return_index gives exactly those survivors.
    keys = np.minimum(u, v) * np.int64(num_nodes) + np.maximum(u, v)
    valid = np.flatnonzero(u != v)
    _, first = np.unique(keys[valid], return_index=True)
    keep = np.sort(valid[first])

    kept_u = u[keep].tolist()
    kept_v = v[keep].tolist()
    for a, b in zip(kept_u, kept_v):
        rows[a][b] = True
        rows[b][a] = True

    endpoint_counts = np.bincount(
        np.concatenate((u[keep], v[keep])), minlength=num_nodes
    )
    free = (degree - endpoint_counts).tolist()
    open_nodes = [i for i in range(num_nodes) if free[i] > 0]
    if open_nodes:
        _complete_by_splicing(
            rows,
            free,
            open_nodes,
            rand,
            max_stall_rounds,
            error=(
                "could not complete stub-matching construction "
                f"(num_nodes={num_nodes}, degree={degree})"
            ),
        )
    return rows


def stub_matching_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_stall_rounds: int = 1000,
) -> nx.Graph:
    """Vectorized stub-matching random regular graph (see the rows variant)."""
    rows = stub_matching_regular_rows(num_nodes, degree, rng, max_stall_rounds)
    return graph_from_rows(range(num_nodes), rows)


def pairing_model_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_attempts: int = 200,
) -> nx.Graph:
    """Sample a random regular graph via the configuration (pairing) model.

    Stubs are matched uniformly at random.  When the next stub pair would
    create a self-loop or a parallel edge, a compatible partner is searched
    among the remaining stubs (a standard practical repair of the pairing
    model); only if no compatible partner exists is the sample rejected and
    retried.  Provided as an ablation baseline against the paper's sequential
    construction.
    """
    _validate_regular_params(num_nodes, degree)
    rand = ensure_rng(rng)

    if num_nodes == 0 or degree == 0:
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        return graph

    for _ in range(max_attempts):
        stubs = [node for node in range(num_nodes) for _ in range(degree)]
        rand.shuffle(stubs)
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        simple = True
        while stubs:
            u = stubs.pop()
            partner_index = None
            for index in range(len(stubs) - 1, -1, -1):
                v = stubs[index]
                if v != u and not graph.has_edge(u, v):
                    partner_index = index
                    break
            if partner_index is None:
                simple = False
                break
            v = stubs.pop(partner_index)
            graph.add_edge(u, v)
        if simple:
            return graph
    raise GraphConstructionError(
        f"pairing model failed after {max_attempts} attempts "
        f"(num_nodes={num_nodes}, degree={degree})"
    )


def random_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    method: str = "sequential",
) -> nx.Graph:
    """Build a random ``degree``-regular graph on ``num_nodes`` nodes.

    ``method`` selects the construction: ``"sequential"`` (the paper's
    procedure, default), ``"stubs"`` (vectorized stub matching with the
    paper's splice repair -- the fast choice for large ensembles),
    ``"pairing"`` (configuration model with rejection), or ``"networkx"``
    (delegate to :func:`networkx.random_regular_graph`).
    """
    if method == "sequential":
        return sequential_random_regular_graph(num_nodes, degree, rng)
    if method == "stubs":
        return stub_matching_regular_graph(num_nodes, degree, rng)
    if method == "pairing":
        return pairing_model_regular_graph(num_nodes, degree, rng)
    if method == "networkx":
        _validate_regular_params(num_nodes, degree)
        if num_nodes == 0 or degree == 0:
            graph = nx.Graph()
            graph.add_nodes_from(range(num_nodes))
            return graph
        rand = ensure_rng(rng)
        return nx.random_regular_graph(degree, num_nodes, seed=rand.randrange(2**32))
    raise ValueError(f"unknown construction method: {method!r}")


def regular_rows(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    method: str = "sequential",
) -> List[dict]:
    """Index-space adjacency rows for the array-native construction methods.

    Only ``"sequential"`` and ``"stubs"`` build rows natively; the ablation
    methods (``"pairing"``, ``"networkx"``) go through
    :func:`random_regular_graph` instead.
    """
    if method == "sequential":
        return sequential_random_regular_rows(num_nodes, degree, rng)
    if method == "stubs":
        return stub_matching_regular_rows(num_nodes, degree, rng)
    raise ValueError(
        f"no array-native rows construction for method {method!r}; "
        "use random_regular_graph"
    )


def is_regular(graph: nx.Graph, degree: Optional[int] = None) -> bool:
    """Return True if every node of ``graph`` has the same degree.

    If ``degree`` is given, additionally require that common degree to equal
    it.
    """
    degrees = {d for _, d in graph.degree()}
    if not degrees:
        return True
    if len(degrees) != 1:
        return False
    if degree is None:
        return True
    return degrees.pop() == degree
