"""Fig 8, lived-in: failure resilience as a lifecycle time series.

The static Fig 8 fails a random *fraction* of links once and solves for
throughput.  This variant subjects an equipment-matched Jellyfish and
fat-tree to the **same seeded failure/repair lifecycle** -- identical
Poisson arrival times, MTTRs, and epoch instants, with victims drawn
per-family from the surviving equipment -- and reports each traffic
epoch's normalized throughput and server-pair availability side by side.
The time-average over the steady-state failure regime is the lifecycle
restatement of Fig 8's degradation claim: at matched equipment and higher
server count, Jellyfish degrades no faster than the fat-tree.

Engine-native: one grid whose only axis is the topology family, with
``seed_strategy="shared"`` so both rows live through the same schedule of
adversity.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.topologies.fattree import FatTreeTopology

_SCALES = {
    "small": {
        "k": 4,
        "jellyfish_server_factor": 1.15,
        "lifecycle": {
            "duration_hours": 96.0,
            "link_failure_rate": 0.2,
            "switch_failure_rate": 0.02,
            "link_mttr_hours": 6.0,
            "switch_mttr_hours": 12.0,
            "epoch_interval_hours": 24.0,
            "epoch_engine": "path",
            "k": 8,
        },
    },
    "paper": {
        "k": 8,
        "jellyfish_server_factor": 1.26,
        "lifecycle": {
            "duration_hours": 720.0,
            "link_failure_rate": 0.5,
            "switch_failure_rate": 0.05,
            "link_mttr_hours": 12.0,
            "switch_mttr_hours": 24.0,
            "epoch_interval_hours": 48.0,
            "epoch_engine": "path",
            "k": 8,
        },
    },
}

_TARGET = "repro.lifecycle.engine:lifecycle_point"
_FAMILIES = ["jellyfish", "fattree"]


def _equipment(config) -> tuple:
    fattree = FatTreeTopology.build(config["k"])
    num_servers = int(
        round(fattree.num_servers * config["jellyfish_server_factor"])
    )
    return fattree.num_switches, config["k"], num_servers


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    num_switches, ports, num_servers = _equipment(config)
    return [
        ScenarioSpec.grid(
            _TARGET,
            name="fig08-lifecycle",
            seed=seed,
            # Both families must receive the *same* seed: the event stream
            # (arrival times, epoch instants) is a pure function of
            # (config, seed), which is the identical-adversity guarantee.
            seed_strategy="shared",
            family=_FAMILIES,
            ports=ports,
            num_switches=num_switches,
            num_servers=num_servers,
            build_seed=seed,
            **config["lifecycle"],
        )
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    num_switches, ports, num_servers = _equipment(config)
    by_family = {value["family"]: value for value in values}
    jelly, fat = by_family["jellyfish"], by_family["fattree"]

    result = ExperimentResult(
        experiment_id="fig08-lifecycle",
        title=(
            f"Failure/repair lifecycle: Jellyfish ({num_servers} servers) vs "
            f"fat-tree ({fat['plant_servers']} servers) on {num_switches}x"
            f"{ports}-port switches, identical seeded event stream"
        ),
        columns=[
            "time_h",
            "jellyfish_throughput",
            "jellyfish_availability",
            "fattree_throughput",
            "fattree_availability",
        ],
    )
    for jelly_epoch, fat_epoch in zip(jelly["epochs"], fat["epochs"]):
        result.add_row(
            jelly_epoch["time_h"],
            jelly_epoch["throughput"],
            jelly_epoch["availability"],
            fat_epoch["throughput"],
            fat_epoch["availability"],
        )

    def _mean(records, name):
        values_ = [record[name] for record in records]
        return sum(values_) / len(values_) if values_ else 0.0

    result.notes = (
        "time-averaged throughput: "
        f"jellyfish {_mean(jelly['epochs'], 'throughput'):.4f}, "
        f"fattree {_mean(fat['epochs'], 'throughput'):.4f}; "
        "availability: "
        f"jellyfish {_mean(jelly['epochs'], 'availability'):.4f}, "
        f"fattree {_mean(fat['epochs'], 'availability'):.4f} "
        f"({jelly['events_applied']} events each)"
    )
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Jellyfish vs fat-tree under one seeded failure/repair lifecycle."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
