"""Fig 6: incrementally built Jellyfish matches Jellyfish built from scratch.

The paper grows a network from 20 to 160 switches in increments of 20
(12-port switches, 4 servers each) and compares normalized per-server
throughput of the incrementally grown topologies against topologies built
from scratch at each size; the curves coincide.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.flow.throughput import normalized_throughput
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

_SCALES = {
    "small": {"increment": 10, "stages": 3, "trials": 2},
    "paper": {"increment": 20, "stages": 8, "trials": 20},
}

_PORTS = 12
_SERVERS_PER_SWITCH = 4
_NETWORK_DEGREE = _PORTS - _SERVERS_PER_SWITCH


def _throughput(topology, trials, rng) -> float:
    values = []
    for _ in range(trials):
        traffic = random_permutation_traffic(topology, rng=rng)
        values.append(
            normalized_throughput(topology, traffic, engine="path", k=8).normalized
        )
    return mean(values)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    increment = config["increment"]
    stages = config["stages"]
    trials = config["trials"]

    result = ExperimentResult(
        experiment_id="fig06",
        title="Incrementally grown vs from-scratch Jellyfish throughput",
        columns=[
            "num_switches",
            "num_servers",
            "incremental_throughput",
            "from_scratch_throughput",
        ],
    )

    grown = JellyfishTopology.build(
        increment, _PORTS, _NETWORK_DEGREE,
        rng=rng, servers_per_switch=_SERVERS_PER_SWITCH,
    )
    for stage in range(1, stages + 1):
        count = increment * stage
        if stage > 1:
            grown.expand(
                increment, _PORTS, _SERVERS_PER_SWITCH, rng=rng, prefix=f"stage{stage}"
            )
        scratch = JellyfishTopology.build(
            count, _PORTS, _NETWORK_DEGREE,
            rng=rng, servers_per_switch=_SERVERS_PER_SWITCH,
        )
        result.add_row(
            count,
            count * _SERVERS_PER_SWITCH,
            _throughput(grown, trials, rng),
            _throughput(scratch, trials, rng),
        )
    return result
