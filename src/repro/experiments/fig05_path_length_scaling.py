"""Fig 5: path length vs network size; from-scratch vs incrementally grown.

The paper uses 48-port switches with r = 36 network ports (12 servers each)
and grows the network from 100 to 3,200 switches, showing (a) the mean
switch-to-switch path length stays below ~2.7 and the diameter at most 4,
and (b) topologies grown incrementally from a small seed match topologies
built from scratch.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.graphs.properties import average_path_length, diameter
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import ensure_rng

_SCALES = {
    "small": {
        "ports": 12,
        "network_degree": 9,
        "switch_counts": [20, 40, 80],
    },
    "paper": {
        "ports": 48,
        "network_degree": 36,
        "switch_counts": [100, 400, 800, 1600, 3200],
    },
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    ports = config["ports"]
    degree = config["network_degree"]
    servers_per_switch = ports - degree
    counts = config["switch_counts"]

    result = ExperimentResult(
        experiment_id="fig05",
        title=f"Path length vs servers (k={ports}, r={degree}): from scratch vs expanded",
        columns=[
            "num_servers",
            "scratch_mean_path",
            "scratch_diameter",
            "expanded_mean_path",
            "expanded_diameter",
        ],
    )

    # Incrementally grown topology starting from the smallest size.
    grown = JellyfishTopology.build(
        counts[0], ports, degree, rng=rng, servers_per_switch=servers_per_switch
    )
    for index, count in enumerate(counts):
        scratch = JellyfishTopology.build(
            count, ports, degree, rng=rng, servers_per_switch=servers_per_switch
        )
        if index > 0:
            grown.expand(
                count - grown.num_switches,
                ports,
                servers_per_switch,
                rng=rng,
                prefix=f"stage{index}",
            )
        result.add_row(
            count * servers_per_switch,
            average_path_length(scratch.graph),
            diameter(scratch.graph),
            average_path_length(grown.graph),
            diameter(grown.graph),
        )
    return result
