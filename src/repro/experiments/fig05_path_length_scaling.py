"""Fig 5: path length vs network size; from-scratch vs incrementally grown.

The paper uses 48-port switches with r = 36 network ports (12 servers each)
and grows the network from 100 to 3,200 switches, showing (a) the mean
switch-to-switch path length stays below ~2.7 and the diameter at most 4,
and (b) topologies grown incrementally from a small seed match topologies
built from scratch.

The incremental growth makes the sizes a single sequential scenario (each
stage expands the previous topology with the same rng stream), so the whole
figure is one engine scenario point rather than a per-size grid.  The
mean-path-length and diameter queries at each size share one memoized
all-pairs BFS sweep (:func:`repro.graphs.properties.all_pairs_hop_distances`).
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.graphs.properties import average_path_length, diameter
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import ensure_rng

_SCALES = {
    "small": {
        "ports": 12,
        "network_degree": 9,
        "switch_counts": [20, 40, 80],
    },
    "paper": {
        "ports": 48,
        "network_degree": 36,
        "switch_counts": [100, 400, 800, 1600, 3200],
    },
}

_TARGET = "repro.experiments.fig05_path_length_scaling:compute_scaling"


def compute_scaling(
    ports: int, network_degree: int, switch_counts: List[int], seed: int = 0
) -> dict:
    """Scenario target: path metrics at every size, scratch vs grown."""
    rng = ensure_rng(seed)
    servers_per_switch = ports - network_degree
    counts = list(switch_counts)

    rows = []
    # Incrementally grown topology starting from the smallest size.
    grown = JellyfishTopology.build(
        counts[0], ports, network_degree, rng=rng, servers_per_switch=servers_per_switch
    )
    for index, count in enumerate(counts):
        scratch = JellyfishTopology.build(
            count, ports, network_degree, rng=rng, servers_per_switch=servers_per_switch
        )
        if index > 0:
            grown.expand(
                count - grown.num_switches,
                ports,
                servers_per_switch,
                rng=rng,
                prefix=f"stage{index}",
            )
        rows.append(
            [
                count * servers_per_switch,
                average_path_length(scratch.graph),
                diameter(scratch.graph),
                average_path_length(grown.graph),
                diameter(grown.graph),
            ]
        )
    return {"rows": rows}


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec(
            target=_TARGET,
            base={
                "ports": config["ports"],
                "network_degree": config["network_degree"],
                "switch_counts": list(config["switch_counts"]),
            },
            seed=seed,
            name="fig05",
        )
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    result = ExperimentResult(
        experiment_id="fig05",
        title=(
            f"Path length vs servers (k={config['ports']}, "
            f"r={config['network_degree']}): from scratch vs expanded"
        ),
        columns=[
            "num_servers",
            "scratch_mean_path",
            "scratch_diameter",
            "expanded_mean_path",
            "expanded_diameter",
        ],
    )
    for row in values[0]["rows"]:
        result.add_row(*row)
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
