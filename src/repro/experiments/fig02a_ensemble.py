"""Fig 2(a) ensemble variant: measured bisection vs the Bollobás bound.

Fig 2(a) plots the *analytic* Bollobás lower bound; this sweep samples
concrete RRG instances per server count and measures a Kernighan–Lin
bisection estimate on each, reporting the ensemble mean/min next to the
bound -- the per-instance check that the figure's curve is honest.
"""

from __future__ import annotations

from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.graphs.bisection import bollobas_bisection_lower_bound
from repro.topologies.ensemble import _mean_std

_SCALES = {
    "small": {
        "num_switches": 40,
        "ports": 8,
        "server_steps": [2, 4, 6],
        "steps_total": 8,
        "num_instances": 4,
        "trials": 2,
    },
    "paper": {
        "num_switches": 720,
        "ports": 24,
        "server_steps": [3, 6, 9],
        "steps_total": 12,
        "num_instances": 10,
        "trials": 5,
    },
}

_TARGET = "repro.topologies.ensemble:ensemble_bisection_point"


def _server_axis(config) -> List[int]:
    max_servers = config["num_switches"] * (config["ports"] - 1)
    return [
        int(round(step * max_servers / config["steps_total"]))
        for step in config["server_steps"]
    ]


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    return [
        ScenarioSpec.grid(
            _TARGET,
            name=f"fig02a-ens-{servers}",
            seed=seed,
            seed_strategy="derived",
            num_switches=config["num_switches"],
            ports=config["ports"],
            servers=servers,
            trials=config["trials"],
            instance=list(range(config["num_instances"])),
        )
        for servers in _server_axis(config)
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    config = _SCALES[scale]
    result = ExperimentResult(
        experiment_id="fig02a-ens",
        title=(
            f"Measured normalized bisection over "
            f"{config['num_instances']}-instance ensembles "
            f"({config['num_switches']} switches x {config['ports']} ports)"
        ),
        columns=[
            "servers",
            "network_degree",
            "instances",
            "measured_mean",
            "measured_std",
            "measured_min",
            "bollobas_bound",
        ],
        notes="measured = Kernighan-Lin cut estimate (upper bound on the "
        "true bisection) normalized by one partition's server bandwidth",
    )
    iterator = iter(values)
    for servers in _server_axis(config):
        points = [next(iterator) for _ in range(config["num_instances"])]
        measured = [p["normalized_bisection"] for p in points]
        degree = points[0]["network_degree"]
        bound = (
            bollobas_bisection_lower_bound(config["num_switches"], degree)
            / (servers / 2.0)
            if degree > 0
            else 0.0
        )
        mean, std = _mean_std(measured)
        result.add_row(
            servers, degree, len(points), mean, std, min(measured), bound
        )
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Ensemble measured-bisection curves (mean/std/min per server count)."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
