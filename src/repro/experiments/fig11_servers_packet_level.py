"""Fig 11: servers supported at the fat-tree's throughput, with real routing + CC.

The packet-level counterpart of Fig 2(c): for each equipment pool (a
fat-tree of k-port switches) find, by binary search, the largest Jellyfish
server count whose average per-server throughput under 8-shortest-path
routing with MPTCP is at least the fat-tree's under ECMP with MPTCP.  The
paper reports >25% more servers at its largest simulated size.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

_SCALES = {
    "small": {"port_counts": [4, 6], "trials": 2},
    "paper": {"port_counts": [6, 8, 10, 12, 14], "trials": 5},
}


def _average_throughput(topology, config, trials, rng) -> float:
    values = []
    for _ in range(trials):
        traffic = random_permutation_traffic(topology, rng=rng)
        values.append(simulate_fluid(topology, traffic, config, rng=rng).average_throughput)
    return mean(values)


def max_jellyfish_servers_matching(
    num_switches: int,
    ports: int,
    target_throughput: float,
    lower: int,
    upper: int,
    trials: int,
    rng,
) -> int:
    """Binary-search the largest server count whose throughput >= target."""
    jellyfish_config = SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)

    def feasible(servers: int) -> bool:
        topology = JellyfishTopology.from_equipment(
            num_switches=num_switches, ports_per_switch=ports,
            num_servers=servers, rng=rng,
        )
        if not topology.is_connected():
            return False
        return _average_throughput(topology, jellyfish_config, trials, rng) >= target_throughput

    if not feasible(lower):
        return lower
    if feasible(upper):
        return upper
    low, high = lower, upper
    while high - low > 1:
        middle = (low + high) // 2
        if feasible(middle):
            low = middle
        else:
            high = middle
    return low


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    trials = config["trials"]
    fattree_config = SimulationConfig(routing="ecmp", k=8, congestion_control=MPTCP)

    result = ExperimentResult(
        experiment_id="fig11",
        title="Servers at the fat-tree's throughput, with routing and congestion control",
        columns=[
            "ports_per_switch",
            "equipment_total_ports",
            "fattree_servers",
            "fattree_throughput",
            "jellyfish_servers",
            "jellyfish_advantage",
        ],
    )
    for ports in config["port_counts"]:
        fattree = FatTreeTopology.build(ports)
        target = _average_throughput(fattree, fattree_config, trials, rng)
        best = max_jellyfish_servers_matching(
            num_switches=fattree.num_switches,
            ports=ports,
            target_throughput=target,
            lower=max(2, fattree.num_servers // 2),
            upper=fattree.num_switches * max(1, ports - 3),
            trials=trials,
            rng=rng,
        )
        result.add_row(
            ports,
            fattree.total_ports,
            fattree.num_servers,
            target,
            best,
            best / fattree.num_servers,
        )
    return result
