"""Fig 2(a): normalized bisection bandwidth vs number of servers (equal cost).

For fixed switching equipment -- N switches of k ports -- Jellyfish trades
servers against network degree: hosting S servers leaves r = k - S/N ports
per switch for the random interconnect.  The Bollobás lower bound gives the
bisection bandwidth of the resulting RRG, normalized by the server bandwidth
in one partition.  The fat-tree built from the same equipment appears as a
single point: k^3/4 servers at normalized bisection 1.0.

Every curve point is a pure function of ``(num_switches, ports, servers)``,
so the figure is declared as a scenario grid (one spec per equipment config,
one axis over server counts) and each point is independently cacheable and
shardable across workers.
"""

from __future__ import annotations

import math
from typing import Any, List

from repro.engine.registry import run_specs
from repro.engine.runner import SweepRunner
from repro.engine.spec import ScenarioSpec
from repro.experiments.common import ExperimentResult
from repro.graphs.bisection import bollobas_bisection_lower_bound
from repro.topologies.fattree import fattree_num_servers

_SCALES = {
    "small": [(720, 24), (1280, 32)],
    "paper": [(720, 24), (1280, 32), (2880, 48)],
}

_STEPS = 12

_TARGET = "repro.experiments.fig02a_bisection:jellyfish_curve_point"


def jellyfish_curve_point(num_switches: int, ports: int, servers: int) -> float:
    """Normalized bisection bandwidth of RRG equipment hosting ``servers``."""
    servers_per_switch = servers / num_switches
    network_degree = ports - math.ceil(servers_per_switch)
    if network_degree <= 0:
        return 0.0
    bound = bollobas_bisection_lower_bound(num_switches, network_degree)
    return bound / (servers / 2.0)


def _server_axis(num_switches: int, ports: int) -> List[int]:
    max_servers = num_switches * (ports - 1)
    return [int(round(step * max_servers / _STEPS)) for step in range(1, _STEPS + 1)]


def build_specs(scale: str = "small", seed: int = 0) -> List[ScenarioSpec]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    return [
        ScenarioSpec.grid(
            _TARGET,
            name=f"fig02a-{num_switches}x{ports}",
            num_switches=num_switches,
            ports=ports,
            servers=_server_axis(num_switches, ports),
        )
        for num_switches, ports in _SCALES[scale]
    ]


def assemble(values: List[Any], scale: str, seed: int) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig02a",
        title="Normalized bisection bandwidth vs servers (equal equipment)",
        columns=[
            "num_switches",
            "ports",
            "servers",
            "jellyfish_normalized_bisection",
            "fattree_servers_same_equipment",
        ],
        notes="fat-tree reference point has normalized bisection 1.0 by construction",
    )
    iterator = iter(values)
    for num_switches, ports in _SCALES[scale]:
        fattree_servers = fattree_num_servers(ports)
        for servers in _server_axis(num_switches, ports):
            result.add_row(num_switches, ports, servers, next(iterator), fattree_servers)
    return result


def run(scale: str = "small", seed: int = 0, runner: SweepRunner = None) -> ExperimentResult:
    """Equal-cost curves of normalized bisection bandwidth vs servers."""
    return run_specs(build_specs(scale, seed), assemble, scale, seed, runner)
