"""Fig 2(a): normalized bisection bandwidth vs number of servers (equal cost).

For fixed switching equipment -- N switches of k ports -- Jellyfish trades
servers against network degree: hosting S servers leaves r = k - S/N ports
per switch for the random interconnect.  The Bollobás lower bound gives the
bisection bandwidth of the resulting RRG, normalized by the server bandwidth
in one partition.  The fat-tree built from the same equipment appears as a
single point: k^3/4 servers at normalized bisection 1.0.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult
from repro.graphs.bisection import bollobas_bisection_lower_bound
from repro.topologies.fattree import fattree_num_servers

_SCALES = {
    "small": [(720, 24), (1280, 32)],
    "paper": [(720, 24), (1280, 32), (2880, 48)],
}


def jellyfish_curve_point(num_switches: int, ports: int, num_servers: int) -> float:
    """Normalized bisection bandwidth of RRG equipment hosting ``num_servers``."""
    servers_per_switch = num_servers / num_switches
    network_degree = ports - math.ceil(servers_per_switch)
    if network_degree <= 0:
        return 0.0
    bound = bollobas_bisection_lower_bound(num_switches, network_degree)
    return bound / (num_servers / 2.0)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Equal-cost curves of normalized bisection bandwidth vs servers."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    configs = _SCALES[scale]

    result = ExperimentResult(
        experiment_id="fig02a",
        title="Normalized bisection bandwidth vs servers (equal equipment)",
        columns=[
            "num_switches",
            "ports",
            "servers",
            "jellyfish_normalized_bisection",
            "fattree_servers_same_equipment",
        ],
        notes="fat-tree reference point has normalized bisection 1.0 by construction",
    )
    for num_switches, ports in configs:
        fattree_servers = fattree_num_servers(ports)
        max_servers = num_switches * (ports - 1)
        steps = 12
        for step in range(1, steps + 1):
            servers = int(round(step * max_servers / steps))
            value = jellyfish_curve_point(num_switches, ports, servers)
            result.add_row(num_switches, ports, servers, value, fattree_servers)
    return result
