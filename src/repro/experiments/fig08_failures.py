"""Fig 8: failure resilience -- throughput vs fraction of randomly failed links.

The paper fails a random fraction of inter-switch links in a Jellyfish
hosting ~26% more servers than the same-equipment fat-tree and shows that
per-server throughput degrades gracefully (failing 15% of links loses <16%
of capacity), degrading more slowly than the fat-tree.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.failures.injection import throughput_under_link_failures
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.utils.rng import ensure_rng

_SCALES = {
    "small": {"k": 6, "jellyfish_server_factor": 1.15, "fractions": [0.0, 0.1, 0.2]},
    "paper": {
        "k": 12,
        "jellyfish_server_factor": 1.26,
        "fractions": [0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
    },
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    k = config["k"]

    fattree = FatTreeTopology.build(k)
    jellyfish_servers = int(round(fattree.num_servers * config["jellyfish_server_factor"]))
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=k,
        num_servers=jellyfish_servers,
        rng=rng,
    )

    jelly_series = throughput_under_link_failures(
        jellyfish, config["fractions"], engine="path", k=8, rng=rng
    )
    fat_series = throughput_under_link_failures(
        fattree, config["fractions"], engine="path", k=8, rng=rng
    )

    result = ExperimentResult(
        experiment_id="fig08",
        title=(
            f"Throughput under random link failures: Jellyfish ({jellyfish.num_servers} "
            f"servers) vs fat-tree ({fattree.num_servers} servers), same equipment"
        ),
        columns=[
            "fraction_links_failed",
            "jellyfish_throughput",
            "fattree_throughput",
        ],
    )
    for (fraction, jelly_value), (_, fat_value) in zip(jelly_series, fat_series):
        result.add_row(fraction, jelly_value, fat_value)
    return result
