"""Fig 13: flow fairness under k-shortest-path routing + MPTCP.

The paper reports the distribution of per-flow normalized throughputs and
Jain's fairness index for both topologies under one representative run:
~0.991 for the fat-tree, ~0.988 for Jellyfish -- both effectively fair.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import percentile

_SCALES = {
    "small": {"k": 6, "jellyfish_server_factor": 1.13},
    "paper": {"k": 14, "jellyfish_server_factor": 1.137},
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    k = config["k"]

    fattree = FatTreeTopology.build(k)
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=k,
        num_servers=int(round(fattree.num_servers * config["jellyfish_server_factor"])),
        rng=rng,
    )

    result = ExperimentResult(
        experiment_id="fig13",
        title="Flow fairness: per-flow throughput distribution and Jain's index",
        columns=[
            "topology",
            "num_flows",
            "jain_fairness_index",
            "p5_flow_throughput",
            "median_flow_throughput",
            "min_flow_throughput",
        ],
    )
    cases = [
        ("fat-tree", fattree, SimulationConfig(routing="ecmp", k=8, congestion_control=MPTCP)),
        ("jellyfish", jellyfish, SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)),
    ]
    for name, topology, sim_config in cases:
        traffic = random_permutation_traffic(topology, rng=rng)
        outcome = simulate_fluid(topology, traffic, sim_config, rng=rng)
        flows = outcome.sorted_throughputs()
        result.add_row(
            name,
            len(flows),
            outcome.fairness,
            percentile(flows, 5),
            percentile(flows, 50),
            min(flows),
        )
    return result
