"""Shared experiment harness: results container, table formatting, registry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A reproduced table or figure: named columns and one row per data point."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> List:
        """All values of one column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError as error:
            raise KeyError(f"no column named {name!r}") from error
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as a fixed-width text table."""
    header = [result.columns]
    body = [[_format_cell(value) for value in row] for row in result.rows]
    widths = [
        max(len(row[i]) for row in header + body) if header + body else 0
        for i in range(len(result.columns))
    ]
    lines = [f"{result.experiment_id}: {result.title}"]
    lines.append("  " + "  ".join(name.ljust(width) for name, width in zip(result.columns, widths)))
    lines.append("  " + "  ".join("-" * width for width in widths))
    for row in body:
        lines.append("  " + "  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    if result.notes:
        lines.append(f"  note: {result.notes}")
    return "\n".join(lines)


# Registry mapping experiment id -> module path (relative to repro.experiments).
EXPERIMENTS: Dict[str, str] = {
    "fig01": "repro.experiments.fig01_path_length",
    "fig02a": "repro.experiments.fig02a_bisection",
    "fig02a-ens": "repro.experiments.fig02a_ensemble",
    "fig02a-scale": "repro.experiments.fig02a_scale",
    "fig02b": "repro.experiments.fig02b_equipment_cost",
    "fig02c": "repro.experiments.fig02c_servers_full_throughput",
    "fig03": "repro.experiments.fig03_degree_diameter",
    "fig04": "repro.experiments.fig04_swdc",
    "fig05": "repro.experiments.fig05_path_length_scaling",
    "fig05-ens": "repro.experiments.fig05_ensemble",
    "fig05-scale": "repro.experiments.fig05_scale",
    "fig06": "repro.experiments.fig06_incremental",
    "fig07": "repro.experiments.fig07_legup",
    "fig08": "repro.experiments.fig08_failures",
    "fig08-ens": "repro.experiments.fig08_ensemble",
    "fig08-lifecycle": "repro.experiments.fig08_lifecycle",
    "fig09": "repro.experiments.fig09_ecmp_diversity",
    "table1": "repro.experiments.table1_routing_cc",
    "fig10": "repro.experiments.fig10_sim_vs_optimal",
    "fig11": "repro.experiments.fig11_servers_packet_level",
    "fig12": "repro.experiments.fig12_stability",
    "fig12-dynamics": "repro.experiments.fig12_dynamics",
    "fig13": "repro.experiments.fig13_fairness",
    "fig13-dynamics": "repro.experiments.fig13_dynamics",
    "fig14": "repro.experiments.fig14_localization",
}


def list_experiments() -> List[str]:
    """Identifiers of every reproducible table/figure."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str, scale: str = "small", seed: Optional[int] = 0) -> ExperimentResult:
    """Run one experiment by id and return its result."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(list_experiments())}"
        )
    module = importlib.import_module(EXPERIMENTS[experiment_id])
    return module.run(scale=scale, seed=seed)
