"""Fig 9: ECMP does not provide enough path diversity on Jellyfish.

For a random-permutation workload on a Jellyfish built from fat-tree
equipment, count for every directed inter-switch link how many distinct
paths use it under 8-way ECMP, 64-way ECMP and 8-shortest-path routing.
The paper's headline: ~55% of links carry at most 2 paths under 8-way ECMP,
versus ~6% under 8-shortest-path routing.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.routing.diversity import fraction_links_at_or_below, link_path_counts
from repro.routing.paths import build_path_set
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng

_SCALES = {"small": 6, "paper": 14}

_SCHEMES = [
    ("8-way ECMP", "ecmp", 8),
    ("64-way ECMP", "ecmp", 64),
    ("8 shortest paths", "ksp", 8),
]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    k = _SCALES[scale]
    rng = ensure_rng(seed)

    fattree = FatTreeTopology.build(k)
    jellyfish = JellyfishTopology.from_equipment(
        num_switches=fattree.num_switches,
        ports_per_switch=k,
        num_servers=fattree.num_servers,
        rng=rng,
    )
    traffic = random_permutation_traffic(jellyfish, rng=rng)
    pairs = list(traffic.switch_pairs())
    total_directed_links = 2 * jellyfish.num_links

    result = ExperimentResult(
        experiment_id="fig09",
        title="Distinct paths per inter-switch link under ECMP vs k-shortest-path routing",
        columns=[
            "routing",
            "fraction_links_on_at_most_2_paths",
            "mean_paths_per_link",
            "max_paths_on_a_link",
        ],
    )
    for label, scheme, width in _SCHEMES:
        path_set = build_path_set(jellyfish.graph, pairs, scheme=scheme, k=width)
        all_paths = [path for options in path_set.paths.values() for path in options]
        counts = link_path_counts(all_paths)
        fraction = fraction_links_at_or_below(counts, 2, total_directed_links)
        mean_paths = sum(counts.values()) / total_directed_links
        result.add_row(label, fraction, mean_paths, max(counts.values()) if counts else 0)
    return result
