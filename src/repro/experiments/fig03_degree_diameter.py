"""Fig 3: Jellyfish vs best-known degree-diameter graphs.

The paper attaches servers to both graphs (same switch count, port count and
network degree) and measures normalized random-permutation throughput under
optimal routing, finding Jellyfish within ~91% of the carefully optimized
benchmark in the worst case.  The benchmark graphs here are exact classical
constructions where available and local-search-optimized graphs otherwise
(DESIGN.md, substitution 4).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.flow.throughput import normalized_throughput
from repro.topologies.degree_diameter import DegreeDiameterTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

# (num_switches, ports_per_switch, network_degree) as labelled on the paper's x-axis.
_SCALES = {
    "small": {"configs": [(50, 11, 7), (72, 7, 5)], "trials": 2, "iterations": 300},
    "paper": {
        "configs": [
            (132, 4, 3),
            (72, 7, 5),
            (98, 6, 4),
            (50, 11, 7),
            (111, 8, 6),
            (212, 7, 5),
            (168, 10, 7),
            (104, 16, 11),
            (198, 24, 16),
        ],
        "trials": 5,
        "iterations": 2000,
    },
}


def _throughput(topology, trials, rng) -> float:
    values = []
    for _ in range(trials):
        traffic = random_permutation_traffic(topology, rng=rng)
        values.append(normalized_throughput(topology, traffic, engine="path", k=8).normalized)
    return mean(values)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)

    result = ExperimentResult(
        experiment_id="fig03",
        title="Normalized throughput: best-known degree-diameter graph vs Jellyfish",
        columns=[
            "config (switches, ports, degree)",
            "degree_diameter_throughput",
            "jellyfish_throughput",
            "jellyfish_fraction_of_benchmark",
        ],
    )
    for num_switches, ports, degree in config["configs"]:
        benchmark = DegreeDiameterTopology.build(
            num_switches,
            ports,
            degree,
            rng=rng,
            iterations=config["iterations"],
        )
        jellyfish = JellyfishTopology.build(
            num_switches, ports, degree, rng=rng
        )
        bench_throughput = _throughput(benchmark, config["trials"], rng)
        jelly_throughput = _throughput(jellyfish, config["trials"], rng)
        ratio = jelly_throughput / bench_throughput if bench_throughput else 0.0
        result.add_row(
            f"({num_switches}, {ports}, {degree})",
            bench_throughput,
            jelly_throughput,
            ratio,
        )
    return result
