"""Fig 7: incremental expansion cost -- Jellyfish vs LEGUP-like Clos upgrades.

Both planners run the same expansion arc under the same per-stage budget and
cost model: the initial stage builds a network for 480 servers, the first
expansion adds 240 servers, and every later stage only adds switching
capacity.  The paper's result: Jellyfish reaches a given bisection bandwidth
at a small fraction of the Clos planner's cumulative budget (LEGUP pays for
structure and reserved ports).
"""

from __future__ import annotations

from repro.expansion.cost import CostModel
from repro.expansion.legup import ClosExpansionPlanner
from repro.expansion.planner import JellyfishExpansionPlanner
from repro.experiments.common import ExperimentResult
from repro.utils.rng import ensure_rng

_SCALES = {
    "small": {
        "initial_servers": 120,
        "expansion_servers": 60,
        "stages": 4,
        "budget_per_stage": 60_000.0,
    },
    "paper": {
        "initial_servers": 480,
        "expansion_servers": 240,
        "stages": 9,
        "budget_per_stage": 100_000.0,
    },
}

_SWITCH_PORTS = 24
_SERVERS_PER_LEAF = 15


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    cost_model = CostModel()

    clos = ClosExpansionPlanner(
        leaf_ports=_SWITCH_PORTS,
        spine_ports=2 * _SWITCH_PORTS,
        servers_per_leaf=_SERVERS_PER_LEAF,
        reserved_ports_per_leaf=3,
        cost_model=cost_model,
    )
    jellyfish = JellyfishExpansionPlanner(
        switch_ports=_SWITCH_PORTS,
        servers_per_switch=_SERVERS_PER_LEAF,
        cost_model=cost_model,
        rng=rng,
    )

    result = ExperimentResult(
        experiment_id="fig07",
        title="Bisection bandwidth vs cumulative budget: Jellyfish vs Clos (LEGUP-like)",
        columns=[
            "stage",
            "cumulative_budget",
            "num_servers",
            "clos_normalized_bisection",
            "jellyfish_normalized_bisection",
        ],
    )

    budget = config["budget_per_stage"]
    for stage in range(config["stages"]):
        if stage == 0:
            new_servers = config["initial_servers"]
        elif stage == 1:
            new_servers = config["expansion_servers"]
        else:
            new_servers = 0
        clos_state = clos.expand(budget, new_servers=new_servers)
        jelly_state = jellyfish.expand(budget, new_servers=new_servers)
        result.add_row(
            stage,
            budget * (stage + 1),
            jelly_state.num_servers,
            clos_state.normalized_bisection_bandwidth(),
            jelly_state.normalized_bisection,
        )
    return result
