"""Fig 10: k-shortest-path + MPTCP throughput vs optimal (LP) routing.

On slightly oversubscribed Jellyfish topologies of increasing size, the
paper compares the throughput achieved by 8-shortest-path routing with
MPTCP against the CPLEX optimum, finding the practical scheme reaches
86-90% of optimal.  Our fluid simulator plays the packet simulator's role
and the path LP plays CPLEX's (DESIGN.md, substitutions 1 and 2).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.flow.throughput import normalized_throughput
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import mean

_SCALES = {
    # (num_switches, ports, network_degree): oversubscribed (more servers than
    # network ports) so routing inefficiency is visible, as in the paper.
    "small": {"configs": [(10, 7, 4), (20, 8, 5)], "trials": 2},
    "paper": {
        "configs": [(14, 10, 5), (33, 10, 5), (67, 10, 5), (120, 10, 5), (192, 10, 5)],
        "trials": 10,
    },
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    sim_config = SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)

    result = ExperimentResult(
        experiment_id="fig10",
        title="Jellyfish throughput: optimal (LP) routing vs 8-shortest-path + MPTCP",
        columns=[
            "num_servers",
            "optimal_throughput",
            "ksp_mptcp_throughput",
            "fraction_of_optimal",
        ],
    )
    for num_switches, ports, degree in config["configs"]:
        topology = JellyfishTopology.build(num_switches, ports, degree, rng=rng)
        optimal_values, sim_values = [], []
        for _ in range(config["trials"]):
            traffic = random_permutation_traffic(topology, rng=rng)
            optimal_values.append(
                normalized_throughput(topology, traffic, engine="path", k=12).normalized
            )
            sim_values.append(
                simulate_fluid(topology, traffic, sim_config, rng=rng).average_throughput
            )
        optimal = mean(optimal_values)
        simulated = mean(sim_values)
        ratio = simulated / optimal if optimal else 0.0
        result.add_row(topology.num_servers, optimal, simulated, ratio)
    return result
