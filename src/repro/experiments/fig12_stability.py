"""Fig 12: stability of the throughput results (min / mean / max over runs).

Repeats the routing + congestion-control simulation over independently drawn
topologies and traffic matrices at each size and reports the envelope; the
paper shows both Jellyfish and the fat-tree are stable, with Jellyfish's
average at least matching the fat-tree's while hosting more servers.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.simulation.fluid import MPTCP, SimulationConfig, simulate_fluid
from repro.topologies.fattree import FatTreeTopology
from repro.topologies.jellyfish import JellyfishTopology
from repro.traffic.matrices import random_permutation_traffic
from repro.utils.rng import ensure_rng
from repro.utils.stats import summarize

_SCALES = {
    "small": {"port_counts": [4, 6], "runs": 3, "jellyfish_server_factor": 1.1},
    "paper": {"port_counts": [8, 10, 12, 14], "runs": 10, "jellyfish_server_factor": 1.25},
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    config = _SCALES[scale]
    rng = ensure_rng(seed)
    runs = config["runs"]
    fattree_config = SimulationConfig(routing="ecmp", k=8, congestion_control=MPTCP)
    jellyfish_config = SimulationConfig(routing="ksp", k=8, congestion_control=MPTCP)

    result = ExperimentResult(
        experiment_id="fig12",
        title="Throughput stability across runs (varying topology and traffic)",
        columns=["topology", "num_servers", "min", "mean", "max"],
    )
    for ports in config["port_counts"]:
        fattree = FatTreeTopology.build(ports)
        fat_values = []
        for _ in range(runs):
            traffic = random_permutation_traffic(fattree, rng=rng)
            fat_values.append(
                simulate_fluid(fattree, traffic, fattree_config, rng=rng).average_throughput
            )
        fat_summary = summarize(fat_values)
        result.add_row(
            "fat-tree", fattree.num_servers,
            fat_summary.minimum, fat_summary.mean, fat_summary.maximum,
        )

        jellyfish_servers = int(round(fattree.num_servers * config["jellyfish_server_factor"]))
        jelly_values = []
        for _ in range(runs):
            jellyfish = JellyfishTopology.from_equipment(
                num_switches=fattree.num_switches,
                ports_per_switch=ports,
                num_servers=jellyfish_servers,
                rng=rng,
            )
            traffic = random_permutation_traffic(jellyfish, rng=rng)
            jelly_values.append(
                simulate_fluid(jellyfish, traffic, jellyfish_config, rng=rng).average_throughput
            )
        jelly_summary = summarize(jelly_values)
        result.add_row(
            "jellyfish", jellyfish_servers,
            jelly_summary.minimum, jelly_summary.mean, jelly_summary.maximum,
        )
    return result
